//! The paper's §2 ETL scenario end-to-end: load a CSV, wrangle missing
//! values with a bulk UPDATE (`UPDATE t SET d = NULL WHERE d = -999`),
//! bulk-delete outliers, and run OLAP over the cleaned table — all
//! transactionally, in one embedded engine.
//!
//! ```sh
//! cargo run --release --example etl_wrangling
//! ```

use eider::{Database, Result};
use eider_etl::csv::CsvWriter;
use eider_workload::Workload;

fn main() -> Result<()> {
    // Fabricate the "existing CSV file" a data scientist would start from:
    // sensor exports where -999 encodes missing values (the McMullen
    // convention the paper quotes).
    let mut csv = std::env::temp_dir();
    csv.push(format!("eider_etl_example_{}.csv", std::process::id()));
    {
        let mut w = CsvWriter::create(&csv, Some(&["id".into(), "d".into(), "v".into()]), ',')?;
        for chunk in Workload::new(42).wrangling_chunks(500_000, 0.25)? {
            w.write_chunk(&chunk)?;
        }
        println!("wrote {} raw rows to {}", w.finish()?, csv.display());
    }

    let db = Database::in_memory()?;
    let conn = db.connect();
    conn.execute("CREATE TABLE readings (id INTEGER, d INTEGER, v DOUBLE)")?;

    // Extract: the database scans the CSV directly (§2: "the database can
    // directly scan existing files, reshape the result and append it").
    let t = std::time::Instant::now();
    let loaded = conn.execute(&format!("COPY readings FROM '{}' (HEADER)", csv.display()))?;
    println!("COPY FROM loaded {loaded} rows in {:.0} ms", t.elapsed().as_secs_f64() * 1e3);

    // Transform, step 1 — the paper's exact wrangling query.
    let t = std::time::Instant::now();
    let fixed = conn.execute("UPDATE readings SET d = NULL WHERE d = -999")?;
    println!(
        "UPDATE readings SET d = NULL WHERE d = -999  -> {fixed} rows in {:.0} ms",
        t.elapsed().as_secs_f64() * 1e3
    );

    // Transform, step 2 — drop physically impossible outliers in bulk.
    let dropped = conn.execute("DELETE FROM readings WHERE v > 999.5")?;
    println!("DELETE outliers -> {dropped} rows");

    // Load/analyze: OLAP over the cleaned data.
    let result = conn.query(
        "SELECT count(*)                     AS total,
                count(d)                     AS with_value,
                count(*) - count(d)          AS missing,
                round(avg(v), 2)             AS mean_v
         FROM readings",
    )?;
    println!("\ncleaned table profile:\n{result}");

    // Everything above ran as individual auto-commit transactions; complex
    // pipelines can wrap the whole thing in BEGIN/COMMIT for atomicity.
    std::fs::remove_file(&csv).ok();
    Ok(())
}
