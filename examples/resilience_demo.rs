//! Resilience in action (§3): silent disk corruption is detected by block
//! checksums rather than silently propagating, and the health monitor
//! escalates checking after the first fault (Table 1's "failed once means
//! likely to fail again").
//!
//! ```sh
//! cargo run --release --example resilience_demo
//! ```

use eider::{Database, Result};
use std::io::{Read, Seek, SeekFrom, Write};

fn main() -> Result<()> {
    let mut path = std::env::temp_dir();
    path.push(format!("eider_resilience_demo_{}.db", std::process::id()));
    let wal = format!("{}.wal", path.display());
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);

    // Create a persistent database and checkpoint some data into it.
    {
        let db = Database::open(&path)?;
        let conn = db.connect();
        conn.execute("CREATE TABLE ledger (id INTEGER, amount DOUBLE)")?;
        for batch in 0..10 {
            let rows: Vec<String> = (0..1000)
                .map(|i| format!("({}, {})", batch * 1000 + i, (i as f64) / 7.0))
                .collect();
            conn.execute(&format!("INSERT INTO ledger VALUES {}", rows.join(",")))?;
        }
        conn.execute("CHECKPOINT")?;
        let r = conn.query("SELECT count(*), round(sum(amount), 2) FROM ledger")?;
        println!("before corruption: {r}");
    } // closed cleanly

    // A failing flash cell flips one bit per data block, silently — no I/O
    // error is reported. (Flips in *free* blocks are harmless and stay
    // undetected by design; flipping every block guarantees the live
    // checkpoint chain is hit.)
    {
        let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&path)?;
        let len = f.metadata()?.len();
        let block = 256 * 1024u64;
        let mut flips = 0;
        let mut slot = 3; // past the file headers
        while (slot + 1) * block <= len {
            let offset = slot * block + 31_337;
            f.seek(SeekFrom::Start(offset))?;
            let mut b = [0u8; 1];
            f.read_exact(&mut b)?;
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(&[b[0] ^ 0x20])?;
            flips += 1;
            slot += 1;
        }
        println!("flipped one bit in each of {flips} data blocks (silently!)");
    }

    // Reopening must *detect* the corruption, not serve garbage.
    match Database::open(&path) {
        Ok(db) => {
            // The corrupted block may not be read until the table is
            // scanned; the scan must fail loudly.
            let conn = db.connect();
            match conn.query("SELECT count(*), round(sum(amount), 2) FROM ledger") {
                Ok(r) => println!("UNEXPECTED: query served data from a corrupt file: {r}"),
                Err(e) => {
                    println!("query failed as required:\n  {e}");
                    println!(
                        "health monitor: {} disk fault(s) recorded, mode = {:?}",
                        db.health().disk_faults(),
                        db.health().mode()
                    );
                }
            }
        }
        Err(e) => {
            println!("open failed as required:\n  {e}");
        }
    }

    println!(
        "\n§3: \"Rather than allowing data corruption through silent errors an \
         embedded analytics DBMS needs to detect these errors and correct them if \
         possible or cease operation entirely.\""
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
    Ok(())
}
