//! Cooperation (§4, Figure 1): the embedded DBMS watches the application's
//! memory pressure and reacts — shrinking its own budget and compressing
//! its intermediates (None -> Light -> Heavy) so the *end-to-end* system
//! stays healthy.
//!
//! ```sh
//! cargo run --release --example adaptive_cooperation
//! ```

use eider::{Database, Result};
use eider_coop::controller::{AdaptiveController, ControllerConfig};
use eider_coop::monitor::{ResourceMonitor, SimulatedApplication};

fn main() -> Result<()> {
    let total_budget: usize = 256 << 20; // RAM shared by app + DBMS
    let db = Database::in_memory()?;
    let conn = db.connect();
    conn.execute("CREATE TABLE events (k INTEGER, v DOUBLE)")?;
    for batch in 0..5 {
        let rows: Vec<String> = (0..2000)
            .map(|i| format!("({}, {})", (batch * 2000 + i) % 1000, i as f64 * 0.25))
            .collect();
        conn.execute(&format!("INSERT INTO events VALUES {}", rows.join(",")))?;
    }

    // The co-resident application (a dashboard, a notebook kernel, ...)
    // with the bursty RAM profile of Figure 1.
    let app = SimulatedApplication::figure1_trace(total_budget);
    let mut controller = AdaptiveController::new(ControllerConfig::for_budget(total_budget));

    println!("step | app RAM | DBMS budget | compression | query ms");
    let mut step = 0;
    loop {
        let usage = app.sample();
        let decision = controller.observe(usage);
        // Push the decision into the engine: budget + intermediate
        // compression level (hash join build sides, sort runs).
        db.buffers().set_memory_limit(decision.dbms_memory_budget);
        db.policy().set_memory_limit(decision.dbms_memory_budget);
        db.policy().set_compression(decision.compression);

        if step % 8 == 0 {
            let t = std::time::Instant::now();
            let _ = conn.query(
                "SELECT e1.k, count(*), sum(e1.v) FROM events e1 \
                 JOIN events e2 ON e1.k = e2.k GROUP BY e1.k",
            )?;
            println!(
                "{step:>4} | {:>6} MB | {:>8} MB | {:>11} | {:>7.1}",
                usage.app_memory_bytes >> 20,
                decision.dbms_memory_budget >> 20,
                decision.compression.label(),
                t.elapsed().as_secs_f64() * 1e3
            );
        }
        step += 1;
        if !app.step() {
            break;
        }
    }
    println!(
        "\nAs the application's RAM demand grows, the DBMS gives back memory and \
         pays CPU for compression instead of starving its host (§4). When the \
         burst passes, it relaxes again."
    );
    Ok(())
}
