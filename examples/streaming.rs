//! Streaming results: scan a result set far larger than the engine's
//! memory limit through a [`ResultCursor`], in bounded memory.
//!
//! The cursor is the §5 handoff done incrementally: each `next_chunk`
//! pulls one chunk straight from the executor — serial plans produce it
//! on demand, parallel plans stream their root node's output through a
//! byte-bounded queue whose backpressure throttles the workers while the
//! host is busy with the previous chunk. The in-flight chunk is charged
//! to the buffer manager (§4), so the whole pipeline — workers, queue
//! backlog, and the chunk in your hands — stays inside `PRAGMA
//! memory_limit` even when the *result* is many times larger.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use eider::{Database, Result, Value};

fn main() -> Result<()> {
    let db = Database::in_memory()?;
    let conn = db.connect();

    conn.execute("CREATE TABLE readings (sensor INTEGER, at INTEGER, reading DOUBLE)")?;
    println!("loading 400k readings …");
    for batch in 0..40 {
        let rows: Vec<String> = (0..10_000)
            .map(|i| {
                let at = batch * 10_000 + i;
                format!("({}, {at}, {}.25)", at % 97, at % 1_000)
            })
            .collect();
        conn.execute(&format!("INSERT INTO readings VALUES {}", rows.join(",")))?;
    }

    // A deliberately tight budget: the full sorted result is ~10 MB, far
    // more than the engine may hold at once.
    conn.execute("PRAGMA memory_limit = 1000000")?; // 1 MB
    conn.execute("PRAGMA threads = 4")?;

    // ORDER BY over everything: the parallel sort spills worker runs to
    // disk under the 1 MB budget, and the k-way merge feeds the cursor
    // chunk by chunk — the sorted result is never materialized.
    let mut cursor =
        conn.query_stream("SELECT sensor, at, reading FROM readings ORDER BY reading DESC, at")?;

    // Track the true §4 high-water mark from here: the buffer manager
    // records every reservation peak, including those taken while
    // next_chunk() is blocked inside the engine.
    db.buffers().reset_peak();
    let mut rows = 0usize;
    let mut result_bytes = 0usize;
    let mut checksum = 0i64;
    while let Some(chunk) = cursor.next_chunk()? {
        // The chunk is the engine's own buffer behind an Arc — process it
        // in place, no copies. Here: fold a checksum over the sensor ids.
        for row in 0..chunk.len() {
            if let Some(v) = chunk.column(0).get_value(row).as_i64() {
                checksum = checksum.wrapping_add(v);
            }
        }
        rows += chunk.len();
        result_bytes += chunk.size_bytes();
    }
    let peak_accounted = db.buffers().peak_memory();

    println!("streamed {rows} rows ({} KB of result)", result_bytes / 1024);
    println!("peak accounted memory while streaming: {} KB (limit: 976 KB)", peak_accounted / 1024);
    println!("sensor checksum: {checksum}");
    // The meaningful claim is not "peak under the limit" (the ledger
    // refuses reservations past it by construction) but "peak a small
    // fraction of the result": the stream never materialized it.
    assert!(
        peak_accounted < result_bytes / 10,
        "streaming must hold only a sliver of the {result_bytes}-byte result, \
         not materialize it (peak {peak_accounted})"
    );

    // The same cursor API replays small materialized results too.
    let mut cursor = conn.query_stream("SELECT count(*) FROM readings")?;
    if let Some(chunk) = cursor.next_chunk()? {
        assert_eq!(chunk.column(0).get_value(0), Value::BigInt(rows as i64));
    }
    println!("done — all inside one process, no server, no serialization.");
    Ok(())
}
