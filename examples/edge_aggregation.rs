//! Edge-node pre-aggregation (§1): "Performing analysis or pre-aggregation
//! directly inside the edge node can help to limit the amount of data that
//! has to be transferred to a central location."
//!
//! An edge device ingests raw sensor readings into an embedded eider
//! database, aggregates locally, and ships only the tiny summary upstream —
//! we measure the bandwidth saved.
//!
//! ```sh
//! cargo run --release --example edge_aggregation
//! ```

use eider::{Database, Result};
use eider_client::protocol::{serialize_result, Bandwidth};
use eider_client::Appender;
use eider_workload::Workload;
use std::sync::Arc;

fn main() -> Result<()> {
    let db = Database::in_memory()?;
    let conn = db.connect();
    conn.execute(
        "CREATE TABLE readings (sensor_id INTEGER NOT NULL, ts TIMESTAMP, reading DOUBLE)",
    )?;

    // Ingest a day of readings through the bulk appender (the §5 chunk
    // handover in the application -> DBMS direction).
    let raw_chunks = Workload::new(99).sensor_chunks(500_000, 64)?;
    let entry = db.catalog().get_table("readings")?;
    let txn = Arc::new(db.txn_manager().begin());
    let mut appender = Appender::new(entry, Arc::clone(&txn));
    for chunk in raw_chunks {
        appender.append_chunk(chunk)?;
    }
    let ingested = appender.finish()?;
    db.commit_transaction(Arc::try_unwrap(txn).expect("sole handle"))?;
    println!("ingested {ingested} raw readings on the edge node");

    // Local pre-aggregation: per-sensor hourly summary + anomaly counts.
    let summary = conn.query(
        "SELECT sensor_id,
                count(*)                  AS samples,
                round(avg(reading), 2)    AS mean,
                round(max(reading), 2)    AS peak,
                sum(CASE WHEN reading > 100.0 THEN 1 ELSE 0 END) AS anomalies
         FROM readings
         GROUP BY sensor_id
         ORDER BY anomalies DESC, sensor_id
         LIMIT 10",
    )?;
    println!("\ntop sensors by anomaly count:\n{summary}");

    // What would shipping raw vs summarized data cost on the uplink?
    let raw = conn.query("SELECT * FROM readings")?;
    let full_summary = conn.query(
        "SELECT sensor_id, count(*), avg(reading), max(reading)
         FROM readings GROUP BY sensor_id",
    )?;
    let raw_bytes = serialize_result(&raw).len();
    let summary_bytes = serialize_result(&full_summary).len();
    // The paper's motivation is constrained radio links; assume LTE-ish
    // 10 Mbit/s.
    let uplink = Bandwidth { bits_per_second: 10e6 };
    println!(
        "raw upload      : {:>10} bytes = {:>8.1}s on a 10 Mbit/s uplink",
        raw_bytes,
        uplink.wire_seconds(raw_bytes)
    );
    println!(
        "summary upload  : {:>10} bytes = {:>8.3}s on a 10 Mbit/s uplink",
        summary_bytes,
        uplink.wire_seconds(summary_bytes)
    );
    println!("bandwidth saved : {:.1}x", raw_bytes as f64 / summary_bytes as f64);
    Ok(())
}
