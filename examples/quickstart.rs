//! Quickstart: open an embedded database, create a table, run SQL, and
//! fetch results — all inside your process, no server.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eider::{Database, Result};

fn main() -> Result<()> {
    // In-memory database. Use Database::open("my.db") for a persistent
    // single-file database with WAL + checkpoints.
    let db = Database::in_memory()?;
    let conn = db.connect();

    conn.execute(
        "CREATE TABLE weather (
            city    VARCHAR NOT NULL,
            day     DATE,
            temp_lo INTEGER,
            temp_hi INTEGER,
            precip  DOUBLE
         )",
    )?;

    conn.execute(
        "INSERT INTO weather VALUES
            ('Amsterdam', DATE '2020-01-12', 2, 7, 4.2),
            ('Amsterdam', DATE '2020-01-13', 3, 8, 0.0),
            ('San Francisco', DATE '2020-01-12', 8, 15, 0.3),
            ('San Francisco', DATE '2020-01-13', 9, 16, NULL)",
    )?;

    // An analytical query: aggregates over a filtered scan.
    let result = conn.query(
        "SELECT city,
                count(*)       AS days,
                min(temp_lo)   AS coldest,
                max(temp_hi)   AS warmest,
                avg(precip)    AS avg_precip
         FROM weather
         WHERE day >= DATE '2020-01-12'
         GROUP BY city
         ORDER BY city",
    )?;
    println!("{result}");

    // Zero-copy access: chunks are handed over by reference (§5 of the
    // paper); iterate them like the engine's own operators do.
    let result = conn.query("SELECT city, temp_hi - temp_lo AS swing FROM weather")?;
    for chunk in result.chunks() {
        for row in 0..chunk.len() {
            let city = chunk.column(0).get_value(row);
            let swing = chunk.column(1).get_value(row);
            println!("{city:>15}: {swing} degrees of daily swing");
        }
    }
    Ok(())
}
