//! The §2 dashboard scenario: ETL writers and OLAP readers share one
//! embedded database concurrently. MVCC (§6) keeps every visualization
//! query on a consistent snapshot while updates stream in.
//!
//! ```sh
//! cargo run --release --example dashboard
//! ```

use eider::{Database, Result, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    let db = Database::in_memory()?;
    let conn = db.connect();
    conn.execute(
        "CREATE TABLE kpis (region VARCHAR NOT NULL, metric VARCHAR NOT NULL, value DOUBLE)",
    )?;
    for region in ["emea", "apac", "amer"] {
        for metric in ["revenue", "users", "latency"] {
            conn.execute(&format!("INSERT INTO kpis VALUES ('{region}', '{metric}', 100.0)"))?;
        }
    }

    let stop = Arc::new(AtomicBool::new(false));

    // The ETL thread: bursts of bulk updates, like a pipeline refreshing
    // KPI values.
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Result<u64> {
            let conn = db.connect();
            let mut refreshes = 0u64;
            let mut k = 1.0f64;
            while !stop.load(Ordering::Relaxed) {
                // A transactional refresh: either the whole batch of KPI
                // values changes, or none of it does.
                conn.execute("BEGIN")?;
                conn.execute(&format!(
                    "UPDATE kpis SET value = value + {k} WHERE metric = 'revenue'"
                ))?;
                conn.execute(&format!(
                    "UPDATE kpis SET value = value + {} WHERE metric = 'users'",
                    k * 2.0
                ))?;
                conn.execute("COMMIT")?;
                refreshes += 1;
                k += 1.0;
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(refreshes)
        })
    };

    // Dashboard threads: aggregate queries driving charts.
    let readers: Vec<_> = (0..2)
        .map(|i| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> Result<u64> {
                let conn = db.connect();
                let mut queries = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let r = conn.query(
                        "SELECT metric, sum(value) AS total FROM kpis \
                         GROUP BY metric ORDER BY metric",
                    )?;
                    // Snapshot consistency check: within one query, revenue
                    // and users moved in lockstep (revenue+k, users+2k from
                    // the same base), so users-total - 2*revenue-total is
                    // constant (-300).
                    let rows = r.to_rows();
                    let find = |name: &str| {
                        rows.iter()
                            .find(|row| row[0] == Value::Varchar(name.into()))
                            .and_then(|row| row[1].as_f64())
                            .expect("metric present")
                    };
                    let invariant = find("users") - 2.0 * find("revenue");
                    assert!(
                        (invariant + 300.0).abs() < 1e-6,
                        "reader {i} saw a torn snapshot: {invariant}"
                    );
                    queries += 1;
                }
                Ok(queries)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs(2));
    stop.store(true, Ordering::Relaxed);
    let refreshes = writer.join().expect("writer thread")?;
    let mut total_queries = 0;
    for r in readers {
        total_queries += r.join().expect("reader thread")?;
    }
    println!("ETL refreshes committed : {refreshes}");
    println!("dashboard queries served: {total_queries}");
    println!("torn snapshots observed : 0 (asserted per query)");
    println!("\nFinal state:");
    println!("{}", db.connect().query("SELECT * FROM kpis ORDER BY region, metric")?);
    Ok(())
}
