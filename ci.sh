#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
#
#   ./ci.sh              run the full gate
#   ./ci.sh bench-smoke  run the olap + parallel (join) benches with a small
#                        sample size and write BENCH_olap.json — the
#                        machine-readable perf trajectory CI archives
#   ./ci.sh bench-check  measure a fresh bench-smoke, compare its means
#                        against the committed BENCH_olap.json baselines
#                        and fail on a >30% mean regression in any olap/*
#                        or parallel/* bench (always re-measures, so a
#                        stale working-tree summary can never gate)
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "bench-smoke" ]]; then
    echo "==> bench smoke: olap + parallel benches, ${EIDER_BENCH_SAMPLES:=3} samples"
    export EIDER_BENCH_SAMPLES
    export EIDER_BENCH_JSON="$PWD/BENCH_olap.json"
    # No rm: the summary merges by bench name, so recorded baseline-*
    # entries survive while re-measured benches replace their own rows.
    cargo bench -p eider-bench --bench olap
    cargo bench -p eider-bench --bench parallel
    cargo bench -p eider-bench --bench multi_session
    echo "==> wrote $EIDER_BENCH_JSON"
    exit 0
fi

if [[ "${1:-}" == "bench-check" ]]; then
    baseline="$(mktemp --suffix=.json)"
    trap 'rm -f "$baseline"' EXIT
    git show HEAD:BENCH_olap.json > "$baseline"
    # Always measure: gating a BENCH_olap.json left over from before the
    # current change would wave regressions through.
    ./ci.sh bench-smoke
    echo "==> bench check: fresh means vs committed baselines (gate: +30%)"
    cargo run --release -q -p eider-bench --bin bench_check -- \
        "$baseline" BENCH_olap.json --threshold 0.30
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> serial/parallel equivalence: integration suites at 1, 4 and 8 workers"
# EIDER_THREADS pins the default worker cap, so every query in these
# suites (not just the ones that set PRAGMA threads) runs serial once and
# morsel-parallel twice, on any host including 1-core CI runners.
EIDER_THREADS=1 cargo test -q --test parallel_execution --test sql_integration
EIDER_THREADS=4 cargo test -q --test parallel_execution --test sql_integration
EIDER_THREADS=8 cargo test -q --test parallel_execution --test sql_integration

echo "==> multi-session concurrency harness at 1, 2, 4 and 8 workers"
# The deterministic session storm: N concurrent connections must observe
# bit-identical results vs a serial replay at every fleet size.
EIDER_THREADS=1 cargo test -q --test multi_session
EIDER_THREADS=2 cargo test -q --test multi_session
EIDER_THREADS=4 cargo test -q --test multi_session
EIDER_THREADS=8 cargo test -q --test multi_session

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --doc --workspace (doc examples execute, incl. docs/EMBEDDING.md)"
cargo test --doc --workspace -q

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo bench --workspace --no-run (benches must compile)"
cargo bench --workspace --no-run

echo "CI gate passed."
