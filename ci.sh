#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo bench --workspace --no-run (benches must compile)"
cargo bench --workspace --no-run

echo "CI gate passed."
