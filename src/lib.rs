//! eider: an embedded analytical database, reproducing the system
//! described in *Data Management for Data Science — Towards Embedded
//! Analytics* (CIDR 2020).
//!
//! This crate is the single dependency an application links against; it
//! re-exports the [`eider_core`] facade. The database runs inside your
//! process — no server, no socket, no serialization:
//!
//! ```no_run
//! use eider::{Database, Value};
//!
//! let db = Database::in_memory().unwrap();
//! let conn = db.connect();
//! conn.execute("CREATE TABLE t (a INTEGER, d INTEGER)").unwrap();
//! conn.execute("INSERT INTO t VALUES (1, -999), (2, 42)").unwrap();
//! conn.execute("UPDATE t SET d = NULL WHERE d = -999").unwrap();
//! let n = conn.query("SELECT count(*) FROM t WHERE d IS NULL").unwrap();
//! assert_eq!(n.scalar().unwrap(), Value::BigInt(1));
//! ```
//!
//! Queries over large tables execute morsel-parallel across the worker
//! threads the cooperation policy grants (`PRAGMA threads`, clamped by
//! host CPU load); see `eider_exec::parallel` and ARCHITECTURE.md for the
//! execution model, and README.md for a tour of the workspace.

pub use eider_core::*;

/// The embedding guide — `docs/EMBEDDING.md` rendered here and compiled
/// as doctests, so every snippet in the guide is built and executed by
/// `cargo test --doc`: open → query → streaming cursors → resource
/// PRAGMAs.
#[doc = include_str!("../docs/EMBEDDING.md")]
pub mod embedding_guide {}
