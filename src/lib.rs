pub use eider_core::*;
