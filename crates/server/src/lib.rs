//! eider-server: the thin out-of-process front end.
//!
//! The paper's position (§5) is that the *default* deployment is embedded —
//! the engine links into the application and results are handed over as
//! shared chunks. But some applications still need a socket (a remote
//! dashboard, a notebook on another machine), and the measurement in §5 is
//! precisely that the client protocol then dominates end-to-end time. This
//! crate keeps that path honest: a deliberately thin server that pumps
//! [`ResultCursor`](eider_core::ResultCursor) chunks straight into the columnar wire encoding
//! ([`eider_client::wire`]) with no row pivot in between.
//!
//! One process hosts one [`Database`]; every inbound connection becomes an
//! engine [`Connection`] — i.e. its own *session*, with its own memory
//! quota sub-account and fair share of the worker fleet, exactly as an
//! embedded multi-threaded host would get. The request protocol is
//! minimal: each request is a length-prefixed SQL string
//! (`[u32 LE][bytes]`); each response is one wire result stream
//! (header / chunks / end-or-error). Statements stream back-to-back on the
//! same session, so `BEGIN`/`COMMIT` work across requests.
//!
//! [`serve_session`] is transport-agnostic (any `Read` source + `Write`
//! sink), which is how the tests drive it in memory; the `eider-server`
//! binary wraps it around TCP accept + thread-per-connection.

use eider_client::wire::ChunkWriter;
use eider_core::{Connection, Database};
use eider_vector::{EiderError, Result};
use std::io::{Read, Write};
use std::sync::Arc;

/// Read one length-prefixed SQL request. `Ok(None)` on clean EOF at a
/// request boundary (the client hung up between statements).
fn read_request<R: Read>(input: &mut R) -> Result<Option<String>> {
    let mut len = [0u8; 4];
    match input.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(EiderError::Io(e)),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_REQUEST_BYTES {
        return Err(EiderError::Execution(format!(
            "SQL request of {len} bytes exceeds the {MAX_REQUEST_BYTES} byte limit"
        )));
    }
    let mut sql = vec![0u8; len];
    input.read_exact(&mut sql).map_err(EiderError::Io)?;
    let sql = String::from_utf8(sql)
        .map_err(|_| EiderError::Parse("SQL request is not valid UTF-8".into()))?;
    Ok(Some(sql))
}

/// Requests are SQL text; anything this large is a protocol desync.
const MAX_REQUEST_BYTES: usize = 16 << 20;

/// Send one length-prefixed SQL request (the client side of
/// `read_request`). Exposed so client shims and tests share the framing.
pub fn write_request<W: Write>(output: &mut W, sql: &str) -> Result<()> {
    output.write_all(&(sql.len() as u32).to_le_bytes()).map_err(EiderError::Io)?;
    output.write_all(sql.as_bytes()).map_err(EiderError::Io)?;
    output.flush().map_err(EiderError::Io)
}

/// Execute one SQL statement on `conn` and stream the result to `output`
/// as a wire stream. Engine errors become protocol frames (an `Error`
/// frame terminates the stream); only transport failures return `Err`.
pub fn serve_statement<W: Write>(conn: &Connection, sql: &str, output: W) -> Result<()> {
    let mut writer = ChunkWriter::new(output);
    let mut cursor = match conn.query_stream(sql) {
        Ok(cursor) => cursor,
        Err(e) => return writer.write_error(&e.to_string()),
    };
    writer.write_header(cursor.column_names(), cursor.column_types())?;
    loop {
        match cursor.next_chunk() {
            Ok(Some(chunk)) => writer.write_chunk(&chunk)?,
            Ok(None) => return writer.finish(),
            // Mid-stream failure (e.g. the session ran out of its memory
            // quota): the header is already on the wire, so the error
            // travels as the stream terminator.
            Err(e) => return writer.write_error(&e.to_string()),
        }
    }
}

/// Serve one client session: read SQL requests from `input` and stream
/// each result to `output` until the client disconnects. The connection —
/// and with it the session's quota sub-account and fleet registration — is
/// dropped when this returns.
pub fn serve_session<R: Read, W: Write>(
    db: &Arc<Database>,
    mut input: R,
    mut output: W,
) -> Result<()> {
    let conn = db.connect();
    while let Some(sql) = read_request(&mut input)? {
        serve_statement(&conn, &sql, &mut output)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_client::wire::ChunkReader;
    use eider_vector::Value;

    fn request_bytes(statements: &[&str]) -> Vec<u8> {
        let mut buf = Vec::new();
        for sql in statements {
            write_request(&mut buf, sql).unwrap();
        }
        buf
    }

    #[test]
    fn session_round_trip_over_in_memory_transport() {
        let db = Database::in_memory().unwrap();
        let requests = request_bytes(&[
            "CREATE TABLE t (x INTEGER, s VARCHAR)",
            "INSERT INTO t VALUES (1, 'a'), (2, NULL), (3, 'c')",
            "SELECT x, s FROM t ORDER BY x",
        ]);
        let mut response = Vec::new();
        serve_session(&db, &requests[..], &mut response).unwrap();

        let mut reader = ChunkReader::new(&response[..]);
        let _create = reader.read_result().unwrap();
        let _insert = reader.read_result().unwrap();
        let select = reader.read_result().unwrap();
        assert_eq!(select.names, ["x", "s"]);
        assert_eq!(
            select.to_rows(),
            vec![
                vec![Value::Integer(1), Value::Varchar("a".into())],
                vec![Value::Integer(2), Value::Null],
                vec![Value::Integer(3), Value::Varchar("c".into())],
            ]
        );
    }

    #[test]
    fn transactions_span_requests_within_a_session() {
        let db = Database::in_memory().unwrap();
        let requests = request_bytes(&[
            "CREATE TABLE t (x INTEGER)",
            "BEGIN",
            "INSERT INTO t VALUES (42)",
            "ROLLBACK",
            "SELECT count(*) FROM t",
        ]);
        let mut response = Vec::new();
        serve_session(&db, &requests[..], &mut response).unwrap();
        let mut reader = ChunkReader::new(&response[..]);
        for _ in 0..4 {
            reader.read_result().unwrap();
        }
        let count = reader.read_result().unwrap();
        assert_eq!(count.to_rows(), vec![vec![Value::BigInt(0)]]);
    }

    #[test]
    fn engine_errors_travel_as_error_frames_not_transport_failures() {
        let db = Database::in_memory().unwrap();
        let requests = request_bytes(&[
            "SELECT nope FROM missing",
            "SELECT 1 + 1", // the session survives the failed statement
        ]);
        let mut response = Vec::new();
        serve_session(&db, &requests[..], &mut response).unwrap();
        let mut reader = ChunkReader::new(&response[..]);
        let err = reader.read_result().unwrap_err();
        assert!(matches!(err, EiderError::Execution(_)));
        let ok = reader.read_result().unwrap();
        assert_eq!(ok.rows, 1);
    }

    #[test]
    fn serves_real_tcp_sockets() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};

        let db = Database::in_memory().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let reader = stream.try_clone().unwrap();
            serve_session(&db, reader, stream).unwrap();
        });

        let mut client = TcpStream::connect(addr).unwrap();
        for sql in
            ["CREATE TABLE t (x INTEGER)", "INSERT INTO t VALUES (5), (6)", "SELECT sum(x) FROM t"]
        {
            write_request(&mut client, sql).unwrap();
        }
        client.flush().unwrap();
        // Half-close the write side so the server sees EOF and finishes.
        client.shutdown(std::net::Shutdown::Write).unwrap();

        let mut reader = ChunkReader::new(client);
        let _create = reader.read_result().unwrap();
        let _insert = reader.read_result().unwrap();
        let sum = reader.read_result().unwrap();
        assert_eq!(sum.to_rows(), vec![vec![Value::BigInt(11)]]);
        server.join().unwrap();
    }

    #[test]
    fn each_socket_becomes_its_own_session() {
        let db = Database::in_memory().unwrap();
        let base = db.session_count();
        let requests = request_bytes(&["SELECT 1"]);
        let mut response = Vec::new();
        serve_session(&db, &requests[..], &mut response).unwrap();
        // The serving connection registered and then unregistered.
        assert_eq!(db.session_count(), base);
    }
}
