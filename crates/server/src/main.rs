//! The `eider-server` binary: a TCP front end over one shared [`Database`].
//!
//! ```text
//! eider-server [DB_PATH] [--listen ADDR]
//! ```
//!
//! Opens `DB_PATH` (or an in-memory database when omitted) and serves the
//! length-prefixed SQL / columnar-chunk protocol (see [`eider_server`]) on
//! `ADDR` (default `127.0.0.1:5744`), one thread and one engine session
//! per client connection. The engine's own admission layer — not the
//! accept loop — decides how many queries run concurrently and how the
//! worker fleet is shared between them.

use eider_core::Database;
use std::net::TcpListener;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut db_path: Option<String> = None;
    let mut listen = "127.0.0.1:5744".to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => die("--listen requires an address"),
            },
            "--help" | "-h" => {
                println!("usage: eider-server [DB_PATH] [--listen ADDR]");
                return;
            }
            path if db_path.is_none() => db_path = Some(path.to_string()),
            other => die(&format!("unexpected argument: {other}")),
        }
    }

    let db = match &db_path {
        Some(path) => Database::open(path),
        None => Database::in_memory(),
    }
    .unwrap_or_else(|e| die(&format!("cannot open database: {e}")));

    let listener = TcpListener::bind(&listen)
        .unwrap_or_else(|e| die(&format!("cannot listen on {listen}: {e}")));
    eprintln!(
        "eider-server: serving {} on {}",
        db_path.as_deref().unwrap_or("(in-memory)"),
        listener.local_addr().map_or(listen, |a| a.to_string())
    );

    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("eider-server: cannot clone socket: {e}");
                    return;
                }
            };
            if let Err(e) = eider_server::serve_session(&db, reader, stream) {
                eprintln!("eider-server: session ended with error: {e}");
            }
        });
    }
}

fn die(msg: &str) -> ! {
    eprintln!("eider-server: {msg}");
    std::process::exit(1)
}
