//! `Connection`: the statement execution surface of the embedded database.
//!
//! Two result paths, one execution engine underneath:
//! [`Connection::query_stream`] opens a [`ResultCursor`] that pulls
//! chunks incrementally (the embedding API's bounded-memory handoff —
//! see [`crate::cursor`]); [`Connection::query`] is the same stream
//! drained into a [`MaterializedResult`] for callers that want the whole
//! result at once.

use crate::cursor::ResultCursor;
use crate::database::{Database, SessionState};
use crate::persist::{self, WalRecord};
use crate::planner::{self, PlanCtx};
use eider_client::MaterializedResult;
use eider_coop::compression::CompressionLevel;
use eider_etl::csv::{CsvReadOptions, CsvSource, CsvWriter};
use eider_etl::for_each_chunk;
use eider_exec::ops::drain;
use eider_sql::plan::LogicalPlan;
use eider_sql::{optimizer, Binder};
use eider_txn::Transaction;
use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value, Vector};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A session: runs SQL, owns the current explicit transaction (if any)
/// and the session's memory quota account — every operator its queries
/// plan charges that account, so concurrent sessions stay inside their
/// own slices of the global budget.
pub struct Connection {
    db: Arc<Database>,
    session: Arc<SessionState>,
    current_txn: Mutex<Option<Arc<Transaction>>>,
    /// `PRAGMA optimizer`: per-session switch for the logical optimizer.
    /// Off, plans execute exactly as bound (syntactic join order, no
    /// pushdown) — the baseline the plan-shape and property tests compare
    /// cost-based plans against.
    optimize: AtomicBool,
}

impl Connection {
    pub(crate) fn new(db: Arc<Database>) -> Self {
        let session = db.register_session();
        Connection { db, session, current_txn: Mutex::new(None), optimize: AtomicBool::new(true) }
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// This connection's session state (id + quota account).
    pub fn session(&self) -> &Arc<SessionState> {
        &self.session
    }

    /// The session-scoped planning context every statement lowers under.
    fn plan_ctx(&self) -> PlanCtx<'_> {
        PlanCtx::new(&self.db, self.session.buffers())
    }

    /// Run one or more `;`-separated statements; returns the last result,
    /// fully materialized.
    ///
    /// The execution underneath streams: this is
    /// [`query_stream`](Connection::query_stream) followed by
    /// [`ResultCursor::materialize`], kept for the many call sites that
    /// want the whole result at once. Bounded-memory consumers should use
    /// `query_stream` directly.
    ///
    /// ```
    /// use eider_core::{Database, Value};
    /// let db = Database::in_memory().unwrap();
    /// let conn = db.connect();
    /// conn.execute("CREATE TABLE t (x INTEGER)").unwrap();
    /// conn.execute("INSERT INTO t VALUES (41), (1)").unwrap();
    /// let result = conn.query("SELECT sum(x) FROM t").unwrap();
    /// assert_eq!(result.scalar().unwrap(), Value::BigInt(42));
    /// ```
    pub fn query(&self, sql: &str) -> Result<MaterializedResult> {
        self.query_stream(sql)?.materialize()
    }

    /// Run one or more `;`-separated statements; the last one's result
    /// comes back as a streaming [`ResultCursor`] that pulls chunks
    /// incrementally from the executor (earlier statements execute to
    /// completion first). Plain `SELECT`-shaped statements stream — serial
    /// plans pull on demand, parallel plans run on a background scheduler
    /// throttled by the cursor — while DDL/DML/PRAGMA statements execute
    /// eagerly and replay their (small) result through the same cursor
    /// type. See [`crate::cursor`] for the accounting and transaction
    /// protocol.
    ///
    /// ```
    /// use eider_core::Database;
    /// let db = Database::in_memory().unwrap();
    /// let conn = db.connect();
    /// conn.execute("CREATE TABLE t (x INTEGER)").unwrap();
    /// conn.execute("INSERT INTO t VALUES (7), (8), (9)").unwrap();
    /// let mut rows = 0;
    /// let mut cursor = conn.query_stream("SELECT x FROM t WHERE x > 7").unwrap();
    /// while let Some(chunk) = cursor.next_chunk().unwrap() {
    ///     rows += chunk.len();
    /// }
    /// assert_eq!(rows, 2);
    /// ```
    pub fn query_stream(&self, sql: &str) -> Result<ResultCursor> {
        let statements = eider_sql::parse_statements(sql)?;
        let Some((last, rest)) = statements.split_last() else {
            return Err(EiderError::Parse("empty statement".into()));
        };
        for stmt in rest {
            self.run_statement(stmt)?;
        }
        let plan = Binder::new(Arc::clone(self.db.catalog())).bind_statement(last)?;
        let plan = self.optimize_plan(plan)?;
        self.stream_plan(plan)
    }

    /// Apply the logical optimizer unless this session disabled it.
    fn optimize_plan(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        if self.optimize.load(Ordering::Relaxed) {
            optimizer::optimize(plan)
        } else {
            Ok(plan)
        }
    }

    /// Open a cursor over `plan`: plain queries keep their operator tree
    /// (and transaction) alive inside the cursor; every other statement
    /// executes through the materialized path and replays its result.
    fn stream_plan(&self, plan: LogicalPlan) -> Result<ResultCursor> {
        if !is_plain_query(&plan) {
            let result = self.run_plan(plan)?;
            return Ok(ResultCursor::from_materialized(Arc::clone(&self.db), result));
        }
        let names = plan.output_names();
        let types = plan.output_types();
        let (txn, auto) = {
            let cur = self.current_txn.lock();
            match &*cur {
                Some(t) => (Arc::clone(t), false),
                None => (Arc::new(self.db.txn_manager().begin()), true),
            }
        };
        let ctx = self.plan_ctx();
        let lowered = match planner::lower_parallel(&ctx, &txn, &plan) {
            Ok(Some(parallel)) => Ok(parallel),
            Ok(None) => planner::lower(&ctx, &txn, &plan),
            Err(e) => Err(e),
        };
        match lowered {
            Ok(op) => Ok(ResultCursor::streaming(
                Arc::clone(&self.db),
                self.session.buffers(),
                txn,
                auto,
                names,
                types,
                op,
            )),
            Err(e) => {
                if auto {
                    if let Ok(txn) = Arc::try_unwrap(txn) {
                        let _ = txn.rollback();
                    }
                }
                Err(e)
            }
        }
    }

    /// Run statements, returning the affected-row count of the last one
    /// (0 for non-modifying statements).
    pub fn execute(&self, sql: &str) -> Result<u64> {
        let result = self.query(sql)?;
        if result.column_names() == ["Count"] && result.row_count() == 1 {
            if let Ok(Value::BigInt(n)) = result.scalar() {
                return Ok(n as u64);
            }
        }
        Ok(0)
    }

    /// True if an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.current_txn.lock().is_some()
    }

    fn run_statement(&self, stmt: &eider_sql::ast::Statement) -> Result<MaterializedResult> {
        let plan = Binder::new(Arc::clone(self.db.catalog())).bind_statement(stmt)?;
        let plan = self.optimize_plan(plan)?;
        self.run_plan(plan)
    }

    fn run_plan(&self, plan: LogicalPlan) -> Result<MaterializedResult> {
        // Transaction-control statements manipulate the session state.
        match &plan {
            LogicalPlan::Begin => {
                let mut cur = self.current_txn.lock();
                if cur.is_some() {
                    return Err(EiderError::Transaction(
                        "a transaction is already in progress".into(),
                    ));
                }
                *cur = Some(Arc::new(self.db.txn_manager().begin()));
                return Ok(empty_result());
            }
            LogicalPlan::Commit => {
                let txn = self.take_txn()?;
                self.db.commit_transaction(txn)?;
                return Ok(empty_result());
            }
            LogicalPlan::Rollback => {
                let txn = self.take_txn()?;
                txn.rollback()?;
                return Ok(empty_result());
            }
            LogicalPlan::Checkpoint => {
                self.db.checkpoint()?;
                return Ok(empty_result());
            }
            LogicalPlan::Pragma { name, value } => return self.run_pragma(name, value.as_ref()),
            LogicalPlan::Explain { input } => {
                let mut lines: Vec<Vec<Value>> =
                    input.explain().lines().map(|l| vec![Value::Varchar(l.to_string())]).collect();
                // Physical routing verdict: would this plan run on the
                // parallel pipeline DAG, and with how many workers?
                if is_plain_query(input) {
                    let hint = planner::routing_hint(&self.plan_ctx(), input);
                    lines.push(vec![Value::Varchar(hint)]);
                }
                let chunk = DataChunk::from_rows(&[LogicalType::Varchar], &lines)?;
                return Ok(MaterializedResult::new(
                    vec!["explain".into()],
                    vec![LogicalType::Varchar],
                    vec![chunk],
                ));
            }
            LogicalPlan::ShowTables => {
                let rows: Vec<Vec<Value>> = self
                    .db
                    .catalog()
                    .table_names()
                    .into_iter()
                    .map(|n| vec![Value::Varchar(n)])
                    .collect();
                let chunk = DataChunk::from_rows(&[LogicalType::Varchar], &rows)?;
                return Ok(MaterializedResult::new(
                    vec!["name".into()],
                    vec![LogicalType::Varchar],
                    vec![chunk],
                ));
            }
            _ => {}
        }
        // Everything else runs inside a transaction: the session's explicit
        // one, or an auto-commit transaction per statement.
        let (txn, auto) = {
            let cur = self.current_txn.lock();
            match &*cur {
                Some(t) => (Arc::clone(t), false),
                None => (Arc::new(self.db.txn_manager().begin()), true),
            }
        };
        let result = self.execute_in_txn(&txn, plan);
        if auto {
            match result {
                Ok(r) => {
                    let txn = Arc::try_unwrap(txn).map_err(|_| {
                        EiderError::Internal("query kept the transaction alive".into())
                    })?;
                    self.db.commit_transaction(txn)?;
                    Ok(r)
                }
                Err(e) => {
                    if let Ok(txn) = Arc::try_unwrap(txn) {
                        let _ = txn.rollback();
                    }
                    Err(e)
                }
            }
        } else {
            result
        }
    }

    fn take_txn(&self) -> Result<Transaction> {
        let mut cur = self.current_txn.lock();
        let arc = cur
            .take()
            .ok_or_else(|| EiderError::Transaction("no transaction is in progress".into()))?;
        match Arc::try_unwrap(arc) {
            Ok(txn) => Ok(txn),
            Err(arc) => {
                // A cursor still reads under this transaction: refuse to
                // finish it, but keep it open — the session can retry once
                // the stream is closed.
                *cur = Some(arc);
                Err(EiderError::Transaction(
                    "cannot finish transaction: a query result stream is still open".into(),
                ))
            }
        }
    }

    fn execute_in_txn(
        &self,
        txn: &Arc<Transaction>,
        plan: LogicalPlan,
    ) -> Result<MaterializedResult> {
        match plan {
            LogicalPlan::CreateTable { name, mut columns, if_not_exists, as_select } => {
                if let Some(select) = &as_select {
                    // CTAS derives the schema from the query.
                    let names = select.output_names();
                    let types = select.output_types();
                    columns = names
                        .iter()
                        .zip(&types)
                        .map(|(n, &t)| eider_catalog::ColumnDefinition::new(n.clone(), t))
                        .collect();
                }
                let entry =
                    self.db.catalog().create_table(&name, columns.clone(), if_not_exists)?;
                self.db.txn_manager().register_table(&entry.data);
                self.db.wal_append(&WalRecord::CreateTable { name, columns })?;
                if let Some(select) = as_select {
                    let insert = LogicalPlan::Insert { entry, input: select };
                    return self.execute_in_txn(txn, insert);
                }
                Ok(empty_result())
            }
            LogicalPlan::DropTable { name, if_exists } => {
                self.db.catalog().drop_table(&name, if_exists)?;
                self.db.wal_append(&WalRecord::DropTable { name })?;
                Ok(empty_result())
            }
            LogicalPlan::CreateView { name, sql, or_replace } => {
                self.db.catalog().create_view(&name, &sql, or_replace)?;
                self.db.wal_append(&WalRecord::CreateView { name, sql })?;
                Ok(empty_result())
            }
            LogicalPlan::DropView { name, if_exists } => {
                self.db.catalog().drop_view(&name, if_exists)?;
                self.db.wal_append(&WalRecord::DropView { name })?;
                Ok(empty_result())
            }
            LogicalPlan::Insert { entry, input } => {
                // Materialize the source so the WAL can log it, then append
                // under the append lock (faithful physical positions).
                let mut child = planner::lower(&self.plan_ctx(), txn, &input)?;
                let chunks = drain(child.as_mut())?;
                // Cast to table layout before logging: the WAL image must
                // be exactly what lands in storage.
                let types = entry.column_types();
                let mut cast_chunks = Vec::with_capacity(chunks.len());
                for chunk in chunks {
                    let mut cols = Vec::with_capacity(types.len());
                    for (i, &ty) in types.iter().enumerate() {
                        let col = chunk.column(i).cast(ty)?;
                        let def = &entry.columns[i];
                        if def.not_null && !col.validity().all_valid() {
                            return Err(EiderError::Constraint(format!(
                                "NOT NULL constraint violated: column \"{}\" of table \"{}\"",
                                def.name, entry.name
                            )));
                        }
                        cols.push(col);
                    }
                    cast_chunks.push(DataChunk::from_vectors(cols)?);
                }
                let mut inserted = 0u64;
                self.db.with_append_lock(|| {
                    let mut first_row = entry.data.physical_rows() as u64;
                    for chunk in &cast_chunks {
                        self.db.wal_append(&WalRecord::Append {
                            txn_id: txn.id(),
                            table: entry.name.clone(),
                            first_row,
                            chunk: chunk.clone(),
                        })?;
                        entry.data.append_chunk(txn, chunk)?;
                        first_row += chunk.len() as u64;
                        inserted += chunk.len() as u64;
                    }
                    Ok(())
                })?;
                Ok(count_result(inserted))
            }
            LogicalPlan::Update { entry, input, columns } => {
                let mut child = planner::lower(&self.plan_ctx(), txn, &input)?;
                let chunks = drain(child.as_mut())?;
                let (payloads, rows) = persist::split_row_ids(&chunks)?;
                // Log one record per assigned column (column-wise, §2).
                for (k, &col) in columns.iter().enumerate() {
                    let ty = entry.columns[col].ty;
                    let mut values = Vector::with_capacity(ty, rows.len());
                    for p in &payloads {
                        values.append_from(&p.column(k).cast(ty)?, 0, p.len())?;
                    }
                    self.db.wal_append(&WalRecord::Update {
                        txn_id: txn.id(),
                        table: entry.name.clone(),
                        column: col as u32,
                        rows: rows.clone(),
                        values,
                    })?;
                }
                // Execute through the standard operator.
                let src = eider_exec::ops::ValuesOp::new(
                    chunks.first().map(|c| c.types()).unwrap_or_default(),
                    chunks,
                );
                let mut op = eider_exec::ops::UpdateOp::new(
                    Arc::clone(&entry),
                    Box::new(src),
                    Arc::clone(txn),
                    columns,
                );
                let out = drain(&mut op)?;
                let n = out
                    .first()
                    .and_then(|c| c.row_values(0).first().and_then(Value::as_i64))
                    .unwrap_or(0);
                Ok(count_result(n as u64))
            }
            LogicalPlan::Delete { entry, input } => {
                let mut child = planner::lower(&self.plan_ctx(), txn, &input)?;
                let chunks = drain(child.as_mut())?;
                let (_, rows) = persist::split_row_ids(&chunks)?;
                self.db.wal_append(&WalRecord::Delete {
                    txn_id: txn.id(),
                    table: entry.name.clone(),
                    rows,
                })?;
                let src = eider_exec::ops::ValuesOp::new(
                    chunks.first().map(|c| c.types()).unwrap_or_default(),
                    chunks,
                );
                let mut op = eider_exec::ops::DeleteOp::new(
                    Arc::clone(&entry),
                    Box::new(src),
                    Arc::clone(txn),
                );
                let out = drain(&mut op)?;
                let n = out
                    .first()
                    .and_then(|c| c.row_values(0).first().and_then(Value::as_i64))
                    .unwrap_or(0);
                Ok(count_result(n as u64))
            }
            LogicalPlan::CopyFrom { entry, path, options } => {
                let opts = CsvReadOptions {
                    header: options.header,
                    delimiter: options.delimiter,
                    null_string: options.null_string.clone(),
                    ..Default::default()
                };
                // Fields parse directly as the table's declared types
                // (no sniff-and-cast); the TableSource drain loop is the
                // same one behind read_csv and Appender::from_source,
                // with WAL logging layered on here where it belongs.
                let source = CsvSource::open(&path, opts)?.with_types(entry.column_types())?;
                let projection: Vec<usize> = (0..entry.columns.len()).collect();
                let mut loaded = 0u64;
                for_each_chunk(&source, &projection, |chunk| {
                    for (col, def) in chunk.columns().iter().zip(&entry.columns) {
                        if def.not_null && !col.validity().all_valid() {
                            return Err(EiderError::Constraint(format!(
                                "NOT NULL constraint violated loading \"{}\"",
                                def.name
                            )));
                        }
                    }
                    self.db.with_append_lock(|| {
                        let first_row = entry.data.physical_rows() as u64;
                        self.db.wal_append(&WalRecord::Append {
                            txn_id: txn.id(),
                            table: entry.name.clone(),
                            first_row,
                            chunk: chunk.clone(),
                        })?;
                        entry.data.append_chunk(txn, &chunk)
                    })?;
                    loaded += chunk.len() as u64;
                    Ok(())
                })?;
                Ok(count_result(loaded))
            }
            LogicalPlan::CopyTo { input, path, options } => {
                let names = input.output_names();
                let mut child = planner::lower(&self.plan_ctx(), txn, &input)?;
                let header = if options.header { Some(names.as_slice()) } else { None };
                let mut writer = CsvWriter::create(&path, header, options.delimiter)?;
                while let Some(chunk) = child.next_chunk()? {
                    writer.write_chunk(&chunk)?;
                }
                Ok(count_result(writer.finish()?))
            }
            // Plain queries: morsel-parallel when the planner recognizes
            // the shape and the cooperation policy grants more than one
            // worker; the serial pull loop otherwise.
            query => {
                let names = query.output_names();
                let types = query.output_types();
                let ctx = self.plan_ctx();
                let mut op = match planner::lower_parallel(&ctx, txn, &query)? {
                    Some(parallel) => parallel,
                    None => planner::lower(&ctx, txn, &query)?,
                };
                let chunks = drain(op.as_mut())?;
                Ok(MaterializedResult::new(names, types, chunks))
            }
        }
    }

    fn run_pragma(&self, name: &str, value: Option<&Value>) -> Result<MaterializedResult> {
        let db = &self.db;
        let reply = |v: Value| {
            let chunk = DataChunk::from_rows(
                &[v.logical_type().unwrap_or(LogicalType::Varchar)],
                &[vec![v]],
            )?;
            Ok(MaterializedResult::new(vec![name.to_string()], chunk.types(), vec![chunk]))
        };
        match name {
            "memory_limit" => match value {
                Some(v) => {
                    let bytes = v.as_i64().ok_or_else(|| {
                        EiderError::Bind("PRAGMA memory_limit takes a byte count".into())
                    })?;
                    // The configured base: host-probe memory feedback
                    // shrinks the effective limit from (and recovers to)
                    // this value.
                    db.set_base_memory_limit(bytes as usize);
                    db.buffers().set_memory_limit(bytes as usize);
                    db.policy().set_memory_limit(bytes as usize);
                    reply(Value::BigInt(bytes))
                }
                None => reply(Value::BigInt(db.buffers().memory_limit() as i64)),
            },
            "host_probe" => match value {
                Some(v) => {
                    let enabled = v.as_i64().unwrap_or(0) != 0;
                    if !db.set_host_probe(enabled) {
                        return Err(EiderError::Bind(
                            "PRAGMA host_probe: /proc is not available on this host".into(),
                        ));
                    }
                    reply(Value::BigInt(i64::from(enabled)))
                }
                None => reply(Value::BigInt(i64::from(db.config().host_probe))),
            },
            "threads" => match value {
                Some(v) => {
                    let n = v.as_i64().unwrap_or(1).max(1) as usize;
                    db.policy().set_threads(n);
                    // The shared fleet divides this new total across
                    // admitted graphs from their next launch round.
                    db.fleet().set_threads(db.policy().worker_threads());
                    reply(Value::BigInt(n as i64))
                }
                None => reply(Value::BigInt(db.policy().threads() as i64)),
            },
            "session_memory_limit" => match value {
                Some(v) => {
                    let bytes = v.as_i64().ok_or_else(|| {
                        EiderError::Bind("PRAGMA session_memory_limit takes a byte count".into())
                    })?;
                    if bytes <= 0 {
                        return Err(EiderError::Bind(
                            "PRAGMA session_memory_limit must be positive".into(),
                        ));
                    }
                    // Pin this session's quota; pinned quotas are exempt
                    // from host-probe rebalancing.
                    self.session.set_quota(bytes as usize);
                    reply(Value::BigInt(bytes))
                }
                // The *effective* quota: the session account's limit
                // capped by the global one.
                None => reply(Value::BigInt(self.session.buffers().memory_limit() as i64)),
            },
            "admission_limit" => match value {
                Some(v) => {
                    let n = v.as_i64().unwrap_or(0);
                    if n <= 0 {
                        return Err(EiderError::Bind(
                            "PRAGMA admission_limit must be positive".into(),
                        ));
                    }
                    db.fleet().set_admission_cap(n as usize);
                    reply(Value::BigInt(n))
                }
                None => reply(Value::BigInt(db.fleet().admission_cap() as i64)),
            },
            "compression" => match value {
                Some(v) => {
                    let level = match v.as_str().unwrap_or("").to_ascii_lowercase().as_str() {
                        "none" => CompressionLevel::None,
                        "light" => CompressionLevel::Light,
                        "heavy" => CompressionLevel::Heavy,
                        other => {
                            return Err(EiderError::Bind(format!(
                                "unknown compression level '{other}' (none/light/heavy)"
                            )))
                        }
                    };
                    db.policy().set_compression(level);
                    reply(Value::Varchar(level.label().into()))
                }
                None => reply(Value::Varchar(db.policy().compression().label().into())),
            },
            "wal_autocheckpoint" => match value {
                Some(v) => {
                    let bytes = v.as_i64().unwrap_or(0).max(0) as u64;
                    db.set_wal_autocheckpoint(bytes);
                    reply(Value::BigInt(bytes as i64))
                }
                None => reply(Value::BigInt(db.config().wal_autocheckpoint as i64)),
            },
            "optimizer" => match value {
                Some(v) => {
                    let enabled = v.as_i64().unwrap_or(1) != 0;
                    self.optimize.store(enabled, Ordering::Relaxed);
                    reply(Value::BigInt(i64::from(enabled)))
                }
                None => reply(Value::BigInt(i64::from(self.optimize.load(Ordering::Relaxed)))),
            },
            "database_size" => {
                reply(Value::BigInt((db.block_count() * eider_storage::BLOCK_SIZE as u64) as i64))
            }
            "wal_size" => reply(Value::BigInt(db.wal_size() as i64)),
            other => Err(EiderError::Bind(format!("unknown PRAGMA \"{other}\""))),
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        // Abandon any open explicit transaction, then let the database
        // prune this session and return its quota share to the survivors.
        if let Some(txn) = self.current_txn.lock().take() {
            if let Ok(txn) = Arc::try_unwrap(txn) {
                let _ = txn.rollback();
            }
        }
        self.db.session_closed(self.session.id());
    }
}

/// Plan shapes the streaming path executes directly: the read-only query
/// subset whose operators pull chunks on demand. Everything else (DDL,
/// DML, transaction control, PRAGMAs, EXPLAIN, …) runs eagerly through
/// the materialized statement path.
fn is_plain_query(plan: &LogicalPlan) -> bool {
    matches!(
        plan,
        LogicalPlan::TableScan { .. }
            | LogicalPlan::ExternalScan { .. }
            | LogicalPlan::Filter { .. }
            | LogicalPlan::Projection { .. }
            | LogicalPlan::Aggregate { .. }
            | LogicalPlan::Sort { .. }
            | LogicalPlan::Limit { .. }
            | LogicalPlan::Distinct { .. }
            | LogicalPlan::Join { .. }
            | LogicalPlan::NestedLoopJoin { .. }
            | LogicalPlan::CrossJoin { .. }
            | LogicalPlan::Union { .. }
            | LogicalPlan::Values { .. }
            | LogicalPlan::SingleRow
    )
}

fn empty_result() -> MaterializedResult {
    MaterializedResult::new(Vec::new(), Vec::new(), Vec::new())
}

fn count_result(n: u64) -> MaterializedResult {
    let chunk = DataChunk::from_rows(&[LogicalType::BigInt], &[vec![Value::BigInt(n as i64)]])
        .expect("count chunk");
    MaterializedResult::new(vec!["Count".into()], vec![LogicalType::BigInt], vec![chunk])
}
