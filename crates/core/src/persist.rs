//! Persistence: logical WAL records, checkpoint image, recovery.
//!
//! §6's protocol, implemented end to end:
//!
//! * every data-changing statement appends logical records to the WAL
//!   (separate file, checksummed by the storage layer); a transaction
//!   becomes durable when its COMMIT record is fsynced;
//! * CHECKPOINT serializes catalog + all committed table data into a fresh
//!   meta-block chain inside the single database file, atomically switches
//!   the header's root pointer, frees the previous chain's blocks and
//!   truncates the WAL;
//! * recovery loads the last checkpoint image, then replays the WAL:
//!   appends replay for *all* transactions (aborted ones as dead rows, so
//!   physical row ids stay faithful), updates/deletes only for committed
//!   transactions.

use eider_catalog::{Catalog, ColumnDefinition};
use eider_storage::file_manager::BlockManager;
use eider_storage::meta::{MetaBlockReader, MetaBlockWriter};
use eider_storage::serde::{
    read_chunk, read_value, read_vector, tag_to_type, type_to_tag, write_chunk, write_value,
    write_vector, BinReader, BinWriter,
};
use eider_txn::{RowId, Transaction, TransactionManager, ROW_GROUP_SIZE};
use eider_vector::{DataChunk, EiderError, Result, Value, Vector};
use std::sync::Arc;

/// Convert a linear physical row number into a [`RowId`].
pub fn row_id_from_linear(idx: u64) -> RowId {
    RowId { group: (idx / ROW_GROUP_SIZE as u64) as u32, row: (idx % ROW_GROUP_SIZE as u64) as u32 }
}

/// Logical WAL record kinds.
#[derive(Debug)]
pub enum WalRecord {
    CreateTable {
        name: String,
        columns: Vec<ColumnDefinition>,
    },
    DropTable {
        name: String,
    },
    CreateView {
        name: String,
        sql: String,
    },
    DropView {
        name: String,
    },
    /// Bulk append of a chunk in table-column order. `first_row` is the
    /// linear physical position the chunk landed at.
    Append {
        txn_id: u64,
        table: String,
        first_row: u64,
        chunk: DataChunk,
    },
    /// Column-wise update: unchanged columns never hit the log (§2).
    Update {
        txn_id: u64,
        table: String,
        column: u32,
        rows: Vec<u64>,
        values: Vector,
    },
    Delete {
        txn_id: u64,
        table: String,
        rows: Vec<u64>,
    },
    Commit {
        txn_id: u64,
    },
}

const TAG_CREATE_TABLE: u8 = 1;
const TAG_DROP_TABLE: u8 = 2;
const TAG_CREATE_VIEW: u8 = 3;
const TAG_DROP_VIEW: u8 = 4;
const TAG_APPEND: u8 = 5;
const TAG_UPDATE: u8 = 6;
const TAG_DELETE: u8 = 7;
const TAG_COMMIT: u8 = 8;

fn write_column_defs(w: &mut BinWriter, columns: &[ColumnDefinition]) {
    w.write_u32(columns.len() as u32);
    for c in columns {
        w.write_str(&c.name);
        w.write_u8(type_to_tag(c.ty));
        w.write_bool(c.not_null);
        match &c.default {
            Some(v) => {
                w.write_bool(true);
                write_value(w, v);
            }
            None => w.write_bool(false),
        }
    }
}

fn read_column_defs(r: &mut BinReader) -> Result<Vec<ColumnDefinition>> {
    let n = r.read_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.read_str()?;
        let ty = tag_to_type(r.read_u8()?)?;
        let not_null = r.read_bool()?;
        let default = if r.read_bool()? { Some(read_value(r)?) } else { None };
        let mut def = ColumnDefinition::new(name, ty);
        def.not_null = not_null;
        def.default = default;
        out.push(def);
    }
    Ok(out)
}

impl WalRecord {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = BinWriter::new();
        match self {
            WalRecord::CreateTable { name, columns } => {
                w.write_u8(TAG_CREATE_TABLE);
                w.write_str(name);
                write_column_defs(&mut w, columns);
            }
            WalRecord::DropTable { name } => {
                w.write_u8(TAG_DROP_TABLE);
                w.write_str(name);
            }
            WalRecord::CreateView { name, sql } => {
                w.write_u8(TAG_CREATE_VIEW);
                w.write_str(name);
                w.write_str(sql);
            }
            WalRecord::DropView { name } => {
                w.write_u8(TAG_DROP_VIEW);
                w.write_str(name);
            }
            WalRecord::Append { txn_id, table, first_row, chunk } => {
                w.write_u8(TAG_APPEND);
                w.write_u64(*txn_id);
                w.write_str(table);
                w.write_u64(*first_row);
                write_chunk(&mut w, chunk);
            }
            WalRecord::Update { txn_id, table, column, rows, values } => {
                w.write_u8(TAG_UPDATE);
                w.write_u64(*txn_id);
                w.write_str(table);
                w.write_u32(*column);
                w.write_u64(rows.len() as u64);
                for r in rows {
                    w.write_u64(*r);
                }
                write_vector(&mut w, values);
            }
            WalRecord::Delete { txn_id, table, rows } => {
                w.write_u8(TAG_DELETE);
                w.write_u64(*txn_id);
                w.write_str(table);
                w.write_u64(rows.len() as u64);
                for r in rows {
                    w.write_u64(*r);
                }
            }
            WalRecord::Commit { txn_id } => {
                w.write_u8(TAG_COMMIT);
                w.write_u64(*txn_id);
            }
        }
        w.into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> Result<WalRecord> {
        let mut r = BinReader::new(bytes);
        let tag = r.read_u8()?;
        Ok(match tag {
            TAG_CREATE_TABLE => {
                WalRecord::CreateTable { name: r.read_str()?, columns: read_column_defs(&mut r)? }
            }
            TAG_DROP_TABLE => WalRecord::DropTable { name: r.read_str()? },
            TAG_CREATE_VIEW => WalRecord::CreateView { name: r.read_str()?, sql: r.read_str()? },
            TAG_DROP_VIEW => WalRecord::DropView { name: r.read_str()? },
            TAG_APPEND => WalRecord::Append {
                txn_id: r.read_u64()?,
                table: r.read_str()?,
                first_row: r.read_u64()?,
                chunk: read_chunk(&mut r)?,
            },
            TAG_UPDATE => {
                let txn_id = r.read_u64()?;
                let table = r.read_str()?;
                let column = r.read_u32()?;
                let n = r.read_u64()? as usize;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(r.read_u64()?);
                }
                let values = read_vector(&mut r)?;
                WalRecord::Update { txn_id, table, column, rows, values }
            }
            TAG_DELETE => {
                let txn_id = r.read_u64()?;
                let table = r.read_str()?;
                let n = r.read_u64()? as usize;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(r.read_u64()?);
                }
                WalRecord::Delete { txn_id, table, rows }
            }
            TAG_COMMIT => WalRecord::Commit { txn_id: r.read_u64()? },
            other => return Err(EiderError::Corruption(format!("unknown WAL record tag {other}"))),
        })
    }
}

/// Replay decoded WAL records onto the catalog. Returns how many committed
/// transactions were applied.
pub fn replay_wal(
    records: &[Vec<u8>],
    catalog: &Arc<Catalog>,
    txn_mgr: &Arc<TransactionManager>,
) -> Result<usize> {
    // Pass 1: which transactions committed?
    let mut committed = std::collections::HashSet::new();
    let mut decoded = Vec::with_capacity(records.len());
    for bytes in records {
        let rec = WalRecord::decode(bytes)?;
        if let WalRecord::Commit { txn_id } = &rec {
            committed.insert(*txn_id);
        }
        decoded.push(rec);
    }
    // Pass 2: apply in order through one replay transaction.
    let txn = txn_mgr.begin();
    for rec in decoded {
        match rec {
            WalRecord::CreateTable { name, columns } => {
                catalog.create_table(&name, columns, true)?;
            }
            WalRecord::DropTable { name } => catalog.drop_table(&name, true)?,
            WalRecord::CreateView { name, sql } => catalog.create_view(&name, &sql, true)?,
            WalRecord::DropView { name } => catalog.drop_view(&name, true)?,
            WalRecord::Append { txn_id, table, first_row, chunk } => {
                let entry = catalog.get_table(&table)?;
                let at = entry.data.physical_rows() as u64;
                if at != first_row {
                    return Err(EiderError::Corruption(format!(
                        "WAL append for {table} expected physical row {first_row}, table is at {at}"
                    )));
                }
                entry.data.append_chunk(&txn, &chunk)?;
                if !committed.contains(&txn_id) {
                    // Aborted transaction: the rows must exist physically
                    // (later records address physical positions) but never
                    // become visible.
                    let rows: Vec<RowId> = (first_row..first_row + chunk.len() as u64)
                        .map(row_id_from_linear)
                        .collect();
                    entry.data.delete_rows(&txn, &rows)?;
                }
            }
            WalRecord::Update { txn_id, table, column, rows, values } => {
                if committed.contains(&txn_id) {
                    let entry = catalog.get_table(&table)?;
                    let ids: Vec<RowId> = rows.iter().map(|&r| row_id_from_linear(r)).collect();
                    entry.data.update_rows(&txn, &ids, column as usize, &values)?;
                }
            }
            WalRecord::Delete { txn_id, table, rows } => {
                if committed.contains(&txn_id) {
                    let entry = catalog.get_table(&table)?;
                    let ids: Vec<RowId> = rows.iter().map(|&r| row_id_from_linear(r)).collect();
                    entry.data.delete_rows(&txn, &ids)?;
                }
            }
            WalRecord::Commit { .. } => {}
        }
    }
    txn.commit()?;
    Ok(committed.len())
}

/// Serialize the full database image (catalog + committed data) through
/// `txn`'s snapshot into a meta-block chain. Returns the chain root and
/// the blocks it occupies.
pub fn write_checkpoint(
    catalog: &Arc<Catalog>,
    txn: &Transaction,
    mgr: &dyn BlockManager,
) -> Result<(u64, Vec<u64>)> {
    let mut w = MetaBlockWriter::new();
    let tables = catalog.table_names();
    w.writer.write_u32(tables.len() as u32);
    for name in &tables {
        let entry = catalog.get_table(name)?;
        w.writer.write_str(&entry.name);
        write_column_defs(&mut w.writer, &entry.columns);
        // Scan the committed image (snapshot-consistent).
        let opts = eider_txn::ScanOptions {
            columns: (0..entry.columns.len()).collect(),
            filters: Vec::new(),
            emit_row_ids: false,
        };
        let chunks = entry.data.scan_collect(txn, &opts)?;
        w.writer.write_u32(chunks.len() as u32);
        for chunk in &chunks {
            write_chunk(&mut w.writer, chunk);
        }
    }
    let views = catalog.view_names();
    w.writer.write_u32(views.len() as u32);
    for name in &views {
        let view = catalog.get_view(name).ok_or_else(|| {
            EiderError::Internal(format!("view {name} vanished during checkpoint"))
        })?;
        w.writer.write_str(&view.name);
        w.writer.write_str(&view.sql);
    }
    w.finish(mgr)
}

/// Load a checkpoint image into a fresh catalog. Returns the blocks the
/// chain occupies (so the caller can mark the rest free).
pub fn load_checkpoint(
    root: u64,
    mgr: &dyn BlockManager,
    catalog: &Arc<Catalog>,
    txn_mgr: &Arc<TransactionManager>,
) -> Result<Vec<u64>> {
    let reader = MetaBlockReader::read_chain(mgr, root)?;
    let blocks = reader.blocks.clone();
    let mut r = reader.reader();
    let txn = txn_mgr.begin();
    let tables = r.read_u32()? as usize;
    for _ in 0..tables {
        let name = r.read_str()?;
        let columns = read_column_defs(&mut r)?;
        let entry = catalog.create_table(&name, columns, false)?;
        txn_mgr.register_table(&entry.data);
        let chunks = r.read_u32()? as usize;
        for _ in 0..chunks {
            let chunk = read_chunk(&mut r)?;
            entry.data.append_chunk(&txn, &chunk)?;
        }
    }
    let views = r.read_u32()? as usize;
    for _ in 0..views {
        let name = r.read_str()?;
        let sql = r.read_str()?;
        catalog.create_view(&name, &sql, false)?;
    }
    txn.commit()?;
    Ok(blocks)
}

/// Capture all chunks of an operator's output plus the linear row ids
/// column (used when logging updates/deletes). Splits the trailing row-id
/// column from the payload.
pub fn split_row_ids(chunks: &[DataChunk]) -> Result<(Vec<DataChunk>, Vec<u64>)> {
    let mut rows = Vec::new();
    let mut payloads = Vec::new();
    for chunk in chunks {
        let idx_col = chunk.column_count() - 1;
        let ids = chunk.column(idx_col);
        for row in 0..chunk.len() {
            match ids.get_value(row) {
                Value::BigInt(v) => {
                    let rid = RowId::decode(v);
                    rows.push(rid.group as u64 * ROW_GROUP_SIZE as u64 + rid.row as u64);
                }
                other => return Err(EiderError::Internal(format!("bad row id value {other}"))),
            }
        }
        payloads.push(chunk.project(&(0..idx_col).collect::<Vec<_>>()));
    }
    Ok((payloads, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_vector::LogicalType;

    #[test]
    fn records_round_trip() {
        let chunk = DataChunk::from_rows(
            &[LogicalType::Integer],
            &[vec![Value::Integer(1)], vec![Value::Integer(2)]],
        )
        .unwrap();
        let values =
            Vector::from_values(LogicalType::Integer, &[Value::Null, Value::Integer(5)]).unwrap();
        let records = vec![
            WalRecord::CreateTable {
                name: "t".into(),
                columns: vec![ColumnDefinition::new("a", LogicalType::Integer).not_null()],
            },
            WalRecord::Append { txn_id: 9, table: "t".into(), first_row: 0, chunk },
            WalRecord::Update { txn_id: 9, table: "t".into(), column: 0, rows: vec![0, 1], values },
            WalRecord::Delete { txn_id: 9, table: "t".into(), rows: vec![1] },
            WalRecord::Commit { txn_id: 9 },
            WalRecord::DropTable { name: "t".into() },
            WalRecord::CreateView { name: "v".into(), sql: "SELECT 1".into() },
            WalRecord::DropView { name: "v".into() },
        ];
        for rec in records {
            let bytes = rec.encode();
            let back = WalRecord::decode(&bytes).unwrap();
            assert_eq!(format!("{rec:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn corrupt_record_rejected() {
        assert!(WalRecord::decode(&[99, 0, 0]).is_err());
        assert!(WalRecord::decode(&[]).is_err());
    }

    #[test]
    fn linear_row_ids() {
        let rid = row_id_from_linear(ROW_GROUP_SIZE as u64 + 5);
        assert_eq!(rid.group, 1);
        assert_eq!(rid.row, 5);
    }

    #[test]
    fn replay_applies_committed_skips_aborted() {
        let catalog = Catalog::new();
        let txn_mgr = TransactionManager::new();
        let chunk_a = DataChunk::from_rows(
            &[LogicalType::Integer],
            &[vec![Value::Integer(1)], vec![Value::Integer(2)]],
        )
        .unwrap();
        let chunk_b =
            DataChunk::from_rows(&[LogicalType::Integer], &[vec![Value::Integer(99)]]).unwrap();
        let records: Vec<Vec<u8>> = vec![
            WalRecord::CreateTable {
                name: "t".into(),
                columns: vec![ColumnDefinition::new("a", LogicalType::Integer)],
            }
            .encode(),
            // txn 1 commits; txn 2 aborts (no commit marker).
            WalRecord::Append { txn_id: 1, table: "t".into(), first_row: 0, chunk: chunk_a }
                .encode(),
            WalRecord::Append { txn_id: 2, table: "t".into(), first_row: 2, chunk: chunk_b }
                .encode(),
            WalRecord::Update {
                txn_id: 1,
                table: "t".into(),
                column: 0,
                rows: vec![0],
                values: Vector::from_values(LogicalType::Integer, &[Value::Integer(10)]).unwrap(),
            }
            .encode(),
            WalRecord::Commit { txn_id: 1 }.encode(),
        ];
        let applied = replay_wal(&records, &catalog, &txn_mgr).unwrap();
        assert_eq!(applied, 1);
        let entry = catalog.get_table("t").unwrap();
        let txn = txn_mgr.begin();
        let opts = eider_txn::ScanOptions { columns: vec![0], ..Default::default() };
        let rows: Vec<Vec<Value>> = entry
            .data
            .scan_collect(&txn, &opts)
            .unwrap()
            .iter()
            .flat_map(|c| c.to_rows())
            .collect();
        // Aborted append (99) invisible; committed update applied.
        assert_eq!(rows, vec![vec![Value::Integer(10)], vec![Value::Integer(2)]]);
        // The physical layout still contains the dead row.
        assert_eq!(entry.data.physical_rows(), 3);
    }
}
