//! Streaming query results: the incremental engine-to-host handoff.
//!
//! MonetDB/e and DuckDB's embedding story (§5 of the paper) hinges on a
//! cheap result transfer: the host application lives in the same address
//! space, so a result should *stream* out of the engine chunk by chunk —
//! not be copied into a monolithic buffer first. [`ResultCursor`] is that
//! handoff. [`Connection::query_stream`](crate::Connection::query_stream)
//! returns one; each [`next_chunk`](ResultCursor::next_chunk) pulls the
//! next `Arc<DataChunk>` straight from the executor:
//!
//! * **Serial plans** produce the chunk on demand — the Volcano pull loop
//!   runs exactly as far as the application has consumed.
//! * **Parallel plans** run their pipeline DAG on a background scheduler
//!   whose output nodes feed a byte-bounded
//!   [`ChunkQueue`](eider_exec::parallel::ChunkQueue); a slow consumer
//!   therefore *throttles the workers* instead of the engine buffering
//!   the whole result set.
//!
//! **§4 accounting.** The chunk currently held by the application is
//! charged to the [`BufferManager`] and released when the cursor advances
//! (in-flight parallel batches carry their own reservations inside the
//! queue). Under a budget too tight for even one vector the handoff
//! proceeds unaccounted — bounded by a single chunk, the same class of
//! exception as the serial operators' scratch buffers.
//!
//! **Transactions.** A cursor opened outside an explicit transaction holds
//! its own auto-commit transaction and commits it when the stream is
//! exhausted (or rolls back on error/drop). Inside `BEGIN … COMMIT` the
//! cursor shares the session transaction; attempting to `COMMIT` while a
//! cursor is still open fails with "a query result stream is still open".
//!
//! Dropping a cursor mid-stream cancels the query: serial operators stop
//! being pulled, and a parallel graph's result queue aborts, failing its
//! producers fast and joining the scheduler thread.
//!
//! ```
//! use eider_core::Database;
//!
//! let db = Database::in_memory().unwrap();
//! let conn = db.connect();
//! conn.execute("CREATE TABLE t (x INTEGER)").unwrap();
//! conn.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
//! let mut cursor = conn.query_stream("SELECT x FROM t").unwrap();
//! assert_eq!(cursor.column_names(), ["x"]);
//! let mut total = 0;
//! while let Some(chunk) = cursor.next_chunk().unwrap() {
//!     for row in 0..chunk.len() {
//!         total += chunk.column(0).get_value(row).as_i64().unwrap();
//!     }
//! }
//! assert_eq!(total, 6);
//! ```
//!
//! [`BufferManager`]: eider_storage::buffer::BufferManager

use crate::database::Database;
use eider_client::MaterializedResult;
use eider_etl::ArrowWriter;
use eider_exec::ops::OperatorBox;
use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_txn::Transaction;
use eider_vector::{DataChunk, EiderError, LogicalType, Result};
use std::sync::Arc;

/// Where the cursor's chunks come from.
enum Source {
    /// A live operator stream — the serial pull tree, or the
    /// [`PipelineGraphOp`](eider_exec::parallel::PipelineGraphOp) facade
    /// over a background pipeline DAG. Dropped (`None`) once the stream
    /// finishes, which joins any scheduler thread.
    Operator(Option<OperatorBox>),
    /// An already-materialized result (non-query statements: DDL, DML
    /// counts, PRAGMAs, EXPLAIN, …) replayed chunk by chunk.
    Chunks(std::vec::IntoIter<Arc<DataChunk>>),
}

/// An open streaming result: pulls chunks incrementally from the executor,
/// charging each in-flight chunk to the buffer manager. See the [module
/// docs](self) for the full protocol; [`Connection`](crate::Connection)
/// methods construct it.
pub struct ResultCursor {
    db: Arc<Database>,
    /// The account in-flight chunks are charged against: the issuing
    /// session's quota sub-account (so an undrained cursor counts against
    /// its own session, not its siblings), or the root account for
    /// pre-materialized results.
    buffers: Arc<BufferManager>,
    /// The transaction the stream reads under (`None` once finished, or
    /// for pre-materialized results that already committed).
    txn: Option<Arc<Transaction>>,
    /// Whether the cursor owns `txn` as an auto-commit transaction (it
    /// commits on exhaustion); `false` inside explicit transactions.
    auto: bool,
    names: Vec<String>,
    types: Vec<LogicalType>,
    source: Source,
    /// §4 charge for the chunk the application currently holds.
    charge: Option<MemoryReservation>,
    finished: bool,
}

impl ResultCursor {
    pub(crate) fn streaming(
        db: Arc<Database>,
        buffers: Arc<BufferManager>,
        txn: Arc<Transaction>,
        auto: bool,
        names: Vec<String>,
        types: Vec<LogicalType>,
        op: OperatorBox,
    ) -> Self {
        ResultCursor {
            db,
            buffers,
            txn: Some(txn),
            auto,
            names,
            types,
            source: Source::Operator(Some(op)),
            charge: None,
            finished: false,
        }
    }

    /// Wrap an already-materialized result (its statement has fully
    /// executed and committed); the cursor replays its chunks.
    pub(crate) fn from_materialized(db: Arc<Database>, result: MaterializedResult) -> Self {
        let names = result.column_names().to_vec();
        let types = result.column_types().to_vec();
        let chunks: Vec<Arc<DataChunk>> = result.chunks().collect();
        let buffers = db.buffers();
        ResultCursor {
            db,
            buffers,
            txn: None,
            auto: false,
            names,
            types,
            source: Source::Chunks(chunks.into_iter()),
            charge: None,
            finished: false,
        }
    }

    /// Output column names, in position order.
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// Output column types, in position order.
    pub fn column_types(&self) -> &[LogicalType] {
        &self.types
    }

    /// Number of output columns.
    pub fn column_count(&self) -> usize {
        self.types.len()
    }

    /// Pull the next result chunk; `None` once the stream is exhausted.
    ///
    /// The returned chunk is the engine's own buffer behind an `Arc` — the
    /// §5 zero-copy handover. Its bytes stay charged to the buffer manager
    /// until the *next* `next_chunk` call (advancing declares the previous
    /// chunk consumed). Exhaustion commits the cursor's auto-commit
    /// transaction; an executor error rolls it back and is returned.
    pub fn next_chunk(&mut self) -> Result<Option<Arc<DataChunk>>> {
        // Advancing releases the previous chunk's charge.
        self.charge = None;
        if self.finished {
            return Ok(None);
        }
        let next = match &mut self.source {
            Source::Chunks(iter) => iter.next().map(Ok),
            Source::Operator(op) => op
                .as_mut()
                .expect("open stream has an operator")
                .next_chunk()
                .map(|c| c.map(Arc::new))
                .transpose(),
        };
        match next {
            Some(Ok(chunk)) => {
                self.charge = self.buffers.reserve(chunk.size_bytes()).ok();
                Ok(Some(chunk))
            }
            None => {
                self.finish(true)?;
                Ok(None)
            }
            Some(Err(e)) => {
                // Executor failure: wind down and roll back; the stream is
                // closed from here on.
                let _ = self.finish(false);
                Err(e)
            }
        }
    }

    /// Stream the remaining chunks into `out` as an Arrow IPC file (the
    /// engine's hand-rolled framing — see [`eider_etl::arrow`]) and
    /// return the number of rows written. Each result chunk becomes one
    /// record batch as it is pulled, so the export is as incremental as
    /// the query itself: a parallel plan's workers stay throttled by the
    /// writer, and nothing is materialized first. Dictionary-encoded
    /// varchar columns are exported in the compressed domain — codes plus
    /// a shared dictionary batch, no decode. The file round-trips through
    /// `read_arrow` losslessly.
    pub fn export_arrow_ipc(mut self, out: impl std::io::Write) -> Result<u64> {
        let mut writer =
            ArrowWriter::new(out, std::mem::take(&mut self.names), self.types.clone())?;
        while let Some(chunk) = self.next_chunk()? {
            writer.write_chunk(&chunk)?;
        }
        writer.finish()
    }

    /// Drain the remaining stream into a [`MaterializedResult`] (the
    /// convenience [`Connection::query`](crate::Connection::query) uses).
    /// The accumulated result belongs to the application, so — like the
    /// engine's previous materialize-then-return path — it is not charged
    /// to the buffer manager.
    pub fn materialize(mut self) -> Result<MaterializedResult> {
        let mut chunks = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            chunks.push(chunk);
        }
        Ok(MaterializedResult::from_shared(
            std::mem::take(&mut self.names),
            std::mem::take(&mut self.types),
            chunks,
        ))
    }

    /// Close the stream: drop the operator (joining any background
    /// scheduler), release the in-flight charge, and settle the
    /// auto-commit transaction — commit on clean exhaustion, rollback on
    /// error or abandonment.
    fn finish(&mut self, commit: bool) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        // Drop the operator first: a parallel graph joins its scheduler
        // thread here, releasing that thread's transaction reference so
        // the unwrap below can succeed.
        if let Source::Operator(op) = &mut self.source {
            *op = None;
        }
        self.charge = None;
        let Some(txn) = self.txn.take() else { return Ok(()) };
        if !self.auto {
            return Ok(()); // the session owns the explicit transaction
        }
        let txn = Arc::try_unwrap(txn)
            .map_err(|_| EiderError::Internal("query stream kept the transaction alive".into()))?;
        if commit {
            self.db.commit_transaction(txn)?;
        } else {
            let _ = txn.rollback();
        }
        Ok(())
    }
}

impl Drop for ResultCursor {
    fn drop(&mut self) {
        // An abandoned cursor cancels its query and rolls back its
        // auto-commit transaction; errors have nowhere to go from a
        // destructor and the transaction was read-only.
        let _ = self.finish(false);
    }
}

impl std::fmt::Debug for ResultCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCursor")
            .field("columns", &self.names)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}
