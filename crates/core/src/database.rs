//! The `Database`: shared state, storage lifecycle, checkpointing, commit.

use crate::config::DatabaseConfig;
use crate::persist;
use eider_catalog::Catalog;
use eider_coop::hostprobe::HostResourceProbe;
use eider_coop::policy::ResourcePolicy;
use eider_exec::parallel::WorkerFleet;
use eider_resilience::health::HealthMonitor;
use eider_storage::buffer::{BufferManager, BufferManagerConfig};
use eider_storage::file_manager::{BlockManager, SingleFileBlockManager};
use eider_storage::wal::WriteAheadLog;
use eider_storage::INVALID_BLOCK;
use eider_txn::{Transaction, TransactionManager};
use eider_vector::{EiderError, Result};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Quota granted to sessions that never ran
/// `PRAGMA session_memory_limit`: effectively unbounded, so the account
/// chain's min leaves the *global* limit in charge and a single-session
/// embedding behaves exactly as it did before sessions existed. (Half of
/// `usize::MAX` rather than all of it so in-flight charges can never
/// overflow the account's `used + bytes` arithmetic.)
pub(crate) const DEFAULT_SESSION_QUOTA: usize = usize::MAX / 2;

/// Per-connection session state: identity plus the session's memory
/// quota, a [`BufferManager::sub_account`] carved out of the database's
/// root account. Every operator a session's queries plan charges this
/// account, so its reservations are capped by both its quota and the
/// global limit — and are invisible to sibling sessions' quotas.
pub struct SessionState {
    id: u64,
    buffers: Arc<BufferManager>,
    /// Set once the user pins the quota with `PRAGMA
    /// session_memory_limit`; exempt from host-probe rebalancing.
    explicit_quota: AtomicBool,
}

impl SessionState {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The session's buffer account (charges propagate to the root).
    pub fn buffers(&self) -> Arc<BufferManager> {
        Arc::clone(&self.buffers)
    }

    /// Pin the session quota (`PRAGMA session_memory_limit`); a pinned
    /// quota is left alone by [`Database::rebalance_session_quotas`].
    pub(crate) fn set_quota(&self, bytes: usize) {
        self.buffers.set_memory_limit(bytes);
        self.explicit_quota.store(true, Ordering::Relaxed);
    }
}

struct StorageState {
    block_mgr: SingleFileBlockManager,
    wal: Mutex<WriteAheadLog>,
    /// Blocks occupied by the current checkpoint's meta chain.
    current_chain: Mutex<Vec<u64>>,
    path: PathBuf,
}

/// An embedded analytical database instance.
///
/// Create with [`Database::in_memory`] (transient) or [`Database::open`]
/// (single-file persistent, §6). Cheap to share: wrap in `Arc` via the
/// constructors and open [`crate::Connection`]s from any thread.
pub struct Database {
    catalog: Arc<Catalog>,
    txn_mgr: Arc<TransactionManager>,
    buffers: Arc<BufferManager>,
    policy: Arc<ResourcePolicy>,
    health: Arc<HealthMonitor>,
    /// The `/proc`-based host sampler (`None` off-Linux); consulted only
    /// while `config.host_probe` is on.
    host_probe: Option<HostResourceProbe>,
    /// The database-wide worker budget and admission gate shared by every
    /// session's parallel queries.
    fleet: Arc<WorkerFleet>,
    /// Live sessions (weak — a dropped [`crate::Connection`] unregisters
    /// itself lazily) for quota rebalancing.
    sessions: Mutex<Vec<Weak<SessionState>>>,
    next_session_id: AtomicU64,
    config: Mutex<DatabaseConfig>,
    storage: Option<StorageState>,
    /// Serializes commit finalization + WAL commit marker (see
    /// `commit_transaction`) and checkpointing.
    commit_lock: Mutex<()>,
    /// Serializes append-position capture with table appends so WAL
    /// records carry faithful physical row positions.
    append_lock: Mutex<()>,
}

impl Database {
    /// Open a transient in-memory database.
    pub fn in_memory() -> Result<Arc<Database>> {
        Self::in_memory_with_config(DatabaseConfig::default())
    }

    pub fn in_memory_with_config(config: DatabaseConfig) -> Result<Arc<Database>> {
        Ok(Arc::new(Self::build(config, None)?))
    }

    /// Open (or create) a persistent database at `path`; the WAL lives in
    /// `<path>.wal`.
    pub fn open(path: impl AsRef<Path>) -> Result<Arc<Database>> {
        Self::open_with_config(path, DatabaseConfig::default())
    }

    pub fn open_with_config(
        path: impl AsRef<Path>,
        config: DatabaseConfig,
    ) -> Result<Arc<Database>> {
        let path = path.as_ref().to_path_buf();
        let health = Arc::new(HealthMonitor::new());
        let exists = path.exists();
        let block_mgr = if exists {
            SingleFileBlockManager::open(&path, Arc::clone(&health))?
        } else {
            SingleFileBlockManager::create(&path, Arc::clone(&health))?
        };
        let mut db = Self::build_with_health(config, health)?;
        // Load the checkpoint image.
        let header = block_mgr.current_header();
        let mut chain = Vec::new();
        if header.meta_root != INVALID_BLOCK {
            chain =
                persist::load_checkpoint(header.meta_root, &block_mgr, &db.catalog, &db.txn_mgr)?;
        }
        // Free list = all blocks not in the live chain.
        let used: std::collections::HashSet<u64> = chain.iter().copied().collect();
        let free: Vec<u64> = (0..header.block_count).filter(|b| !used.contains(b)).collect();
        block_mgr.restore_free_list(free, header.block_count);
        // Replay the WAL on top.
        let wal_path = Self::wal_path(&path);
        let (records, torn) = WriteAheadLog::replay(&wal_path)?;
        if torn {
            // A torn tail is expected after a crash; everything before it
            // replays fine. (A mid-log corruption would have surfaced as a
            // checksum failure on an earlier record.)
        }
        persist::replay_wal(&records, &db.catalog, &db.txn_mgr)?;
        let wal = WriteAheadLog::open(&wal_path)?;
        db.storage = Some(StorageState {
            block_mgr,
            wal: Mutex::new(wal),
            current_chain: Mutex::new(chain),
            path,
        });
        Ok(Arc::new(db))
    }

    fn wal_path(path: &Path) -> PathBuf {
        let mut p = path.as_os_str().to_owned();
        p.push(".wal");
        PathBuf::from(p)
    }

    fn build(config: DatabaseConfig, _storage: Option<()>) -> Result<Database> {
        Self::build_with_health(config, Arc::new(HealthMonitor::new()))
    }

    fn build_with_health(config: DatabaseConfig, health: Arc<HealthMonitor>) -> Result<Database> {
        let buffers = BufferManager::with_health(
            BufferManagerConfig {
                memory_limit: config.memory_limit,
                memtest_allocations: config.memtest_allocations,
            },
            Arc::clone(&health),
        );
        let policy = ResourcePolicy::new();
        policy.set_memory_limit(config.memory_limit);
        policy.set_threads(config.threads);
        Ok(Database {
            catalog: Catalog::new(),
            txn_mgr: TransactionManager::new(),
            buffers,
            policy,
            health,
            host_probe: HostResourceProbe::available().then(HostResourceProbe::new),
            fleet: WorkerFleet::new(config.threads),
            sessions: Mutex::new(Vec::new()),
            next_session_id: AtomicU64::new(1),
            config: Mutex::new(config),
            storage: None,
            commit_lock: Mutex::new(()),
            append_lock: Mutex::new(()),
        })
    }

    /// Open a connection (cheap; any number may coexist).
    pub fn connect(self: &Arc<Self>) -> crate::Connection {
        crate::Connection::new(Arc::clone(self))
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn txn_manager(&self) -> &Arc<TransactionManager> {
        &self.txn_mgr
    }

    pub fn buffers(&self) -> Arc<BufferManager> {
        Arc::clone(&self.buffers)
    }

    pub fn policy(&self) -> &Arc<ResourcePolicy> {
        &self.policy
    }

    pub fn health(&self) -> &Arc<HealthMonitor> {
        &self.health
    }

    /// The shared worker fleet: the database-wide worker budget divided
    /// across concurrently admitted pipeline graphs.
    pub fn fleet(&self) -> Arc<WorkerFleet> {
        Arc::clone(&self.fleet)
    }

    /// Open a new session: a fresh quota sub-account registered for
    /// rebalancing. Called by [`crate::Connection::new`].
    pub(crate) fn register_session(&self) -> Arc<SessionState> {
        let session = Arc::new(SessionState {
            id: self.next_session_id.fetch_add(1, Ordering::Relaxed),
            buffers: self.buffers.sub_account(DEFAULT_SESSION_QUOTA),
            explicit_quota: AtomicBool::new(false),
        });
        let mut sessions = self.sessions.lock();
        sessions.retain(|w| w.strong_count() > 0);
        sessions.push(Arc::downgrade(&session));
        drop(sessions);
        self.rebalance_session_quotas();
        session
    }

    /// Prune a closing session from the registry and return its quota
    /// share to the survivors. Called from [`crate::Connection`]'s drop,
    /// where the session `Arc` is still alive — hence the explicit id
    /// rather than relying on the weak pointer being dead.
    pub(crate) fn session_closed(&self, id: u64) {
        self.sessions.lock().retain(|w| w.upgrade().is_some_and(|s| s.id != id));
        self.rebalance_session_quotas();
    }

    /// Number of currently open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().iter().filter(|w| w.strong_count() > 0).count()
    }

    /// Divide the effective global limit fairly across live sessions.
    ///
    /// Only active while the host probe is on — the same opt-in as the
    /// rest of the §4 feedback loop — so the default remains "every
    /// session may use the whole global limit, first come first served"
    /// (the account chain still prevents any *combined* overshoot).
    /// Quotas pinned with `PRAGMA session_memory_limit` are never moved.
    pub(crate) fn rebalance_session_quotas(&self) {
        if !self.config.lock().host_probe {
            return;
        }
        let live: Vec<Arc<SessionState>> =
            self.sessions.lock().iter().filter_map(Weak::upgrade).collect();
        let auto: Vec<&Arc<SessionState>> =
            live.iter().filter(|s| !s.explicit_quota.load(Ordering::Relaxed)).collect();
        if auto.is_empty() {
            return;
        }
        let share =
            eider_coop::controller::fair_session_share(self.buffers.memory_limit(), auto.len());
        for session in auto {
            session.buffers.set_memory_limit(share);
        }
    }

    pub fn config(&self) -> DatabaseConfig {
        self.config.lock().clone()
    }

    pub fn set_wal_autocheckpoint(&self, bytes: u64) {
        self.config.lock().wal_autocheckpoint = bytes;
    }

    /// Enable/disable the real host resource probe (`PRAGMA host_probe`).
    /// Returns whether the request took effect — enabling fails (and
    /// leaves the flag off) on platforms without `/proc`.
    pub fn set_host_probe(&self, enabled: bool) -> bool {
        if enabled && self.host_probe.is_none() {
            return false;
        }
        self.config.lock().host_probe = enabled;
        true
    }

    /// Refresh the cooperation policy's view of the host (§4's loop): when
    /// the real probe is enabled, push the measured "everyone but us" CPU
    /// load into [`ResourcePolicy::set_app_cpu_load`] **and** shrink the
    /// effective memory limit while the rest of the machine is under
    /// memory pressure
    /// ([`effective_memory_limit`](eider_coop::controller::effective_memory_limit)
    /// over the probe's `sample_host_memory`; the limit recovers — up to
    /// the configured `PRAGMA memory_limit` — as the host frees memory).
    /// With the probe off (the default), whatever a simulated-application
    /// driver ([`eider_coop::monitor::SimulatedApplication`]) last pushed
    /// stays authoritative.
    pub fn refresh_host_load(&self) {
        if !self.config.lock().host_probe {
            return;
        }
        if let Some(probe) = &self.host_probe {
            if let Some(cpu) = probe.sample_other_cpu() {
                self.policy.set_app_cpu_load(cpu);
            }
            if let Some(mem) = probe.sample_host_memory() {
                self.apply_host_memory(mem.total_bytes, mem.other_used_bytes);
            }
        }
    }

    /// Apply one host memory observation: the configured limit (the base
    /// the user set, remembered in the config) capped by what the machine
    /// has left, floored at 1/20 of the configured limit. Split out from
    /// [`Database::refresh_host_load`] so tests can inject observations
    /// without a live `/proc`.
    pub fn apply_host_memory(&self, host_total: usize, host_other_used: usize) {
        let configured = self.config.lock().memory_limit;
        let effective =
            eider_coop::controller::effective_memory_limit(configured, host_total, host_other_used);
        self.buffers.set_memory_limit(effective);
        self.policy.set_memory_limit(effective);
        // The shrunken (or recovered) global limit re-divides across
        // sessions — §4's feedback now splits across N clients instead of
        // each of them assuming the whole budget.
        self.rebalance_session_quotas();
    }

    /// Record a new user-configured memory limit (`PRAGMA memory_limit`):
    /// the base the host-probe feedback shrinks from.
    pub(crate) fn set_base_memory_limit(&self, bytes: usize) {
        self.config.lock().memory_limit = bytes;
    }

    pub fn is_persistent(&self) -> bool {
        self.storage.is_some()
    }

    /// Current WAL size in bytes (0 for in-memory databases).
    pub fn wal_size(&self) -> u64 {
        self.storage.as_ref().map_or(0, |s| s.wal.lock().size_bytes())
    }

    /// Size of the database file in blocks.
    pub fn block_count(&self) -> u64 {
        self.storage.as_ref().map_or(0, |s| s.block_mgr.block_count())
    }

    /// Append a logical record to the WAL (no-op for in-memory databases).
    pub(crate) fn wal_append(&self, record: &persist::WalRecord) -> Result<()> {
        if let Some(s) = &self.storage {
            s.wal.lock().append(&record.encode())?;
        }
        Ok(())
    }

    /// Run `f` while holding the append lock, so captured physical row
    /// positions match the actual append order.
    pub(crate) fn with_append_lock<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let _guard = self.append_lock.lock();
        f()
    }

    /// Commit a transaction: finalize in memory, then make it durable.
    ///
    /// The WAL commit marker is written *after* in-memory finalization but
    /// before `commit` returns: a crash in between loses only a transaction
    /// whose success was never reported, so no durability promise breaks.
    pub fn commit_transaction(&self, txn: Transaction) -> Result<u64> {
        let _guard = self.commit_lock.lock();
        let txn_id = txn.id();
        let had_writes = txn.is_read_write();
        let commit_ts = txn.commit()?;
        if had_writes {
            if let Some(s) = &self.storage {
                let mut wal = s.wal.lock();
                wal.append(&persist::WalRecord::Commit { txn_id }.encode())?;
                wal.sync()?;
            }
        }
        drop(_guard);
        // Opportunistic version GC + auto-checkpoint.
        self.txn_mgr.garbage_collect();
        if had_writes {
            let threshold = self.config.lock().wal_autocheckpoint;
            if threshold > 0 && self.wal_size() > threshold {
                self.checkpoint()?;
            }
        }
        Ok(commit_ts)
    }

    /// Write a checkpoint: serialize the committed image into fresh blocks,
    /// atomically switch the header root, free the old chain, truncate the
    /// WAL (§6's checkpoint protocol).
    pub fn checkpoint(&self) -> Result<()> {
        let Some(s) = &self.storage else {
            return Ok(()); // nothing to do in memory
        };
        if !self.health.operational() {
            return Err(EiderError::HardwareFault(
                "refusing to checkpoint: hardware declared failed (§3: cease operation \
                 rather than risk persisting corrupted data)"
                    .into(),
            ));
        }
        let _guard = self.commit_lock.lock();
        let txn = self.txn_mgr.begin();
        let (root, new_blocks) = persist::write_checkpoint(&self.catalog, &txn, &s.block_mgr)?;
        let mut header = s.block_mgr.current_header();
        header.meta_root = root;
        header.free_root = INVALID_BLOCK;
        s.block_mgr.write_header(header)?;
        // The previous image's blocks are now reusable.
        let mut chain = s.current_chain.lock();
        for &b in chain.iter() {
            s.block_mgr.free_block(b);
        }
        *chain = new_blocks;
        s.wal.lock().reset()?;
        txn.commit()?;
        Ok(())
    }

    /// Path of the database file (persistent databases only).
    pub fn path(&self) -> Option<&Path> {
        self.storage.as_ref().map(|s| s.path.as_path())
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        // Best-effort checkpoint on close, like DuckDB: consume the WAL so
        // the next open starts from a clean image.
        if self.storage.is_some() && self.health.operational() {
            let _ = self.checkpoint();
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("persistent", &self.is_persistent())
            .field("tables", &self.catalog.table_names())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_memory_observations_shrink_and_restore_the_effective_limit() {
        let db = Database::in_memory().unwrap();
        let configured = db.config().memory_limit;
        // Squeezed host: the effective limit shrinks to what is left.
        db.apply_host_memory(configured * 16, configured * 16 - configured / 2);
        assert_eq!(db.buffers().memory_limit(), configured / 2);
        assert_eq!(db.policy().memory_limit(), configured / 2);
        // Fully committed host: the 1/20 floor holds.
        db.apply_host_memory(configured * 16, configured * 16);
        assert_eq!(db.buffers().memory_limit(), configured / 20);
        // Pressure gone: the configured base recovers.
        db.apply_host_memory(configured * 16, 0);
        assert_eq!(db.buffers().memory_limit(), configured);
        // A new PRAGMA-set base feeds later observations.
        db.set_base_memory_limit(configured / 4);
        db.apply_host_memory(configured * 16, 0);
        assert_eq!(db.buffers().memory_limit(), configured / 4);
    }
}
