//! The physical planner: lowers bound logical plans onto executable
//! operators, consulting the cooperation policy for strategy choices (§4).

use crate::database::Database;
use eider_exec::ops::{
    CrossProductOp, DeleteOp, DistinctOp, ExternalSortOp, FilterOp, HashAggregateOp, HashJoinOp,
    InsertOp, LimitOp, MergeJoinOp, NestedLoopJoinOp, OperatorBox, PhysicalOperator, ProjectionOp,
    SimpleAggregateOp, TableScanOp, TopNOp, UpdateOp, ValuesOp,
};
use eider_coop::policy::{choose_join_strategy, JoinStrategy};
use eider_exec::ops::join::JoinType;
use eider_sql::plan::LogicalPlan;
use eider_txn::{ScanOptions, Transaction};
use eider_vector::{DataChunk, EiderError, LogicalType, Result};
use std::sync::Arc;

/// Chain two operators: pull left until exhausted, then right (UNION ALL).
struct UnionAllOp {
    left: OperatorBox,
    right: OperatorBox,
    on_right: bool,
}

impl PhysicalOperator for UnionAllOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.left.output_types()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if !self.on_right {
            if let Some(chunk) = self.left.next_chunk()? {
                return Ok(Some(chunk));
            }
            self.on_right = true;
        }
        self.right.next_chunk()
    }
}

/// Rough cardinality estimate for join-strategy selection (§4). No real
/// statistics: base tables report physical rows, filters assume 1/3
/// selectivity, everything else passes through.
fn estimate_rows(plan: &LogicalPlan) -> u64 {
    match plan {
        LogicalPlan::TableScan { entry, filters, .. } => {
            let base = entry.data.physical_rows() as u64;
            if filters.is_empty() {
                base
            } else {
                (base / 3).max(1)
            }
        }
        LogicalPlan::Filter { input, .. } => (estimate_rows(input) / 3).max(1),
        LogicalPlan::Limit { input, limit, .. } => estimate_rows(input).min(*limit as u64),
        LogicalPlan::Join { left, right, .. } => {
            estimate_rows(left).max(estimate_rows(right))
        }
        LogicalPlan::CrossJoin { left, right } => {
            estimate_rows(left).saturating_mul(estimate_rows(right))
        }
        LogicalPlan::Union { left, right } => {
            estimate_rows(left).saturating_add(estimate_rows(right))
        }
        LogicalPlan::Values { rows, .. } => rows.len() as u64,
        LogicalPlan::SingleRow => 1,
        other => other.children().first().map_or(1, |c| estimate_rows(c)),
    }
}

/// Lower a logical query plan (SELECT-shaped nodes plus INSERT/UPDATE/
/// DELETE) to a physical operator tree.
pub fn lower(db: &Database, txn: &Arc<Transaction>, plan: &LogicalPlan) -> Result<OperatorBox> {
    Ok(match plan {
        LogicalPlan::TableScan { entry, column_ids, filters, emit_row_ids, .. } => {
            let opts = ScanOptions {
                columns: column_ids.clone(),
                filters: filters.clone(),
                emit_row_ids: *emit_row_ids,
            };
            Box::new(TableScanOp::new(Arc::clone(&entry.data), Arc::clone(txn), opts))
        }
        LogicalPlan::Filter { input, predicate } => {
            Box::new(FilterOp::new(lower(db, txn, input)?, predicate.clone()))
        }
        LogicalPlan::Projection { input, exprs, .. } => {
            Box::new(ProjectionOp::new(lower(db, txn, input)?, exprs.clone()))
        }
        LogicalPlan::Aggregate { input, groups, aggs, .. } => {
            let child = lower(db, txn, input)?;
            if groups.is_empty() {
                Box::new(SimpleAggregateOp::new(child, aggs.clone()))
            } else {
                Box::new(HashAggregateOp::new(
                    child,
                    groups.clone(),
                    aggs.clone(),
                    Some(db.buffers()),
                ))
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let child = lower(db, txn, input)?;
            let budget = db.policy().memory_limit() / 4;
            Box::new(ExternalSortOp::new(child, keys.clone(), budget, Some(db.buffers()), false))
        }
        LogicalPlan::Limit { input, limit, offset } => {
            // ORDER BY + LIMIT fuses into Top-N.
            if let LogicalPlan::Sort { input: sort_input, keys } = &**input {
                if *limit != usize::MAX && limit.saturating_add(*offset) <= 1_000_000 {
                    let child = lower(db, txn, sort_input)?;
                    return Ok(Box::new(TopNOp::new(child, keys.clone(), *limit, *offset)));
                }
            }
            Box::new(LimitOp::new(lower(db, txn, input)?, *limit, *offset))
        }
        LogicalPlan::Distinct { input } => Box::new(DistinctOp::new(lower(db, txn, input)?)),
        LogicalPlan::Join { left, right, join_type, left_keys, right_keys } => {
            let lchild = lower(db, txn, left)?;
            let rchild = lower(db, txn, right)?;
            // §4: the build side's estimated footprint against currently
            // available memory decides hash vs out-of-core merge join.
            let build_rows = estimate_rows(right);
            let build_bytes = build_rows.saturating_mul(
                (right.output_types().len() as u64).saturating_mul(16),
            ) as usize;
            let strategy = if *join_type == JoinType::Inner {
                choose_join_strategy(build_bytes, db.buffers().available_memory())
            } else {
                JoinStrategy::Hash // left/semi/anti are hash-only
            };
            match strategy {
                JoinStrategy::Hash => Box::new(HashJoinOp::new(
                    lchild,
                    rchild,
                    left_keys.clone(),
                    right_keys.clone(),
                    *join_type,
                    db.policy().compression(),
                    Some(db.buffers()),
                )?),
                JoinStrategy::OutOfCoreMerge => Box::new(MergeJoinOp::new(
                    lchild,
                    rchild,
                    left_keys.clone(),
                    right_keys.clone(),
                    db.policy().memory_limit() / 8,
                    Some(db.buffers()),
                )),
            }
        }
        LogicalPlan::NestedLoopJoin { left, right, predicate } => Box::new(NestedLoopJoinOp::new(
            lower(db, txn, left)?,
            lower(db, txn, right)?,
            predicate.clone(),
            JoinType::Inner,
        )?),
        LogicalPlan::CrossJoin { left, right } => {
            Box::new(CrossProductOp::new(lower(db, txn, left)?, lower(db, txn, right)?))
        }
        LogicalPlan::Union { left, right } => Box::new(UnionAllOp {
            left: lower(db, txn, left)?,
            right: lower(db, txn, right)?,
            on_right: false,
        }),
        LogicalPlan::Values { rows, types, .. } => {
            let mut chunk = DataChunk::new(types);
            for row in rows {
                let vals: Vec<eider_vector::Value> = row
                    .iter()
                    .zip(types)
                    .map(|(e, &ty)| e.evaluate_row(&[])?.cast_to(ty))
                    .collect::<Result<_>>()?;
                chunk.append_row(&vals)?;
            }
            Box::new(ValuesOp::new(types.clone(), vec![chunk]))
        }
        LogicalPlan::SingleRow => Box::new(ValuesOp::single_row()),
        LogicalPlan::Insert { entry, input } => Box::new(InsertOp::new(
            Arc::clone(entry),
            lower(db, txn, input)?,
            Arc::clone(txn),
        )),
        LogicalPlan::Update { entry, input, columns } => Box::new(UpdateOp::new(
            Arc::clone(entry),
            lower(db, txn, input)?,
            Arc::clone(txn),
            columns.clone(),
        )),
        LogicalPlan::Delete { entry, input } => Box::new(DeleteOp::new(
            Arc::clone(entry),
            lower(db, txn, input)?,
            Arc::clone(txn),
        )),
        other => {
            return Err(EiderError::Internal(format!(
                "plan node is not executable by the physical planner: {other:?}"
            )))
        }
    })
}
