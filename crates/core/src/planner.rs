//! The physical planner: lowers bound logical plans onto executable
//! operators, consulting the cooperation policy for strategy choices (§4).
//!
//! Two lowering paths exist:
//!
//! * [`lower`] — the serial Vector Volcano pull pipeline, able to execute
//!   every plan;
//! * [`lower_parallel`] — decomposes the plan into a **pipeline DAG**
//!   ([`eider_exec::parallel::graph`]) when it can prove the shape
//!   parallel-safe, returning `None` otherwise so the caller falls back to
//!   [`lower`]. A DAG node is either a morsel-parallel pipeline
//!   (`scan → filter*/project*/probe* → sink`) or a serially-evaluated
//!   breaker input (a join build or probe side too small or irregular to
//!   split); breaker state — the shared immutable
//!   [`BuildSide`](eider_exec::ops::BuildSide), spilled sort runs, bounded
//!   [`ChunkQueue`] chunk streams — flows between nodes under the graph's
//!   readiness scheduler (independent nodes run concurrently). Recognized
//!   shapes: plain chains, aggregates (grouped and simple), ORDER BY with
//!   disk-spilling runs, ORDER BY + LIMIT as a bounded Top-N, DISTINCT as
//!   a grouped aggregate, hash joins with morsel-parallel probe (and
//!   build, when the build side is itself a chain), UNION ALL of parallel
//!   arms, agg/sort/Top-N/DISTINCT *above* a UNION ALL as chunk-queue
//!   producers + a concurrently-consuming sink pipeline, and serial
//!   projection/filter/aggregate/sort/distinct wrappers over any of the
//!   above. Worker count is the cooperation policy's
//!   [`worker_threads`](eider_coop::policy::ResourcePolicy::worker_threads)
//!   — `PRAGMA threads` clamped by host CPU load.

use crate::database::Database;
use eider_coop::policy::{choose_join_strategy, JoinStrategy};
use eider_etl::{SourcePartition, TableSource};
use eider_exec::ops::join::JoinType;
use eider_exec::ops::{
    CrossProductOp, DeleteOp, DistinctOp, ExternalSortOp, FilterOp, HashAggregateOp, HashJoinOp,
    InsertOp, LimitOp, MergeJoinOp, NestedLoopJoinOp, OperatorBox, PhysicalOperator, ProjectionOp,
    SimpleAggregateOp, SourceScanOp, TableScanOp, TopNOp, UpdateOp, ValuesOp,
};
use eider_exec::parallel::graph::{
    fold_link_types, GraphLink, GraphNode, PipelineGraph, PipelineGraphOp,
};
use eider_exec::parallel::morsel::{slice_morsels, Morsel, MORSEL_ROWS};
use eider_exec::parallel::{ChunkQueue, MorselSource, PipelineSink, PipelineSource, PipelineStep};
use eider_exec::Expr;
use eider_sql::plan::LogicalPlan;
use eider_storage::buffer::BufferManager;
use eider_txn::{DataTable, ScanOptions, Transaction};
use eider_vector::{DataChunk, EiderError, LogicalType, Result, VECTOR_SIZE};
use std::sync::Arc;

/// Per-session planning context: the shared database plus the issuing
/// session's buffer-manager account (a quota sub-account carved out of
/// the database's root account — see
/// [`BufferManager::sub_account`]). Every budget-sized decision — sort
/// run budgets, streaming-queue bounds, hash-vs-merge join strategy,
/// operator accounting — goes through the session account, whose
/// *effective* limit is its quota capped by the global limit, so one
/// session's plans are sized inside its own slice of memory and its
/// reservations can never starve a sibling's quota.
pub struct PlanCtx<'a> {
    db: &'a Database,
    buffers: Arc<BufferManager>,
}

impl<'a> PlanCtx<'a> {
    pub fn new(db: &'a Database, buffers: Arc<BufferManager>) -> Self {
        PlanCtx { db, buffers }
    }

    /// A context accounting directly against the database's root account
    /// (single-session embedding paths and tests).
    pub fn root(db: &'a Database) -> Self {
        let buffers = db.buffers();
        PlanCtx { db, buffers }
    }

    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// The session's buffer account; charges propagate to the root.
    pub fn buffers(&self) -> Arc<BufferManager> {
        Arc::clone(&self.buffers)
    }

    /// The session-scoped memory budget: the quota capped by the global
    /// limit (and by the §4 host-feedback controller when enabled).
    fn budget(&self) -> usize {
        self.buffers.memory_limit()
    }
}

/// Chain two operators: pull left until exhausted, then right (UNION ALL).
struct UnionAllOp {
    left: OperatorBox,
    right: OperatorBox,
    on_right: bool,
}

impl PhysicalOperator for UnionAllOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.left.output_types()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if !self.on_right {
            if let Some(chunk) = self.left.next_chunk()? {
                return Ok(Some(chunk));
            }
            self.on_right = true;
        }
        self.right.next_chunk()
    }
}

/// Cardinality estimate for physical decisions (build-side sizing,
/// serial-vs-parallel routing, worker-share weights). Delegates to the
/// optimizer's statistics-backed model — zone-map min/max, encoding-derived
/// distinct counts, filter selectivities — the same numbers join
/// reordering used, so logical and physical planning agree on sizes.
fn estimate_rows(plan: &LogicalPlan) -> u64 {
    eider_sql::optimizer::cardinality::estimate(plan)
}

/// Estimated bytes of a materialized build side: estimated rows times the
/// schema's physical row width (variable-width columns count a pointer's
/// worth plus a modest payload guess) plus per-row hash-table overhead.
fn estimate_build_bytes(plan: &LogicalPlan) -> usize {
    let width: u64 = plan
        .output_types()
        .iter()
        .map(|t| match t {
            LogicalType::Varchar => 24, // pointer + short-string payload
            t => t.physical_width() as u64,
        })
        .sum();
    // ~16 bytes/row of hash-table entry + bucket overhead on top of data.
    estimate_rows(plan).saturating_mul(width.saturating_add(16)) as usize
}

/// Lower a logical query plan (SELECT-shaped nodes plus INSERT/UPDATE/
/// DELETE) to a physical operator tree.
pub fn lower(ctx: &PlanCtx<'_>, txn: &Arc<Transaction>, plan: &LogicalPlan) -> Result<OperatorBox> {
    Ok(match plan {
        LogicalPlan::TableScan { entry, column_ids, filters, emit_row_ids, .. } => {
            let opts = ScanOptions {
                columns: column_ids.clone(),
                filters: filters.clone(),
                emit_row_ids: *emit_row_ids,
            };
            Box::new(TableScanOp::new(Arc::clone(&entry.data), Arc::clone(txn), opts))
        }
        LogicalPlan::ExternalScan { source, column_ids, filters, .. } => {
            Box::new(SourceScanOp::new(Arc::clone(source), column_ids.clone(), filters.clone()))
        }
        LogicalPlan::Filter { input, predicate } => {
            Box::new(FilterOp::new(lower(ctx, txn, input)?, predicate.clone()))
        }
        LogicalPlan::Projection { input, exprs, .. } => {
            Box::new(ProjectionOp::new(lower(ctx, txn, input)?, exprs.clone()))
        }
        LogicalPlan::Aggregate { input, groups, aggs, .. } => {
            let child = lower(ctx, txn, input)?;
            if groups.is_empty() {
                Box::new(SimpleAggregateOp::new(child, aggs.clone()))
            } else {
                Box::new(HashAggregateOp::new(
                    child,
                    groups.clone(),
                    aggs.clone(),
                    Some(ctx.buffers()),
                ))
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let child = lower(ctx, txn, input)?;
            let budget = ctx.budget() / 4;
            Box::new(ExternalSortOp::new(child, keys.clone(), budget, Some(ctx.buffers()), false))
        }
        LogicalPlan::Limit { input, limit, offset } => {
            // ORDER BY + LIMIT fuses into Top-N — when the bounded buffer
            // fits. The serial Top-N keeps `limit + offset` rows resident
            // and charges them to the session account (it has no spill
            // path), so an estimate too big for a quarter of the budget
            // takes the spilling external-sort + LIMIT route instead of
            // failing under memory pressure.
            if let LogicalPlan::Sort { input: sort_input, keys } = &**input {
                if *limit != usize::MAX && limit.saturating_add(*offset) <= 1_000_000 {
                    let rows = limit.saturating_add(*offset) as u64;
                    let width = ((keys.len() + sort_input.output_types().len()).max(1) as u64)
                        .saturating_mul(16);
                    let estimated = rows.saturating_mul(width) as usize;
                    if estimated <= ctx.budget() / 4 {
                        let child = lower(ctx, txn, sort_input)?;
                        return Ok(Box::new(
                            TopNOp::new(child, keys.clone(), *limit, *offset)
                                .with_buffers(Some(ctx.buffers())),
                        ));
                    }
                }
            }
            Box::new(LimitOp::new(lower(ctx, txn, input)?, *limit, *offset))
        }
        LogicalPlan::Distinct { input } => Box::new(DistinctOp::new(lower(ctx, txn, input)?)),
        LogicalPlan::Join { left, right, join_type, left_keys, right_keys } => {
            let lchild = lower(ctx, txn, left)?;
            // §4: the build side's estimated footprint against currently
            // available memory decides hash vs out-of-core merge join.
            let strategy = if *join_type == JoinType::Inner {
                choose_join_strategy(estimate_build_bytes(right), ctx.buffers.available_memory())
            } else {
                JoinStrategy::Hash // left/semi/anti are hash-only
            };
            match strategy {
                // Even on the serial path, a chain-shaped build side over a
                // large table builds morsel-parallel (the probe then
                // streams with early-stop semantics intact — LIMIT over a
                // join pulls only what it needs).
                JoinStrategy::Hash => match parallel_build_side(ctx, txn, right, right_keys)? {
                    Some(build) => Box::new(eider_exec::ops::JoinProbeOp::new(
                        lchild,
                        build,
                        left_keys.clone(),
                        *join_type,
                        right.output_types(),
                    )),
                    None => Box::new(HashJoinOp::new(
                        lchild,
                        lower(ctx, txn, right)?,
                        left_keys.clone(),
                        right_keys.clone(),
                        *join_type,
                        ctx.db.policy().compression(),
                        Some(ctx.buffers()),
                    )?),
                },
                JoinStrategy::OutOfCoreMerge => Box::new(MergeJoinOp::new(
                    lchild,
                    lower(ctx, txn, right)?,
                    left_keys.clone(),
                    right_keys.clone(),
                    ctx.budget() / 8,
                    Some(ctx.buffers()),
                )),
            }
        }
        LogicalPlan::NestedLoopJoin { left, right, predicate } => Box::new(NestedLoopJoinOp::new(
            lower(ctx, txn, left)?,
            lower(ctx, txn, right)?,
            predicate.clone(),
            JoinType::Inner,
        )?),
        LogicalPlan::CrossJoin { left, right } => {
            Box::new(CrossProductOp::new(lower(ctx, txn, left)?, lower(ctx, txn, right)?))
        }
        LogicalPlan::Union { left, right } => Box::new(UnionAllOp {
            left: lower(ctx, txn, left)?,
            right: lower(ctx, txn, right)?,
            on_right: false,
        }),
        LogicalPlan::Values { rows, types, .. } => {
            let mut chunk = DataChunk::new(types);
            for row in rows {
                let vals: Vec<eider_vector::Value> = row
                    .iter()
                    .zip(types)
                    .map(|(e, &ty)| e.evaluate_row(&[])?.cast_to(ty))
                    .collect::<Result<_>>()?;
                chunk.append_row(&vals)?;
            }
            Box::new(ValuesOp::new(types.clone(), vec![chunk]))
        }
        LogicalPlan::SingleRow => Box::new(ValuesOp::single_row()),
        LogicalPlan::Insert { entry, input } => {
            Box::new(InsertOp::new(Arc::clone(entry), lower(ctx, txn, input)?, Arc::clone(txn)))
        }
        LogicalPlan::Update { entry, input, columns } => Box::new(UpdateOp::new(
            Arc::clone(entry),
            lower(ctx, txn, input)?,
            Arc::clone(txn),
            columns.clone(),
        )),
        LogicalPlan::Delete { entry, input } => {
            Box::new(DeleteOp::new(Arc::clone(entry), lower(ctx, txn, input)?, Arc::clone(txn)))
        }
        other => {
            return Err(EiderError::Internal(format!(
                "plan node is not executable by the physical planner: {other:?}"
            )))
        }
    })
}

/// A table must span at least this many rows before fan-out pays for the
/// thread dispatch (two minimum-size morsels).
const PARALLEL_MIN_ROWS: usize = 2 * VECTOR_SIZE;

/// Slice a table into morsels, or `None` when it is too small for
/// parallel workers to earn their dispatch cost. Morsel size depends only
/// on the data (aiming for ~16 morsels on moderate tables, capped at
/// [`MORSEL_ROWS`] on large ones), *never* on the thread count: per-morsel
/// partial states merge in morsel order, so a fixed decomposition makes
/// results bit-identical across worker counts even for floating-point
/// aggregates. Pure — sources are constructed only after the whole DAG
/// shape is validated, so a rejected plan leaves no trace on the
/// transaction.
///
/// Zone-map-prunable row groups are dropped up front (the same
/// [`DataTable::group_prunable`] test scan cursors apply per group): a
/// selective filter over a huge table routes by the rows it will actually
/// touch, and workers are never dispatched onto morsels their scan would
/// immediately skip. Pruning is deterministic — it depends only on data
/// and filters — so the decomposition stays thread-count-independent.
fn plan_morsels(table: &DataTable, filters: &[eider_txn::TableFilter]) -> Option<Vec<Morsel>> {
    let sizes = table.group_sizes();
    let prunable: Vec<bool> = (0..sizes.len()).map(|g| table.group_prunable(g, filters)).collect();
    let total: usize = sizes.iter().zip(&prunable).filter(|(_, &p)| !p).map(|(&s, _)| s).sum();
    if total < PARALLEL_MIN_ROWS {
        return None;
    }
    let morsel_rows = (total / 16).clamp(VECTOR_SIZE, MORSEL_ROWS);
    let mut morsels = slice_morsels(&sizes, morsel_rows);
    morsels.retain(|m| !prunable[m.group]);
    if morsels.len() < 2 {
        return None;
    }
    Some(morsels)
}

/// What a chain scans: the engine's own versioned tables, or an external
/// [`TableSource`] whose partitions stand in for row-group morsels.
enum ChainBase {
    Table {
        table: Arc<DataTable>,
        opts: ScanOptions,
    },
    External {
        source: Arc<dyn TableSource>,
        /// Full-schema column positions, in emission order.
        projection: Vec<usize>,
        /// Pruning-only filters (full-schema positions).
        filters: Vec<eider_txn::TableFilter>,
    },
}

/// The streaming part of a pipeline-shaped plan: one base scan plus
/// filter/projection/probe links, all safe to replicate per worker.
/// Links are [`GraphLink`]s directly — probe links refer to planned nodes
/// by index, resolved when the graph executes.
struct ChainSpec {
    base: ChainBase,
    links: Vec<GraphLink>,
}

/// External partition target: mirror the table path's ~16-morsel aim.
/// A fixed constant — never the thread count — so the decomposition (and
/// with it the merge order) is identical at any parallelism.
const EXTERNAL_PARTITION_TARGET: usize = 16;

impl ChainSpec {
    fn base_types(&self) -> Vec<LogicalType> {
        match &self.base {
            ChainBase::Table { table, opts } => opts.output_types(table),
            ChainBase::External { source, projection, .. } => {
                let types = source.column_types();
                projection.iter().map(|&i| types[i]).collect()
            }
        }
    }

    fn output_types(&self) -> Vec<LogicalType> {
        fold_link_types(self.base_types(), &self.links)
    }

    /// Slice the base into morsels, or `None` when it is too small to
    /// earn the dispatch cost (see [`plan_morsels`]). External sources
    /// partition to a fixed target with metadata-pruned partitions
    /// dropped up front; a partitioning error also yields `None` — the
    /// serial path will open the same source and surface it.
    fn plan_chain_morsels(&self) -> Option<Vec<Morsel>> {
        match &self.base {
            ChainBase::Table { table, opts } => plan_morsels(table, &opts.filters),
            ChainBase::External { source, filters, .. } => {
                let mut parts = source.partitions(EXTERNAL_PARTITION_TARGET).ok()?;
                parts.retain(|p| !source.prunable(p, filters));
                if parts.len() < 2 {
                    return None;
                }
                Some(
                    parts
                        .into_iter()
                        .map(|p| Morsel {
                            seq: p.seq,
                            group: p.seq,
                            row_begin: p.begin as usize,
                            row_end: p.end as usize,
                        })
                        .collect(),
                )
            }
        }
    }

    /// Construct the dispenser (recording table read predicates on `txn`).
    fn morsel_source(&self, txn: &Transaction, morsels: Vec<Morsel>) -> MorselSource {
        match &self.base {
            ChainBase::Table { table, opts } => {
                MorselSource::from_morsels(Arc::clone(table), txn, opts.clone(), morsels)
            }
            ChainBase::External { source, projection, .. } => {
                let parts = morsels
                    .into_iter()
                    .map(|m| SourcePartition {
                        seq: m.seq,
                        begin: m.row_begin as u64,
                        end: m.row_end as u64,
                    })
                    .collect();
                MorselSource::external(Arc::clone(source), projection.clone(), parts)
            }
        }
    }
}

/// A planned DAG node; materialized into a [`GraphNode`] only once the
/// whole shape is validated (serial inputs lower at that point).
enum NodeSpec<'p> {
    Pipeline {
        chain: ChainSpec,
        morsels: Vec<Morsel>,
        sink: PipelineSink,
    },
    SerialBuild {
        plan: &'p LogicalPlan,
        keys: Vec<Expr>,
    },
    SerialProbe {
        plan: &'p LogicalPlan,
        links: Vec<GraphLink>,
    },
    /// One UNION ALL arm streaming its chunks into chunk queue `queue` as
    /// arm `arm` (queues are planner-indexed and constructed at
    /// materialization).
    QueueProducer {
        chain: ChainSpec,
        morsels: Vec<Morsel>,
        queue: usize,
        arm: usize,
    },
    /// The sink above the union, consuming queue `queue` morsel-parallel
    /// and concurrently with its producers.
    QueueConsumer {
        queue: usize,
        sink: PipelineSink,
    },
}

/// A planned chunk-queue edge: the chunk types flowing through it and how
/// many producer arms feed it.
struct QueueSpec {
    types: Vec<LogicalType>,
    producers: usize,
}

/// Phase-1 planner state: recognizes parallel shapes and accumulates node
/// specs without side effects, so any failure can simply discard it and
/// fall back to the serial path.
struct SpecBuilder<'a, 'p> {
    ctx: &'a PlanCtx<'a>,
    nodes: Vec<NodeSpec<'p>>,
    queues: Vec<QueueSpec>,
}

/// Flatten a UNION ALL tree into its non-union arms (left-to-right, the
/// serial concatenation order); `None` if `plan` is not a union.
fn union_arms(plan: &LogicalPlan) -> Option<Vec<&LogicalPlan>> {
    fn collect<'p>(plan: &'p LogicalPlan, out: &mut Vec<&'p LogicalPlan>) {
        match plan {
            LogicalPlan::Union { left, right } => {
                collect(left, out);
                collect(right, out);
            }
            other => out.push(other),
        }
    }
    if !matches!(plan, LogicalPlan::Union { .. }) {
        return None;
    }
    let mut arms = Vec::new();
    collect(plan, &mut arms);
    Some(arms)
}

impl<'a, 'p> SpecBuilder<'a, 'p> {
    fn new(ctx: &'a PlanCtx<'a>) -> Self {
        SpecBuilder { ctx, nodes: Vec::new(), queues: Vec::new() }
    }

    fn push(&mut self, node: NodeSpec<'p>) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Hash joins parallelize; a join the cooperation policy would demote
    /// to an out-of-core merge join stays serial.
    fn join_parallel_safe(&self, build_plan: &LogicalPlan, join_type: JoinType) -> bool {
        join_type != JoinType::Inner
            || choose_join_strategy(
                estimate_build_bytes(build_plan),
                self.ctx.buffers.available_memory(),
            ) == JoinStrategy::Hash
    }

    /// Decompose `scan → (filter | project | hash-join probe)*` plans;
    /// `None` for anything else (unions, nested aggregates,
    /// row-id-emitting scans for UPDATE/DELETE — those stay serial or are
    /// handled by the caller). Join build sides become DAG nodes: a
    /// morsel-parallel build pipeline when the build side is itself a
    /// chain over a large-enough table, a serially-evaluated build
    /// otherwise (small dimension tables).
    fn chain_of(&mut self, plan: &'p LogicalPlan) -> Option<ChainSpec> {
        match plan {
            LogicalPlan::TableScan { entry, column_ids, filters, emit_row_ids, .. }
                if !emit_row_ids =>
            {
                Some(ChainSpec {
                    base: ChainBase::Table {
                        table: Arc::clone(&entry.data),
                        opts: ScanOptions {
                            columns: column_ids.clone(),
                            filters: filters.clone(),
                            emit_row_ids: false,
                        },
                    },
                    links: Vec::new(),
                })
            }
            LogicalPlan::ExternalScan { source, column_ids, filters, .. } => Some(ChainSpec {
                base: ChainBase::External {
                    source: Arc::clone(source),
                    projection: column_ids.clone(),
                    filters: filters.clone(),
                },
                links: Vec::new(),
            }),
            LogicalPlan::Filter { input, predicate } => {
                let mut chain = self.chain_of(input)?;
                chain.links.push(GraphLink::Step(PipelineStep::Filter(predicate.clone())));
                Some(chain)
            }
            LogicalPlan::Projection { input, exprs, .. } => {
                let mut chain = self.chain_of(input)?;
                chain.links.push(GraphLink::Step(PipelineStep::Project(exprs.clone())));
                Some(chain)
            }
            LogicalPlan::Join { left, right, join_type, left_keys, right_keys } => {
                if !self.join_parallel_safe(right, *join_type) {
                    return None;
                }
                let mut chain = self.chain_of(left)?;
                let build = self.build_node(right, right_keys);
                chain.links.push(GraphLink::Probe {
                    build,
                    left_keys: left_keys.clone(),
                    join_type: *join_type,
                    right_types: right.output_types(),
                });
                Some(chain)
            }
            _ => None,
        }
    }

    /// Plan a join build side as a DAG node (always succeeds — any plan
    /// can at worst build serially).
    fn build_node(&mut self, plan: &'p LogicalPlan, keys: &[Expr]) -> usize {
        let mark = self.nodes.len();
        if let Some(chain) = self.chain_of(plan) {
            if let Some(morsels) = chain.plan_chain_morsels() {
                return self.push(NodeSpec::Pipeline {
                    chain,
                    morsels,
                    sink: PipelineSink::JoinBuild { keys: keys.to_vec() },
                });
            }
        }
        self.nodes.truncate(mark); // discard nodes of a rejected sub-chain
        self.push(NodeSpec::SerialBuild { plan, keys: keys.to_vec() })
    }

    /// A chain plus its morsel slicing, discarding any nodes planned
    /// underneath it when the base table is too small to split.
    fn chain_with_morsels(&mut self, plan: &'p LogicalPlan) -> Option<(ChainSpec, Vec<Morsel>)> {
        let mark = self.nodes.len();
        if let Some(chain) = self.chain_of(plan) {
            if let Some(morsels) = chain.plan_chain_morsels() {
                return Some((chain, morsels));
            }
        }
        self.nodes.truncate(mark);
        None
    }

    /// Recognize `chain → sink` shapes: plain chains (collect), aggregates,
    /// ORDER BY (with run spilling), ORDER BY + LIMIT (Top-N) and DISTINCT
    /// (a grouped aggregate with no aggregate functions).
    fn sink_pipeline(&mut self, plan: &'p LogicalPlan) -> Option<usize> {
        if let Some((chain, morsels)) = self.chain_with_morsels(plan) {
            return Some(self.push(NodeSpec::Pipeline {
                chain,
                morsels,
                sink: PipelineSink::Collect,
            }));
        }
        let (input, sink): (&LogicalPlan, _) = match plan {
            LogicalPlan::Aggregate { input, groups, aggs, .. } => {
                let sink = if groups.is_empty() {
                    PipelineSink::SimpleAggregate(aggs.clone())
                } else {
                    PipelineSink::HashAggregate { groups: groups.clone(), aggs: aggs.clone() }
                };
                (input, sink)
            }
            LogicalPlan::Sort { input, keys } => {
                (input, PipelineSink::Sort { keys: keys.clone(), limit: None })
            }
            LogicalPlan::Limit { input, limit, offset } => {
                let LogicalPlan::Sort { input: sort_input, keys } = &**input else { return None };
                if *limit == usize::MAX {
                    return None;
                }
                // No row-count cap: per-worker Top-N buffers charge their
                // real footprint against the buffer manager and spill
                // under pressure, so arbitrarily large `limit + offset`
                // stays fused on the parallel path.
                (
                    sort_input,
                    PipelineSink::Sort { keys: keys.clone(), limit: Some((*limit, *offset)) },
                )
            }
            LogicalPlan::Distinct { input } => {
                // DISTINCT = GROUP BY every column, no aggregates. Groups
                // are column references over the input's output columns
                // (identical to the chain/queue chunk layout).
                let groups: Vec<Expr> = input
                    .output_types()
                    .iter()
                    .enumerate()
                    .map(|(i, &ty)| Expr::column(i, ty))
                    .collect();
                (input, PipelineSink::HashAggregate { groups, aggs: Vec::new() })
            }
            _ => return None,
        };
        // A sink directly above a UNION ALL consumes the arms through a
        // chunk queue, morsel-parallel and concurrent with them.
        if let Some(node) = self.queue_consumer(input, &sink) {
            return Some(node);
        }
        let (chain, morsels) = self.chain_with_morsels(input)?;
        Some(self.push(NodeSpec::Pipeline { chain, morsels, sink }))
    }

    /// Plan `sink` as a chunk-queue consumer over the arms of a UNION ALL:
    /// each arm becomes a [`NodeSpec::QueueProducer`] pipeline streaming
    /// into a shared bounded queue, and the sink pops batches from it
    /// concurrently — no serial concatenation wrapper, no full
    /// materialization of the union. Projections/filters *between* the
    /// sink and the union commute with UNION ALL and are pushed into every
    /// arm, where they run morsel-parallel. `None` (state rolled back)
    /// unless `input` reduces to a union whose every arm is a splittable
    /// chain.
    fn queue_consumer(&mut self, input: &'p LogicalPlan, sink: &PipelineSink) -> Option<usize> {
        // Peel the streaming layers above the union, innermost-first in
        // `shared` (the order they execute over each arm's chunks).
        let mut shared: Vec<PipelineStep> = Vec::new();
        let mut cur = input;
        loop {
            match cur {
                LogicalPlan::Projection { input, exprs, .. } => {
                    shared.push(PipelineStep::Project(exprs.clone()));
                    cur = input;
                }
                LogicalPlan::Filter { input, predicate } => {
                    shared.push(PipelineStep::Filter(predicate.clone()));
                    cur = input;
                }
                LogicalPlan::Union { .. } => break,
                _ => return None,
            }
        }
        shared.reverse();
        let arms = union_arms(cur)?;
        let node_mark = self.nodes.len();
        let mut planned: Vec<(ChainSpec, Vec<Morsel>)> = Vec::with_capacity(arms.len());
        for arm in arms {
            match self.chain_with_morsels(arm) {
                Some((mut chain, morsels)) => {
                    chain.links.extend(shared.iter().cloned().map(GraphLink::Step));
                    planned.push((chain, morsels));
                }
                None => {
                    self.nodes.truncate(node_mark);
                    return None;
                }
            }
        }
        let types = planned[0].0.output_types();
        if planned.iter().any(|(chain, _)| chain.output_types() != types) {
            // The binder guarantees union-compatible *logical* rows, but
            // only identical physical chunk layouts can share a queue.
            self.nodes.truncate(node_mark);
            return None;
        }
        let queue = self.queues.len();
        self.queues.push(QueueSpec { types, producers: planned.len() });
        for (arm, (chain, morsels)) in planned.into_iter().enumerate() {
            self.push(NodeSpec::QueueProducer { chain, morsels, queue, arm });
        }
        Some(self.push(NodeSpec::QueueConsumer { queue, sink: sink.clone() }))
    }

    /// Recognize the DAG's output nodes: a sink pipeline, or a UNION ALL
    /// tree of them (each arm becomes its own pipeline; the graph
    /// concatenates their chunks in order).
    fn output_nodes(&mut self, plan: &'p LogicalPlan) -> Option<Vec<usize>> {
        if let Some(node) = self.sink_pipeline(plan) {
            return Some(vec![node]);
        }
        match plan {
            LogicalPlan::Union { left, right } => {
                let mark = self.nodes.len();
                let result = (|| {
                    let mut outputs = self.output_nodes(left)?;
                    outputs.extend(self.output_nodes(right)?);
                    Some(outputs)
                })();
                if result.is_none() {
                    self.nodes.truncate(mark);
                }
                result
            }
            _ => None,
        }
    }

    /// Fallback for joins whose *probe* side cannot fan out (small or
    /// non-chain): keep the expensive build morsel-parallel and probe it
    /// from a serially-pulled chain. Only worth a DAG when the build is a
    /// parallel pipeline — otherwise the serial path is strictly simpler.
    fn serial_probe(&mut self, plan: &'p LogicalPlan) -> Option<usize> {
        let LogicalPlan::Join { left, right, join_type, left_keys, right_keys } = plan else {
            return None;
        };
        if !self.join_parallel_safe(right, *join_type) {
            return None;
        }
        let (chain, morsels) = self.chain_with_morsels(right)?;
        let build = self.push(NodeSpec::Pipeline {
            chain,
            morsels,
            sink: PipelineSink::JoinBuild { keys: right_keys.clone() },
        });
        Some(self.push(NodeSpec::SerialProbe {
            plan: left,
            links: vec![GraphLink::Probe {
                build,
                left_keys: left_keys.clone(),
                join_type: *join_type,
                right_types: right.output_types(),
            }],
        }))
    }
}

/// Materialize a validated spec into an executable graph operator. Only
/// now are morsel sources constructed (recording scan read predicates on
/// the transaction), chunk queues allocated, and serial inputs lowered.
fn materialize(
    ctx: &PlanCtx<'_>,
    txn: &Arc<Transaction>,
    threads: usize,
    spec: SpecBuilder<'_, '_>,
    outputs: Vec<usize>,
) -> Result<OperatorBox> {
    let mut graph = PipelineGraph::new(Arc::clone(txn), threads)
        .with_buffers(Some(ctx.buffers()))
        .with_compression(ctx.db.policy().compression())
        .with_sort_budget(ctx.budget() / 4)
        .with_fleet(Some(ctx.db.fleet()));
    // Bound each streaming edge's backlog to a slice of the memory budget:
    // enough to decouple producer and consumer, small enough that queued
    // chunks (charged per batch) cannot crowd out sink state.
    let queue_bytes = (ctx.budget() / 8).clamp(1 << 16, 4 << 20);
    // A queue carries one batch per producer morsel; declaring the total
    // lets sort consumers cap their run fan-out like table-sourced sorts.
    // Queue consumers are weighted by the rows their producers feed them.
    let morsel_rows =
        |morsels: &[Morsel]| morsels.iter().map(|m| (m.row_end - m.row_begin) as u64).sum::<u64>();
    let mut queue_batches = vec![0usize; spec.queues.len()];
    let mut queue_weights = vec![0u64; spec.queues.len()];
    for node in &spec.nodes {
        if let NodeSpec::QueueProducer { morsels, queue, .. } = node {
            queue_batches[*queue] += morsels.len();
            queue_weights[*queue] += morsel_rows(morsels);
        }
    }
    let queues: Vec<Arc<ChunkQueue>> = spec
        .queues
        .into_iter()
        .zip(queue_batches)
        .map(|(q, batches)| {
            Arc::new(
                ChunkQueue::new(q.types, q.producers, queue_bytes).with_expected_batches(batches),
            )
        })
        .collect();
    let scan_source =
        |chain: &ChainSpec, morsels: Vec<Morsel>| Arc::new(chain.morsel_source(txn, morsels));
    // Node weights are estimated input rows: when independent nodes launch
    // in the same round (e.g. two join builds, or union arms), the graph
    // splits the worker budget proportionally instead of evenly. Serial
    // nodes run single-threaded by construction and weigh the minimum.
    for node in spec.nodes {
        match node {
            NodeSpec::Pipeline { chain, morsels, sink } => {
                let weight = morsel_rows(&morsels);
                let source = scan_source(&chain, morsels);
                graph.add_weighted(
                    GraphNode::Pipeline { source: source.into(), links: chain.links, sink },
                    weight,
                );
            }
            NodeSpec::QueueProducer { chain, morsels, queue, arm } => {
                let weight = morsel_rows(&morsels);
                let source = scan_source(&chain, morsels);
                graph.add_weighted(
                    GraphNode::Pipeline {
                        source: source.into(),
                        links: chain.links,
                        sink: PipelineSink::Queue { queue: Arc::clone(&queues[queue]), arm },
                    },
                    weight,
                );
            }
            NodeSpec::QueueConsumer { queue, sink } => {
                graph.add_weighted(
                    GraphNode::Pipeline {
                        source: PipelineSource::Queue(Arc::clone(&queues[queue])),
                        links: Vec::new(),
                        sink,
                    },
                    queue_weights[queue],
                );
            }
            NodeSpec::SerialBuild { plan, keys } => {
                graph.add(GraphNode::SerialBuild { input: Some(lower(ctx, txn, plan)?), keys });
            }
            NodeSpec::SerialProbe { plan, links } => {
                graph.add(GraphNode::SerialPipeline { input: Some(lower(ctx, txn, plan)?), links });
            }
        }
    }
    graph.set_outputs(outputs);
    Ok(Box::new(PipelineGraphOp::new(graph)))
}

/// Morsel-parallel evaluation of a hash-join build side for the *serial*
/// lowering path: when the build plan is a plain chain (no nested joins)
/// over a splittable table and the policy grants workers, run one
/// `JoinBuild` pipeline eagerly and hand the spliced [`BuildSide`] to a
/// streaming probe. This keeps the expensive half of a join parallel even
/// for plan shapes the DAG does not recognize (LIMIT without ORDER BY,
/// CTAS sources, UPDATE/DELETE inputs, …).
///
/// [`BuildSide`]: eider_exec::ops::BuildSide
fn parallel_build_side(
    ctx: &PlanCtx<'_>,
    txn: &Arc<Transaction>,
    build_plan: &LogicalPlan,
    keys: &[Expr],
) -> Result<Option<Arc<eider_exec::ops::BuildSide>>> {
    let threads = ctx.db.policy().worker_threads();
    if threads <= 1 {
        return Ok(None);
    }
    let mut spec = SpecBuilder::new(ctx);
    let Some(chain) = spec.chain_of(build_plan) else { return Ok(None) };
    if !spec.nodes.is_empty() {
        return Ok(None); // nested build sides: keep the serial path simple
    }
    let Some(morsels) = chain.plan_chain_morsels() else { return Ok(None) };
    let source = Arc::new(chain.morsel_source(txn, morsels));
    let steps: Vec<PipelineStep> = chain
        .links
        .into_iter()
        .map(|link| match link {
            GraphLink::Step(step) => step,
            GraphLink::Probe { .. } => unreachable!("probe links imply planned nodes"),
        })
        .collect();
    let pipeline = eider_exec::parallel::ParallelPipeline::new(
        source,
        Arc::clone(txn),
        steps,
        PipelineSink::JoinBuild { keys: keys.to_vec() },
    )
    .with_buffers(Some(ctx.buffers()));
    let eider_exec::parallel::PipelineOutput::JoinBuild { partials, reservations } =
        pipeline.execute(threads)?
    else {
        unreachable!("join-build sink produces partials")
    };
    let build = eider_exec::ops::BuildSide::from_partials(
        partials,
        ctx.db.policy().compression(),
        Some(ctx.buffers()),
    )?;
    drop(reservations);
    Ok(Some(Arc::new(build)))
}

/// Try to lower `plan` onto the pipeline-DAG executor. Returns `Ok(None)`
/// when the plan is not parallel-shaped, the policy grants only one
/// worker, or the tables are too small to split — callers then use the
/// serial [`lower`].
pub fn lower_parallel(
    ctx: &PlanCtx<'_>,
    txn: &Arc<Transaction>,
    plan: &LogicalPlan,
) -> Result<Option<OperatorBox>> {
    // §4's loop: sample the real host before deciding the fan-out (no-op
    // unless `PRAGMA host_probe` enabled the /proc sampler).
    ctx.db.refresh_host_load();
    let threads = ctx.db.policy().worker_threads();
    if threads <= 1 {
        return Ok(None);
    }
    // Publish the policy's worker total to the shared fleet: concurrently
    // admitted graphs divide *this* number between them each launch round.
    ctx.db.fleet().set_threads(threads);
    parallel_plan(ctx, txn, plan, threads)
}

fn parallel_plan(
    ctx: &PlanCtx<'_>,
    txn: &Arc<Transaction>,
    plan: &LogicalPlan,
    threads: usize,
) -> Result<Option<OperatorBox>> {
    if let Some(op) = try_graph(ctx, txn, plan, threads)? {
        return Ok(Some(op));
    }
    // Serial wrappers over a parallel child: the few result rows of an
    // aggregate (SELECT list, HAVING) or the concatenated chunks of a
    // UNION ALL flow through ordinary serial operators while the heavy
    // scan work underneath stays morsel-parallel.
    Ok(match plan {
        LogicalPlan::Projection { input, exprs, .. } => parallel_plan(ctx, txn, input, threads)?
            .map(|child| -> OperatorBox { Box::new(ProjectionOp::new(child, exprs.clone())) }),
        LogicalPlan::Filter { input, predicate } => parallel_plan(ctx, txn, input, threads)?
            .map(|child| -> OperatorBox { Box::new(FilterOp::new(child, predicate.clone())) }),
        LogicalPlan::Aggregate { input, groups, aggs, .. } => {
            parallel_plan(ctx, txn, input, threads)?.map(|child| -> OperatorBox {
                if groups.is_empty() {
                    Box::new(SimpleAggregateOp::new(child, aggs.clone()))
                } else {
                    Box::new(HashAggregateOp::new(
                        child,
                        groups.clone(),
                        aggs.clone(),
                        Some(ctx.buffers()),
                    ))
                }
            })
        }
        LogicalPlan::Sort { input, keys } => {
            parallel_plan(ctx, txn, input, threads)?.map(|child| -> OperatorBox {
                Box::new(ExternalSortOp::new(
                    child,
                    keys.clone(),
                    ctx.budget() / 4,
                    Some(ctx.buffers()),
                    false,
                ))
            })
        }
        LogicalPlan::Distinct { input } => parallel_plan(ctx, txn, input, threads)?
            .map(|child| -> OperatorBox { Box::new(DistinctOp::new(child)) }),
        _ => None,
    })
}

/// Recognize and materialize a whole-plan pipeline DAG: sink pipelines and
/// UNION ALL trees first, then the serial-probe fallback for joins with a
/// small probe side.
fn try_graph(
    ctx: &PlanCtx<'_>,
    txn: &Arc<Transaction>,
    plan: &LogicalPlan,
    threads: usize,
) -> Result<Option<OperatorBox>> {
    let mut spec = SpecBuilder::new(ctx);
    if let Some(outputs) = spec.output_nodes(plan) {
        return materialize(ctx, txn, threads, spec, outputs).map(Some);
    }
    let mut spec = SpecBuilder::new(ctx);
    if let Some(output) = spec.serial_probe(plan) {
        return materialize(ctx, txn, threads, spec, vec![output]).map(Some);
    }
    Ok(None)
}

/// One-line routing summary for `EXPLAIN`: replays the phase-1 shape
/// recognition (pure — no morsel sources constructed, nothing recorded on
/// any transaction) and reports whether the plan would execute on the
/// parallel pipeline DAG, and with how many workers and DAG nodes.
pub fn routing_hint(ctx: &PlanCtx<'_>, plan: &LogicalPlan) -> String {
    let threads = ctx.db.policy().worker_threads();
    if threads > 1 {
        if let Some(nodes) = routed_nodes(ctx, plan) {
            return format!("ROUTING parallel threads={threads} nodes={nodes}");
        }
    }
    "ROUTING serial".to_string()
}

/// DAG node count if the plan routes parallel, mirroring [`parallel_plan`]:
/// whole-plan shapes first, then the serial-probe fallback, then serial
/// wrappers over a parallel child.
fn routed_nodes(ctx: &PlanCtx<'_>, plan: &LogicalPlan) -> Option<usize> {
    let mut spec = SpecBuilder::new(ctx);
    if spec.output_nodes(plan).is_some() {
        return Some(spec.nodes.len());
    }
    let mut spec = SpecBuilder::new(ctx);
    if spec.serial_probe(plan).is_some() {
        return Some(spec.nodes.len());
    }
    match plan {
        LogicalPlan::Projection { input, .. }
        | LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Distinct { input } => routed_nodes(ctx, input),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_sql::{optimizer, Binder};

    /// 3×`PARALLEL_MIN_ROWS` rows in `big`, a handful in `small`.
    fn fixture() -> Arc<Database> {
        let db = Database::in_memory().unwrap();
        let conn = db.connect();
        conn.execute("CREATE TABLE big (id INTEGER, k INTEGER, v DOUBLE)").unwrap();
        conn.execute("CREATE TABLE small (k INTEGER, name VARCHAR)").unwrap();
        let rows: Vec<String> = (0..(3 * PARALLEL_MIN_ROWS) as i32)
            .map(|i| format!("({i}, {}, {}.5)", i % 50, i % 7))
            .collect();
        for batch in rows.chunks(4096) {
            conn.execute(&format!("INSERT INTO big VALUES {}", batch.join(","))).unwrap();
        }
        let small: Vec<String> = (0..50).map(|i| format!("({i}, 'n{i}')")).collect();
        conn.execute(&format!("INSERT INTO small VALUES {}", small.join(","))).unwrap();
        db.policy().set_threads(4);
        db
    }

    fn plan_of(db: &Database, sql: &str) -> LogicalPlan {
        let stmt = eider_sql::parse_statements(sql).unwrap().remove(0);
        let plan = Binder::new(Arc::clone(db.catalog())).bind_statement(&stmt).unwrap();
        optimizer::optimize(plan).unwrap()
    }

    fn routes_parallel(db: &Arc<Database>, sql: &str) -> bool {
        let txn = Arc::new(db.txn_manager().begin());
        let plan = plan_of(db, sql);
        lower_parallel(&PlanCtx::root(db), &txn, &plan).unwrap().is_some()
    }

    /// Un-nest the projection the binder puts above SELECT lists so the
    /// spec-level tests can hand `output_nodes` the sink-shaped subtree.
    fn strip_projection(plan: &LogicalPlan) -> &LogicalPlan {
        match plan {
            LogicalPlan::Projection { input, .. } => strip_projection(input),
            other => other,
        }
    }

    /// Aggregates, DISTINCT and sorts directly above a UNION ALL must plan
    /// as chunk-queue producers + a queue consumer — not as a serial
    /// wrapper over concatenated pipeline outputs.
    #[test]
    fn sink_above_union_routes_through_chunk_queue() {
        let db = fixture();
        let union_sql = "SELECT k FROM big WHERE id < 3000 UNION ALL \
                         SELECT k FROM big WHERE id > 5000";
        for (sql, consumers_expected) in [
            (format!("SELECT count(*) FROM ({union_sql}) u"), 1),
            (format!("SELECT k, count(*), sum(k) FROM ({union_sql}) u GROUP BY k"), 1),
            (format!("SELECT DISTINCT k FROM ({union_sql}) u"), 1),
            (format!("SELECT k FROM ({union_sql}) u ORDER BY k DESC"), 1),
            (format!("SELECT k FROM ({union_sql}) u ORDER BY k DESC LIMIT 5 OFFSET 1"), 1),
        ] {
            let plan = plan_of(&db, &sql);
            let plan = strip_projection(&plan);
            let ctx = PlanCtx::root(&db);
            let mut spec = SpecBuilder::new(&ctx);
            let outputs = spec
                .output_nodes(plan)
                .unwrap_or_else(|| panic!("expected a parallel DAG with a queue for: {sql}"));
            assert_eq!(spec.queues.len(), 1, "{sql}");
            let producers =
                spec.nodes.iter().filter(|n| matches!(n, NodeSpec::QueueProducer { .. })).count();
            let consumers =
                spec.nodes.iter().filter(|n| matches!(n, NodeSpec::QueueConsumer { .. })).count();
            assert_eq!(producers, 2, "{sql}");
            assert_eq!(consumers, consumers_expected, "{sql}");
            assert!(
                matches!(spec.nodes[*outputs.last().unwrap()], NodeSpec::QueueConsumer { .. }),
                "{sql}: the graph output must be the queue consumer"
            );
        }
        // End to end: the same shapes still route through lower_parallel.
        for sql in [
            format!("SELECT count(*) FROM ({union_sql}) u"),
            format!("SELECT DISTINCT k FROM ({union_sql}) u"),
        ] {
            assert!(routes_parallel(&db, &sql), "{sql}");
        }
    }

    /// The acceptance-critical happy paths must route through the DAG —
    /// no serial fallback.
    #[test]
    fn dag_covers_probe_sort_topn_distinct_union() {
        let db = fixture();
        for sql in [
            // Morsel-parallel probe over a serially-built dimension table.
            "SELECT big.id, small.name FROM big JOIN small ON big.k = small.k",
            // Aggregate fused above the probe.
            "SELECT small.name, count(*) FROM big JOIN small ON big.k = small.k \
             GROUP BY small.name",
            // Plain big sort.
            "SELECT id, v FROM big ORDER BY v DESC, id",
            // Top-N and DISTINCT.
            "SELECT id FROM big ORDER BY id DESC LIMIT 5 OFFSET 2",
            "SELECT DISTINCT k FROM big",
            // UNION ALL of two pipelines, bare and under an aggregate.
            "SELECT id FROM big WHERE id < 100 UNION ALL SELECT id FROM big WHERE id > 5000",
            "SELECT count(*) FROM (SELECT id FROM big WHERE id < 100 \
             UNION ALL SELECT id FROM big WHERE id > 5000) u",
        ] {
            assert!(routes_parallel(&db, sql), "expected parallel DAG for: {sql}");
        }
    }

    /// The old planner refused to parallelize sorts whose estimated
    /// footprint exceeded a quarter of the memory limit; the DAG spills
    /// runs instead, so the gate is gone.
    #[test]
    fn big_sorts_no_longer_fall_back_to_serial() {
        let db = fixture();
        db.buffers().set_memory_limit(1 << 20);
        db.policy().set_memory_limit(1 << 20);
        assert!(
            routes_parallel(&db, "SELECT id, v FROM big ORDER BY v DESC, id"),
            "sort beyond the old estimate gate must stay on the parallel DAG"
        );
    }

    /// The parallel Top-N fusion used to cap `limit + offset` at 100k rows
    /// because per-worker buffers were unaccounted; they now charge the
    /// buffer manager and spill under pressure, so big fused Top-Ns stay
    /// on the DAG instead of falling back to the serial operator.
    #[test]
    fn big_topn_stays_on_the_parallel_dag() {
        let db = fixture();
        assert!(
            routes_parallel(&db, "SELECT id FROM big ORDER BY id DESC LIMIT 150000 OFFSET 5000"),
            "limit+offset beyond the old 100k cap must stay parallel"
        );
        assert!(
            routes_parallel(
                &db,
                "SELECT id FROM big ORDER BY id DESC LIMIT 1000000 OFFSET 1000000"
            ),
            "even multi-million-row fused Top-Ns route through the DAG"
        );
    }

    /// A probe side too small to split still probes a parallel build.
    #[test]
    fn small_probe_side_keeps_the_build_parallel() {
        let db = fixture();
        assert!(routes_parallel(
            &db,
            "SELECT count(*) FROM small JOIN big ON small.k = big.k WHERE big.id < 1000",
        ));
    }

    #[test]
    fn serial_fallbacks_remain_for_unsupported_shapes() {
        let db = fixture();
        // Table too small to split, and one-worker policies.
        assert!(!routes_parallel(&db, "SELECT k FROM small"));
        db.policy().set_threads(1);
        assert!(!routes_parallel(&db, "SELECT id FROM big"));
    }

    /// `read_csv` over a file big enough to split must route through the
    /// parallel DAG — no serial fallback — and the projection must be
    /// pushed down into the external scan itself.
    #[test]
    fn read_csv_routes_morsel_parallel_with_projection_pushdown() {
        use std::io::Write as _;
        let mut path = std::env::temp_dir();
        path.push(format!("eider_planner_read_csv_{}.csv", std::process::id()));
        {
            // ~130KB: comfortably above the 2×16KB floor two byte-range
            // partitions need, so the scan is parallel-eligible.
            let mut f = std::fs::File::create(&path).unwrap();
            writeln!(f, "id,name,score").unwrap();
            for i in 0..4000 {
                writeln!(f, "{i},row_{i}_padding_padding_padding,{}.25", i % 97).unwrap();
            }
        }
        let db = fixture();
        let path_sql = path.display().to_string();
        for sql in [
            format!("SELECT count(*) FROM read_csv('{path_sql}')"),
            format!("SELECT id, count(*) FROM read_csv('{path_sql}') GROUP BY id"),
            format!("SELECT id FROM read_csv('{path_sql}') WHERE id < 100"),
        ] {
            assert!(routes_parallel(&db, &sql), "expected parallel DAG for: {sql}");
        }

        // Projection pushdown: only the referenced column survives into
        // the external scan (`name`, the widest column, is never read).
        fn external_scan(plan: &LogicalPlan) -> Option<(&[usize], &[String])> {
            match plan {
                LogicalPlan::ExternalScan { column_ids, names, .. } => Some((column_ids, names)),
                other => other.children().into_iter().find_map(external_scan),
            }
        }
        let plan = plan_of(&db, &format!("SELECT id FROM read_csv('{path_sql}')"));
        let (column_ids, names) =
            external_scan(&plan).expect("plan must contain an ExternalScan leaf");
        assert_eq!(column_ids, &[0], "only `id` may be read from the file");
        assert_eq!(names, &["id".to_string()]);

        // A file too small to split still executes — serially.
        let mut small_path = std::env::temp_dir();
        small_path.push(format!("eider_planner_read_csv_small_{}.csv", std::process::id()));
        std::fs::write(&small_path, "id,name\n1,a\n2,b\n").unwrap();
        let sql = format!("SELECT count(*) FROM read_csv('{}')", small_path.display());
        assert!(!routes_parallel(&db, &sql), "tiny files keep the serial path");
        let conn = db.connect();
        let result = conn.query(&sql).unwrap();
        assert_eq!(result.scalar().unwrap(), eider_vector::Value::BigInt(2));

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&small_path).unwrap();
    }
}
