//! The physical planner: lowers bound logical plans onto executable
//! operators, consulting the cooperation policy for strategy choices (§4).
//!
//! Two lowering paths exist:
//!
//! * [`lower`] — the serial Vector Volcano pull pipeline, able to execute
//!   every plan;
//! * [`lower_parallel`] — recognizes *pipeline-shaped* plans
//!   (`scan → filter*/project* → [aggregate | sort]`, plus hash-join build
//!   sides) and routes them through the morsel-driven parallel executor
//!   ([`eider_exec::parallel`]), returning `None` for anything it cannot
//!   prove parallel-safe so the caller falls back to [`lower`]. Worker
//!   count is the cooperation policy's
//!   [`worker_threads`](eider_coop::policy::ResourcePolicy::worker_threads)
//!   — `PRAGMA threads` clamped by host CPU load.

use crate::database::Database;
use eider_coop::policy::{choose_join_strategy, JoinStrategy};
use eider_exec::ops::join::JoinType;
use eider_exec::ops::{
    CrossProductOp, DeleteOp, DistinctOp, ExternalSortOp, FilterOp, HashAggregateOp, HashJoinOp,
    InsertOp, LimitOp, MergeJoinOp, NestedLoopJoinOp, OperatorBox, PhysicalOperator, ProjectionOp,
    SimpleAggregateOp, TableScanOp, TopNOp, UpdateOp, ValuesOp,
};
use eider_exec::parallel::morsel::{slice_morsels, MORSEL_ROWS};
use eider_exec::parallel::{
    MorselSource, ParallelPipeline, ParallelPipelineOp, PipelineOutput, PipelineSink, PipelineStep,
};
use eider_sql::plan::LogicalPlan;
use eider_txn::{DataTable, ScanOptions, Transaction};
use eider_vector::{DataChunk, EiderError, LogicalType, Result, VECTOR_SIZE};
use std::sync::Arc;

/// Chain two operators: pull left until exhausted, then right (UNION ALL).
struct UnionAllOp {
    left: OperatorBox,
    right: OperatorBox,
    on_right: bool,
}

impl PhysicalOperator for UnionAllOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.left.output_types()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if !self.on_right {
            if let Some(chunk) = self.left.next_chunk()? {
                return Ok(Some(chunk));
            }
            self.on_right = true;
        }
        self.right.next_chunk()
    }
}

/// Rough cardinality estimate for join-strategy selection (§4). No real
/// statistics: base tables report physical rows, filters assume 1/3
/// selectivity, everything else passes through.
fn estimate_rows(plan: &LogicalPlan) -> u64 {
    match plan {
        LogicalPlan::TableScan { entry, filters, .. } => {
            let base = entry.data.physical_rows() as u64;
            if filters.is_empty() {
                base
            } else {
                (base / 3).max(1)
            }
        }
        LogicalPlan::Filter { input, .. } => (estimate_rows(input) / 3).max(1),
        LogicalPlan::Limit { input, limit, .. } => estimate_rows(input).min(*limit as u64),
        LogicalPlan::Join { left, right, .. } => estimate_rows(left).max(estimate_rows(right)),
        LogicalPlan::CrossJoin { left, right } => {
            estimate_rows(left).saturating_mul(estimate_rows(right))
        }
        LogicalPlan::Union { left, right } => {
            estimate_rows(left).saturating_add(estimate_rows(right))
        }
        LogicalPlan::Values { rows, .. } => rows.len() as u64,
        LogicalPlan::SingleRow => 1,
        other => other.children().first().map_or(1, |c| estimate_rows(c)),
    }
}

/// Lower a logical query plan (SELECT-shaped nodes plus INSERT/UPDATE/
/// DELETE) to a physical operator tree.
pub fn lower(db: &Database, txn: &Arc<Transaction>, plan: &LogicalPlan) -> Result<OperatorBox> {
    Ok(match plan {
        LogicalPlan::TableScan { entry, column_ids, filters, emit_row_ids, .. } => {
            let opts = ScanOptions {
                columns: column_ids.clone(),
                filters: filters.clone(),
                emit_row_ids: *emit_row_ids,
            };
            Box::new(TableScanOp::new(Arc::clone(&entry.data), Arc::clone(txn), opts))
        }
        LogicalPlan::Filter { input, predicate } => {
            Box::new(FilterOp::new(lower(db, txn, input)?, predicate.clone()))
        }
        LogicalPlan::Projection { input, exprs, .. } => {
            Box::new(ProjectionOp::new(lower(db, txn, input)?, exprs.clone()))
        }
        LogicalPlan::Aggregate { input, groups, aggs, .. } => {
            let child = lower(db, txn, input)?;
            if groups.is_empty() {
                Box::new(SimpleAggregateOp::new(child, aggs.clone()))
            } else {
                Box::new(HashAggregateOp::new(
                    child,
                    groups.clone(),
                    aggs.clone(),
                    Some(db.buffers()),
                ))
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let child = lower(db, txn, input)?;
            let budget = db.policy().memory_limit() / 4;
            Box::new(ExternalSortOp::new(child, keys.clone(), budget, Some(db.buffers()), false))
        }
        LogicalPlan::Limit { input, limit, offset } => {
            // ORDER BY + LIMIT fuses into Top-N.
            if let LogicalPlan::Sort { input: sort_input, keys } = &**input {
                if *limit != usize::MAX && limit.saturating_add(*offset) <= 1_000_000 {
                    let child = lower(db, txn, sort_input)?;
                    return Ok(Box::new(TopNOp::new(child, keys.clone(), *limit, *offset)));
                }
            }
            Box::new(LimitOp::new(lower(db, txn, input)?, *limit, *offset))
        }
        LogicalPlan::Distinct { input } => Box::new(DistinctOp::new(lower(db, txn, input)?)),
        LogicalPlan::Join { left, right, join_type, left_keys, right_keys } => {
            let lchild = lower(db, txn, left)?;
            // §4: the build side's estimated footprint against currently
            // available memory decides hash vs out-of-core merge join.
            let build_rows = estimate_rows(right);
            let build_bytes = build_rows
                .saturating_mul((right.output_types().len() as u64).saturating_mul(16))
                as usize;
            let strategy = if *join_type == JoinType::Inner {
                choose_join_strategy(build_bytes, db.buffers().available_memory())
            } else {
                JoinStrategy::Hash // left/semi/anti are hash-only
            };
            match strategy {
                JoinStrategy::Hash => {
                    // Morsel-parallel build when the build side is
                    // pipeline-shaped and large enough.
                    match try_parallel_join_build(
                        db,
                        txn,
                        lchild,
                        right,
                        left_keys.clone(),
                        right_keys,
                        *join_type,
                        build_bytes,
                    )? {
                        Ok(op) => op,
                        Err(lchild) => Box::new(HashJoinOp::new(
                            lchild,
                            lower(db, txn, right)?,
                            left_keys.clone(),
                            right_keys.clone(),
                            *join_type,
                            db.policy().compression(),
                            Some(db.buffers()),
                        )?),
                    }
                }
                JoinStrategy::OutOfCoreMerge => Box::new(MergeJoinOp::new(
                    lchild,
                    lower(db, txn, right)?,
                    left_keys.clone(),
                    right_keys.clone(),
                    db.policy().memory_limit() / 8,
                    Some(db.buffers()),
                )),
            }
        }
        LogicalPlan::NestedLoopJoin { left, right, predicate } => Box::new(NestedLoopJoinOp::new(
            lower(db, txn, left)?,
            lower(db, txn, right)?,
            predicate.clone(),
            JoinType::Inner,
        )?),
        LogicalPlan::CrossJoin { left, right } => {
            Box::new(CrossProductOp::new(lower(db, txn, left)?, lower(db, txn, right)?))
        }
        LogicalPlan::Union { left, right } => Box::new(UnionAllOp {
            left: lower(db, txn, left)?,
            right: lower(db, txn, right)?,
            on_right: false,
        }),
        LogicalPlan::Values { rows, types, .. } => {
            let mut chunk = DataChunk::new(types);
            for row in rows {
                let vals: Vec<eider_vector::Value> = row
                    .iter()
                    .zip(types)
                    .map(|(e, &ty)| e.evaluate_row(&[])?.cast_to(ty))
                    .collect::<Result<_>>()?;
                chunk.append_row(&vals)?;
            }
            Box::new(ValuesOp::new(types.clone(), vec![chunk]))
        }
        LogicalPlan::SingleRow => Box::new(ValuesOp::single_row()),
        LogicalPlan::Insert { entry, input } => {
            Box::new(InsertOp::new(Arc::clone(entry), lower(db, txn, input)?, Arc::clone(txn)))
        }
        LogicalPlan::Update { entry, input, columns } => Box::new(UpdateOp::new(
            Arc::clone(entry),
            lower(db, txn, input)?,
            Arc::clone(txn),
            columns.clone(),
        )),
        LogicalPlan::Delete { entry, input } => {
            Box::new(DeleteOp::new(Arc::clone(entry), lower(db, txn, input)?, Arc::clone(txn)))
        }
        other => {
            return Err(EiderError::Internal(format!(
                "plan node is not executable by the physical planner: {other:?}"
            )))
        }
    })
}

/// A table must span at least this many rows before fan-out pays for the
/// thread dispatch (two minimum-size morsels).
const PARALLEL_MIN_ROWS: usize = 2 * VECTOR_SIZE;

/// The streaming part of a pipeline-shaped plan: one base table scan plus
/// filter/projection steps, all safe to replicate per worker.
struct ScanChain {
    table: Arc<DataTable>,
    opts: ScanOptions,
    steps: Vec<PipelineStep>,
}

/// Decompose `scan → (filter | project)*` plans; `None` for anything else
/// (joins, unions, nested aggregates, row-id-emitting scans for
/// UPDATE/DELETE — those stay on the serial path).
fn extract_chain(plan: &LogicalPlan) -> Option<ScanChain> {
    match plan {
        LogicalPlan::TableScan { entry, column_ids, filters, emit_row_ids, .. }
            if !emit_row_ids =>
        {
            Some(ScanChain {
                table: Arc::clone(&entry.data),
                opts: ScanOptions {
                    columns: column_ids.clone(),
                    filters: filters.clone(),
                    emit_row_ids: false,
                },
                steps: Vec::new(),
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut chain = extract_chain(input)?;
            chain.steps.push(PipelineStep::Filter(predicate.clone()));
            Some(chain)
        }
        LogicalPlan::Projection { input, exprs, .. } => {
            let mut chain = extract_chain(input)?;
            chain.steps.push(PipelineStep::Project(exprs.clone()));
            Some(chain)
        }
        _ => None,
    }
}

/// Build the morsel source for a chain, or `None` when the table is too
/// small for parallel workers to earn their dispatch cost. Morsel size
/// depends only on the data (aiming for ~16 morsels on moderate tables,
/// capped at [`MORSEL_ROWS`] on large ones), *never* on the thread count:
/// per-morsel aggregate partials merge in morsel order, so a fixed
/// decomposition makes results bit-identical across worker counts even
/// for floating-point aggregates.
fn make_source(chain: &ScanChain, txn: &Arc<Transaction>) -> Option<Arc<MorselSource>> {
    let sizes = chain.table.group_sizes();
    let total: usize = sizes.iter().sum();
    if total < PARALLEL_MIN_ROWS {
        return None;
    }
    // Slice before constructing: a rejected source must leave no trace on
    // the transaction (MorselSource records read predicates, and the
    // serial fallback will record its own).
    let morsel_rows = (total / 16).clamp(VECTOR_SIZE, MORSEL_ROWS);
    let morsels = slice_morsels(&sizes, morsel_rows);
    if morsels.len() < 2 {
        return None;
    }
    Some(Arc::new(MorselSource::from_morsels(
        Arc::clone(&chain.table),
        txn,
        chain.opts.clone(),
        morsels,
    )))
}

/// Lower a pipeline-shaped chain + sink to a parallel operator.
/// `buffers` (when given) makes the sink's aggregate state count against
/// the shared memory budget, mirroring the serial operator's accounting.
fn chain_to_op(
    chain: ScanChain,
    txn: &Arc<Transaction>,
    sink: PipelineSink,
    threads: usize,
    buffers: Option<Arc<eider_storage::buffer::BufferManager>>,
) -> Option<OperatorBox> {
    let source = make_source(&chain, txn)?;
    let pipeline =
        ParallelPipeline::new(source, Arc::clone(txn), chain.steps, sink).with_buffers(buffers);
    Some(Box::new(ParallelPipelineOp::new(pipeline, threads)))
}

/// Try to lower `plan` onto the morsel-driven parallel executor. Returns
/// `Ok(None)` when the plan is not parallel-shaped, the policy grants only
/// one worker, or the table is too small to split — callers then use the
/// serial [`lower`].
pub fn lower_parallel(
    db: &Database,
    txn: &Arc<Transaction>,
    plan: &LogicalPlan,
) -> Result<Option<OperatorBox>> {
    let threads = db.policy().worker_threads();
    if threads <= 1 {
        return Ok(None);
    }
    Ok(parallel_plan(txn, plan, threads, db.policy().memory_limit(), &db.buffers()))
}

fn parallel_plan(
    txn: &Arc<Transaction>,
    plan: &LogicalPlan,
    threads: usize,
    memory_limit: usize,
    buffers: &Arc<eider_storage::buffer::BufferManager>,
) -> Option<OperatorBox> {
    // Whole plan as one data-parallel chain (scan/filter/project)?
    if let Some(chain) = extract_chain(plan) {
        return chain_to_op(chain, txn, PipelineSink::Collect, threads, None);
    }
    match plan {
        LogicalPlan::Aggregate { input, groups, aggs, .. } => {
            let chain = extract_chain(input)?;
            let sink = if groups.is_empty() {
                PipelineSink::SimpleAggregate(aggs.clone())
            } else {
                PipelineSink::HashAggregate { groups: groups.clone(), aggs: aggs.clone() }
            };
            chain_to_op(chain, txn, sink, threads, Some(Arc::clone(buffers)))
        }
        LogicalPlan::Sort { input, keys } => {
            let chain = extract_chain(input)?;
            // The parallel sort holds every row in worker memory (no run
            // spilling yet — see ROADMAP): oversized sorts stay on the
            // serial ExternalSortOp, which spills within its budget. Same
            // crude ~16 bytes/value estimate the join planner uses.
            let total_rows: usize = chain.table.group_sizes().iter().sum();
            let width = input.output_types().len() + keys.len();
            let estimated = total_rows.saturating_mul(width).saturating_mul(16);
            if estimated > memory_limit / 4 {
                return None;
            }
            chain_to_op(chain, txn, PipelineSink::Sort(keys.clone()), threads, None)
        }
        // SELECT-list over an aggregate (the binder always wraps one):
        // parallelize underneath, project the handful of result rows
        // serially.
        LogicalPlan::Projection { input, exprs, .. } => {
            let child = parallel_plan(txn, input, threads, memory_limit, buffers)?;
            Some(Box::new(ProjectionOp::new(child, exprs.clone())))
        }
        // HAVING over an aggregate, same shape.
        LogicalPlan::Filter { input, predicate } => {
            let child = parallel_plan(txn, input, threads, memory_limit, buffers)?;
            Some(Box::new(FilterOp::new(child, predicate.clone())))
        }
        _ => None,
    }
}

/// Parallelize a hash join's build side when it is pipeline-shaped: the
/// workers evaluate, key and hash the build rows morsel-parallel, and
/// [`HashJoinOp::from_prebuilt`] splices the partials into the bucket
/// table. The probe side streams serially (open item: parallel probe).
/// Runs the build eagerly; the caller is about to pull the join anyway.
///
/// Unlike the serial build, the worker partials are not charged to the
/// buffer manager until the final splice, so they cannot abort early on
/// memory pressure — `build_bytes_estimate` therefore needs real headroom
/// (4×) against currently available memory, or the serial incremental
/// build (which can abort chunk-by-chunk) runs instead.
fn try_parallel_join_build(
    db: &Database,
    txn: &Arc<Transaction>,
    left: OperatorBox,
    right_plan: &LogicalPlan,
    left_keys: Vec<eider_exec::Expr>,
    right_keys: &[eider_exec::Expr],
    join_type: JoinType,
    build_bytes_estimate: usize,
) -> Result<std::result::Result<OperatorBox, OperatorBox>> {
    let threads = db.policy().worker_threads();
    let parallel = || -> Option<(ParallelPipeline, usize)> {
        if threads <= 1 {
            return None;
        }
        if build_bytes_estimate.saturating_mul(4) > db.buffers().available_memory() {
            return None;
        }
        let chain = extract_chain(right_plan)?;
        let source = make_source(&chain, txn)?;
        Some((
            ParallelPipeline::new(
                source,
                Arc::clone(txn),
                chain.steps,
                PipelineSink::JoinBuild { keys: right_keys.to_vec() },
            ),
            threads,
        ))
    };
    match parallel() {
        Some((pipeline, threads)) => {
            let right_types = pipeline.chain_types();
            let PipelineOutput::JoinBuild(partials) = pipeline.execute(threads)? else {
                unreachable!("join-build sink produces partials")
            };
            Ok(Ok(Box::new(HashJoinOp::from_prebuilt(
                left,
                right_types,
                partials,
                left_keys,
                join_type,
                db.policy().compression(),
                Some(db.buffers()),
            )?)))
        }
        None => Ok(Err(left)),
    }
}
