//! eider-core: the embedded analytical database facade.
//!
//! This crate assembles every substrate of the paper's system (§6) into
//! the library a data-science application links against:
//!
//! ```no_run
//! use eider_core::{Database, DatabaseConfig};
//!
//! let db = Database::in_memory().unwrap();
//! let conn = db.connect();
//! conn.execute("CREATE TABLE t (a INTEGER, d INTEGER)").unwrap();
//! conn.execute("INSERT INTO t VALUES (1, -999), (2, 42)").unwrap();
//! // The paper's §2 wrangling update:
//! conn.execute("UPDATE t SET d = NULL WHERE d = -999").unwrap();
//! let result = conn.query("SELECT count(*) FROM t WHERE d IS NULL").unwrap();
//! println!("{result}");
//! ```
//!
//! The database runs *inside the process*: queries return reference-counted
//! chunks (no serialization, no socket — §5), transactions are full MVCC
//! (§6), storage is a single checksummed file plus a WAL (§3/§6), and
//! resource limits cooperate with the host application (§4).

pub mod config;
pub mod connection;
pub mod cursor;
pub mod database;
pub mod persist;
pub mod planner;

pub use config::DatabaseConfig;
pub use connection::Connection;
pub use cursor::ResultCursor;
pub use database::{Database, SessionState};
pub use eider_client::MaterializedResult;
pub use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value};
