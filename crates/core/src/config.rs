//! Database configuration.

/// Tunables fixed at open time (runtime-adjustable ones have PRAGMAs).
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Memory limit for operator allocations (PRAGMA memory_limit).
    /// Deliberately modest by default — an embedded DBMS shares the
    /// machine with its application (§4).
    pub memory_limit: usize,
    /// Worker thread cap (PRAGMA threads).
    pub threads: usize,
    /// Memory-test fresh buffers on allocation (§3).
    pub memtest_allocations: bool,
    /// WAL size (bytes) that triggers an automatic checkpoint.
    pub wal_autocheckpoint: u64,
    /// Feed the cooperation policy's host CPU load from the real `/proc`
    /// probe before each parallel query (`PRAGMA host_probe`). Off by
    /// default: the simulated monitor (tests, figure harnesses) then
    /// remains the only writer of the load signal.
    pub host_probe: bool,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            memory_limit: 1 << 30,
            // EIDER_THREADS pins the default worker cap (CI runs the suite
            // at 1 and 4 to exercise serial/parallel equivalence on any
            // host); otherwise every core the machine has.
            threads: std::env::var("EIDER_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n: &usize| n >= 1)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |n| n.get())),
            memtest_allocations: true,
            wal_autocheckpoint: 16 << 20,
            host_probe: false,
        }
    }
}
