//! Database configuration.

/// Tunables fixed at open time (runtime-adjustable ones have PRAGMAs).
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Memory limit for operator allocations (PRAGMA memory_limit).
    /// Deliberately modest by default — an embedded DBMS shares the
    /// machine with its application (§4).
    pub memory_limit: usize,
    /// Worker thread cap (PRAGMA threads).
    pub threads: usize,
    /// Memory-test fresh buffers on allocation (§3).
    pub memtest_allocations: bool,
    /// WAL size (bytes) that triggers an automatic checkpoint.
    pub wal_autocheckpoint: u64,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            memory_limit: 1 << 30,
            threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            memtest_allocations: true,
            wal_autocheckpoint: 16 << 20,
        }
    }
}
