//! End-to-end smoke tests of the eider-core facade.

use eider_core::{Database, Value};

#[test]
fn full_sql_pipeline_in_memory() {
    let db = Database::in_memory().unwrap();
    let conn = db.connect();
    conn.execute("CREATE TABLE t (a INTEGER, d INTEGER, v DOUBLE)").unwrap();
    let n =
        conn.execute("INSERT INTO t VALUES (1, -999, 1.5), (2, 7, 2.5), (3, -999, 3.5)").unwrap();
    assert_eq!(n, 3);
    // The paper's §2 wrangling update.
    let n = conn.execute("UPDATE t SET d = NULL WHERE d = -999").unwrap();
    assert_eq!(n, 2);
    let r = conn.query("SELECT count(*), sum(v) FROM t WHERE d IS NULL").unwrap();
    assert_eq!(r.value(0, 0).unwrap(), Value::BigInt(2));
    assert_eq!(r.value(0, 1).unwrap(), Value::Double(5.0));
}

#[test]
fn joins_group_order() {
    let db = Database::in_memory().unwrap();
    let conn = db.connect();
    conn.execute("CREATE TABLE orders (cid INTEGER, amount DOUBLE)").unwrap();
    conn.execute("CREATE TABLE customers (cid INTEGER, name VARCHAR)").unwrap();
    conn.execute("INSERT INTO customers VALUES (1, 'ada'), (2, 'bob')").unwrap();
    conn.execute("INSERT INTO orders VALUES (1, 10.0), (1, 20.0), (2, 5.0), (3, 99.0)").unwrap();
    let r = conn
        .query(
            "SELECT name, sum(amount) AS total FROM orders \
             JOIN customers ON orders.cid = customers.cid \
             GROUP BY name ORDER BY total DESC",
        )
        .unwrap();
    let rows = r.to_rows();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Varchar("ada".into()));
    assert_eq!(rows[0][1], Value::Double(30.0));
    assert_eq!(rows[1][0], Value::Varchar("bob".into()));
}

#[test]
fn explicit_transactions_and_rollback() {
    let db = Database::in_memory().unwrap();
    let conn = db.connect();
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t VALUES (1)").unwrap();
    assert!(conn.in_transaction());
    conn.execute("ROLLBACK").unwrap();
    let r = conn.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(0));
    conn.execute("BEGIN; INSERT INTO t VALUES (2); COMMIT").unwrap();
    let r = conn.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(1));
}

#[test]
fn persistence_across_reopen() {
    let mut path = std::env::temp_dir();
    path.push(format!("eider_smoke_{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let wal = format!("{}.wal", path.display());
    {
        let db = Database::open(&path).unwrap();
        let conn = db.connect();
        conn.execute("CREATE TABLE t (a INTEGER, b VARCHAR)").unwrap();
        conn.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')").unwrap();
        conn.execute("UPDATE t SET b = 'ONE' WHERE a = 1").unwrap();
        conn.execute("DELETE FROM t WHERE a = 2").unwrap();
        // Dropped here: checkpoint on close.
    }
    {
        let db = Database::open(&path).unwrap();
        let conn = db.connect();
        let r = conn.query("SELECT a, b FROM t").unwrap();
        assert_eq!(r.to_rows(), vec![vec![Value::Integer(1), Value::Varchar("ONE".into())]]);
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn wal_recovery_without_checkpoint() {
    let mut path = std::env::temp_dir();
    path.push(format!("eider_walrec_{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let wal = format!("{}.wal", path.display());
    let _ = std::fs::remove_file(&wal);
    {
        let db = Database::open(&path).unwrap();
        let conn = db.connect();
        conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
        conn.execute("INSERT INTO t VALUES (42)").unwrap();
        // Simulate a crash: leak the database so Drop (checkpoint on
        // close) never runs — recovery must come from the WAL alone.
        std::mem::forget(db);
    }
    {
        let db = Database::open(&path).unwrap();
        let conn = db.connect();
        let r = conn.query("SELECT a FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Integer(42));
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn pragmas() {
    let db = Database::in_memory().unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA memory_limit = 100000000").unwrap();
    let r = conn.query("PRAGMA memory_limit").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(100_000_000));
    conn.execute("PRAGMA compression = 'heavy'").unwrap();
    let r = conn.query("PRAGMA compression").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Varchar("heavy".into()));
    assert!(conn.query("PRAGMA bogus").is_err());
}

#[test]
fn explain_and_show_tables() {
    let db = Database::in_memory().unwrap();
    let conn = db.connect();
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    let r = conn.query("EXPLAIN SELECT a FROM t WHERE a > 1").unwrap();
    let text = r.to_rows().iter().map(|r| r[0].to_string()).collect::<Vec<_>>().join("\n");
    assert!(text.contains("SCAN t"), "{text}");
    let r = conn.query("SHOW TABLES").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Varchar("t".into()));
}
