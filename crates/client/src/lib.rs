//! The client transfer layer (§5: Transfer Efficiency).
//!
//! "Because both DBMS and analytics tool are located in a single process'
//! address space, data transfer can be particularly efficient. ... The API
//! allows the client application to essentially become the root operator
//! in the physical query processing plan. ... the chunk is handed over
//! without requiring copying."
//!
//! Three access paths coexist so the §5 experiment can compare them:
//!
//! * [`result::MaterializedResult`] / chunk streaming — the eider way:
//!   `Arc<DataChunk>` handover, zero copies, bulk access;
//! * [`result::ValueCursor`] — the ODBC/JDBC/SQLite-style value-at-a-time
//!   API ("the function call overhead for each value becomes excessive");
//! * [`protocol`] — a classic row-major byte-stream client protocol with a
//!   simulated network bandwidth, standing in for the socket between a
//!   client and a DBMS server (DESIGN.md substitution E5).
//!
//! [`appender::Appender`] is the reverse direction: "the client application
//! can fill chunks with its data. Once filled, they are handed over ...
//! and appended to persistent storage."

pub mod appender;
pub mod protocol;
pub mod result;
pub mod wire;

pub use appender::Appender;
pub use result::{MaterializedResult, ValueCursor};
