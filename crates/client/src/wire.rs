//! Chunked **columnar** streaming protocol for out-of-process clients.
//!
//! The paper's thesis (§5) is that conventional client protocols pay a
//! row-at-a-time serialization tax that dwarfs query execution for
//! analytical result sets. [`protocol`](crate::protocol) implements that
//! straw man for comparison; this module is the engine's answer when a
//! socket *is* required: results cross the wire in the same columnar
//! layout the engine produces, one [`DataChunk`] per frame, so the
//! transfer is a handful of `memcpy`s per column instead of a
//! value-by-value walk.
//!
//! # Frame layout
//!
//! A stream is a sequence of frames, each `[kind: u8][len: u32 LE][payload]`:
//!
//! | kind | frame    | payload |
//! |------|----------|---------|
//! | 1    | `Header` | `u32` column count, then per column: length-prefixed name, `u8` type tag |
//! | 2    | `Chunk`  | `u32` column count, then per column: [`write_vector`] encoding |
//! | 3    | `End`    | `u64` total row count (an integrity check for the client) |
//! | 4    | `Error`  | length-prefixed message string |
//!
//! Exactly one `Header` opens a stream; zero or more `Chunk`s follow; the
//! stream terminates with `End` on success or `Error` if the query failed
//! mid-stream (a streaming server cannot retract the header it already
//! sent). All strings are length-prefixed — embedded NUL bytes in
//! `VARCHAR` data survive the trip. Vector payloads reuse the storage
//! layer's spill/WAL encoding ([`write_vector`]/[`read_vector`]), so the
//! wire format is covered by the same corruption checks as the database
//! file: truncated or bit-flipped frames surface as `Corruption` errors,
//! never panics.
//!
//! [`ChunkWriter`] is fed by the server from a streaming cursor;
//! [`ChunkReader`] reassembles frames on the client side. Both are generic
//! over `std::io` so they run equally over TCP sockets, Unix sockets, or
//! in-memory buffers (how the tests drive them).
//!
//! [`write_vector`]: eider_storage::serde::write_vector
//! [`read_vector`]: eider_storage::serde::read_vector

use eider_storage::serde::{
    read_vector, tag_to_type, type_to_tag, write_vector, BinReader, BinWriter,
};
use eider_vector::{DataChunk, EiderError, LogicalType, Result};
use std::io::{Read, Write};

/// Frame kind tags (the first byte of every frame).
const KIND_HEADER: u8 = 1;
const KIND_CHUNK: u8 = 2;
const KIND_END: u8 = 3;
const KIND_ERROR: u8 = 4;

/// Upper bound on a single frame's payload. A chunk frame holds one
/// engine-sized `DataChunk` (a few thousand rows), so anything near this
/// limit is a corrupt length field, not a real result.
const MAX_FRAME_BYTES: u32 = 1 << 30;

/// One decoded protocol frame.
#[derive(Debug)]
pub enum Frame {
    /// Stream prologue: result schema.
    Header { names: Vec<String>, types: Vec<LogicalType> },
    /// One columnar batch of rows.
    Chunk(DataChunk),
    /// Clean end of stream with the total row count sent.
    End { rows: u64 },
    /// The producing query failed after the header was sent.
    Error(String),
}

fn io_err(e: std::io::Error) -> EiderError {
    EiderError::Io(e)
}

fn truncated() -> EiderError {
    EiderError::Corruption("wire stream truncated mid-frame".into())
}

/// Serializes a result stream into wire frames. See the [module docs](self)
/// for the frame grammar.
#[derive(Debug)]
pub struct ChunkWriter<W: Write> {
    inner: W,
    rows: u64,
}

impl<W: Write> ChunkWriter<W> {
    pub fn new(inner: W) -> Self {
        ChunkWriter { inner, rows: 0 }
    }

    fn frame(&mut self, kind: u8, payload: &[u8]) -> Result<()> {
        if payload.len() as u64 > u64::from(MAX_FRAME_BYTES) {
            return Err(EiderError::Execution(format!(
                "wire frame of {} bytes exceeds the {} byte limit",
                payload.len(),
                MAX_FRAME_BYTES
            )));
        }
        self.inner.write_all(&[kind]).map_err(io_err)?;
        self.inner.write_all(&(payload.len() as u32).to_le_bytes()).map_err(io_err)?;
        self.inner.write_all(payload).map_err(io_err)?;
        Ok(())
    }

    /// Send the stream prologue: column names and types, in position order.
    pub fn write_header(&mut self, names: &[String], types: &[LogicalType]) -> Result<()> {
        let mut w = BinWriter::new();
        w.write_u32(names.len() as u32);
        for (name, ty) in names.iter().zip(types) {
            w.write_str(name);
            w.write_u8(type_to_tag(*ty));
        }
        self.frame(KIND_HEADER, w.as_bytes())
    }

    /// Send one columnar batch. Empty chunks are legal (they encode zero
    /// rows, not end-of-stream).
    ///
    /// Low-cardinality `VARCHAR` columns cross the wire dictionary-coded
    /// when the stats-driven chooser says the encoding pays: one `u32`
    /// code per row plus the dictionary, instead of the same strings over
    /// and over. Encoded frames are flagged in the type tag; columns the
    /// chooser declines keep the legacy plain frame layout byte-for-byte,
    /// so decoders that predate compressed frames still round-trip them.
    pub fn write_chunk(&mut self, chunk: &DataChunk) -> Result<()> {
        let mut w = BinWriter::with_capacity(chunk.size_bytes() + 16);
        w.write_u32(chunk.column_count() as u32);
        for col in chunk.columns() {
            if col.logical_type() == LogicalType::Varchar && !col.is_encoded() {
                if let Some(encoded) = col.encode_auto() {
                    write_vector(&mut w, &encoded);
                    continue;
                }
            }
            write_vector(&mut w, col);
        }
        self.rows += chunk.len() as u64;
        self.frame(KIND_CHUNK, w.as_bytes())
    }

    /// Terminate the stream cleanly, sending the total row count written so
    /// far as an integrity check, and flush the transport.
    pub fn finish(&mut self) -> Result<()> {
        let mut w = BinWriter::new();
        w.write_u64(self.rows);
        self.frame(KIND_END, w.as_bytes())?;
        self.inner.flush().map_err(io_err)
    }

    /// Terminate the stream with an error (the query failed after the
    /// header went out) and flush the transport.
    pub fn write_error(&mut self, message: &str) -> Result<()> {
        let mut w = BinWriter::new();
        w.write_str(message);
        self.frame(KIND_ERROR, w.as_bytes())?;
        self.inner.flush().map_err(io_err)
    }

    /// Rows sent in chunk frames so far.
    pub fn rows_written(&self) -> u64 {
        self.rows
    }

    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// A fully reassembled result stream, as [`ChunkReader::read_result`]
/// returns it.
#[derive(Debug)]
pub struct WireResult {
    pub names: Vec<String>,
    pub types: Vec<LogicalType>,
    pub chunks: Vec<DataChunk>,
    pub rows: u64,
}

impl WireResult {
    /// Flatten the chunks into rows of [`eider_vector::Value`]s (test and
    /// debugging convenience — real clients consume the columns directly).
    pub fn to_rows(&self) -> Vec<Vec<eider_vector::Value>> {
        self.chunks.iter().flat_map(|c| c.to_rows()).collect()
    }
}

/// Decodes wire frames back into schema and chunks.
#[derive(Debug)]
pub struct ChunkReader<R: Read> {
    inner: R,
}

impl<R: Read> ChunkReader<R> {
    pub fn new(inner: R) -> Self {
        ChunkReader { inner }
    }

    /// Read the next frame. Returns `Ok(None)` on a clean end-of-stream at
    /// a frame boundary; EOF *inside* a frame is a `Corruption` error.
    pub fn read_frame(&mut self) -> Result<Option<Frame>> {
        let mut kind = [0u8; 1];
        match self.inner.read_exact(&mut kind) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(io_err(e)),
        }
        let mut len = [0u8; 4];
        self.inner.read_exact(&mut len).map_err(|_| truncated())?;
        let len = u32::from_le_bytes(len);
        if len > MAX_FRAME_BYTES {
            return Err(EiderError::Corruption(format!(
                "wire frame length {len} exceeds the {MAX_FRAME_BYTES} byte limit"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.inner.read_exact(&mut payload).map_err(|_| truncated())?;
        let mut r = BinReader::new(&payload);
        let frame = match kind[0] {
            KIND_HEADER => {
                let ncols = r.read_u32()? as usize;
                let mut names = Vec::with_capacity(ncols);
                let mut types = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    names.push(r.read_str()?);
                    types.push(tag_to_type(r.read_u8()?)?);
                }
                Frame::Header { names, types }
            }
            KIND_CHUNK => {
                let ncols = r.read_u32()? as usize;
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(read_vector(&mut r)?);
                }
                Frame::Chunk(DataChunk::from_vectors(columns)?)
            }
            KIND_END => Frame::End { rows: r.read_u64()? },
            KIND_ERROR => Frame::Error(r.read_str()?),
            other => {
                return Err(EiderError::Corruption(format!("unknown wire frame kind {other}")))
            }
        };
        if !r.is_exhausted() {
            return Err(EiderError::Corruption(format!(
                "wire frame kind {} carries {} trailing bytes",
                kind[0],
                r.remaining()
            )));
        }
        Ok(Some(frame))
    }

    /// Drain a whole stream into a [`WireResult`]. An `Error` frame becomes
    /// an `Execution` error; a missing or inconsistent `End` frame is
    /// `Corruption` (the stream was cut off mid-flight).
    pub fn read_result(&mut self) -> Result<WireResult> {
        let (names, types) = match self.read_frame()? {
            Some(Frame::Header { names, types }) => (names, types),
            // The query failed before a header could be sent (parse/bind
            // errors): the whole stream is just the error.
            Some(Frame::Error(message)) => return Err(EiderError::Execution(message)),
            _ => {
                return Err(EiderError::Corruption(
                    "wire stream did not start with a header frame".into(),
                ))
            }
        };
        let mut chunks = Vec::new();
        let mut rows = 0u64;
        loop {
            match self.read_frame()? {
                Some(Frame::Chunk(chunk)) => {
                    rows += chunk.len() as u64;
                    chunks.push(chunk);
                }
                Some(Frame::End { rows: sent }) => {
                    if sent != rows {
                        return Err(EiderError::Corruption(format!(
                            "wire stream ended after {rows} rows but the server sent {sent}"
                        )));
                    }
                    return Ok(WireResult { names, types, chunks, rows });
                }
                Some(Frame::Error(message)) => return Err(EiderError::Execution(message)),
                Some(Frame::Header { .. }) => {
                    return Err(EiderError::Corruption(
                        "duplicate header frame inside a wire stream".into(),
                    ))
                }
                None => {
                    return Err(EiderError::Corruption(
                        "wire stream ended without an end-of-stream frame".into(),
                    ))
                }
            }
        }
    }

    pub fn into_inner(self) -> R {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_vector::{Value, Vector};

    /// Encode a full stream into a byte buffer.
    fn encode(names: &[String], types: &[LogicalType], chunks: &[DataChunk]) -> Vec<u8> {
        let mut w = ChunkWriter::new(Vec::new());
        w.write_header(names, types).unwrap();
        for c in chunks {
            w.write_chunk(c).unwrap();
        }
        w.finish().unwrap();
        w.into_inner()
    }

    fn sample_value(ty: LogicalType, i: usize) -> Value {
        if i % 5 == 3 {
            return Value::Null;
        }
        let n = i as i64;
        match ty {
            LogicalType::Boolean => Value::Boolean(i.is_multiple_of(2)),
            LogicalType::TinyInt => Value::TinyInt((n % 100) as i8),
            LogicalType::SmallInt => Value::SmallInt((n * 7 % 30_000) as i16),
            LogicalType::Integer => Value::Integer((n * 131) as i32),
            LogicalType::BigInt => Value::BigInt(n * 1_000_003),
            LogicalType::Double => Value::Double(n as f64 * 0.5 - 3.25),
            LogicalType::Varchar => Value::Varchar(format!("s{i}\0embedded\0nul")),
            LogicalType::Date => Value::Date((n * 3) as i32),
            LogicalType::Timestamp => Value::Timestamp(n * 86_400_000_000),
        }
    }

    /// One chunk per logical type, each with nulls sprinkled in, plus the
    /// varchar column carrying embedded NUL bytes.
    fn every_type_chunk(rows: usize) -> DataChunk {
        let columns: Vec<Vector> = LogicalType::ALL
            .iter()
            .map(|&ty| {
                let values: Vec<Value> = (0..rows).map(|i| sample_value(ty, i)).collect();
                Vector::from_values(ty, &values).unwrap()
            })
            .collect();
        DataChunk::from_vectors(columns).unwrap()
    }

    #[test]
    fn round_trips_every_type_with_nulls_and_embedded_nuls() {
        let chunk = every_type_chunk(97);
        let names: Vec<String> = LogicalType::ALL.iter().map(|t| t.to_string()).collect();
        let bytes = encode(&names, &LogicalType::ALL, std::slice::from_ref(&chunk));
        let result = ChunkReader::new(&bytes[..]).read_result().unwrap();
        assert_eq!(result.types, LogicalType::ALL.to_vec());
        assert_eq!(result.rows, 97);
        assert_eq!(result.to_rows(), chunk.to_rows());
        // Embedded NULs really crossed the wire.
        let Value::Varchar(s) = &result.to_rows()[0][6] else {
            panic!("expected varchar");
        };
        assert!(s.contains('\0'));
    }

    #[test]
    fn empty_chunks_and_zero_row_streams_are_legal() {
        let empty = DataChunk::new(&[LogicalType::Integer]);
        let bytes = encode(&["x".to_string()], &[LogicalType::Integer], &[empty.clone(), empty]);
        let result = ChunkReader::new(&bytes[..]).read_result().unwrap();
        assert_eq!(result.rows, 0);
        assert_eq!(result.chunks.len(), 2);

        let bytes = encode(&["x".to_string()], &[LogicalType::Integer], &[]);
        let result = ChunkReader::new(&bytes[..]).read_result().unwrap();
        assert_eq!(result.rows, 0);
        assert!(result.chunks.is_empty());
    }

    #[test]
    fn error_frame_surfaces_as_execution_error() {
        let mut w = ChunkWriter::new(Vec::new());
        w.write_header(&["x".into()], &[LogicalType::Integer]).unwrap();
        w.write_error("division by zero").unwrap();
        let bytes = w.into_inner();
        let err = ChunkReader::new(&bytes[..]).read_result().unwrap_err();
        assert!(matches!(err, EiderError::Execution(m) if m == "division by zero"));
    }

    #[test]
    fn truncated_and_corrupt_streams_fail_loudly() {
        let chunk = every_type_chunk(10);
        let names: Vec<String> = LogicalType::ALL.iter().map(|t| t.to_string()).collect();
        let bytes = encode(&names, &LogicalType::ALL, &[chunk]);

        // Cut off mid-frame: Corruption, not a panic or silent short read.
        let cut = &bytes[..bytes.len() - 7];
        assert!(matches!(ChunkReader::new(cut).read_result(), Err(EiderError::Corruption(_))));

        // Drop the End frame entirely (frame boundary EOF): still an error,
        // because a result stream must be explicitly terminated.
        let mut r = ChunkReader::new(&bytes[..]);
        let _ = r.read_frame().unwrap(); // header
        let _ = r.read_frame().unwrap(); // chunk
        assert!(matches!(r.read_frame().unwrap(), Some(Frame::End { rows: 10 })));
        assert!(r.read_frame().unwrap().is_none());

        // Unknown frame kind.
        let mut garbled = bytes.clone();
        garbled[0] = 9;
        assert!(matches!(
            ChunkReader::new(&garbled[..]).read_result(),
            Err(EiderError::Corruption(_))
        ));
    }

    #[test]
    fn row_count_mismatch_is_detected() {
        let mut w = ChunkWriter::new(Vec::new());
        w.write_header(&["x".into()], &[LogicalType::Integer]).unwrap();
        let chunk = DataChunk::from_rows(
            &[LogicalType::Integer],
            &[vec![Value::Integer(1)], vec![Value::Integer(2)]],
        )
        .unwrap();
        w.write_chunk(&chunk).unwrap();
        // Lie about the total by finishing through a fresh writer state.
        let mut bytes = w.into_inner();
        let mut tail = BinWriter::new();
        tail.write_u64(99);
        bytes.push(super::KIND_END);
        bytes.extend_from_slice(&(tail.len() as u32).to_le_bytes());
        bytes.extend_from_slice(tail.as_bytes());
        let err = ChunkReader::new(&bytes[..]).read_result().unwrap_err();
        assert!(matches!(err, EiderError::Corruption(m) if m.contains("99")));
    }

    /// A 256-row, 6-distinct-value varchar column: the chooser must send
    /// it dictionary-coded, and the dict frame must be much smaller than
    /// the plain frame for the same data.
    fn dict_friendly_chunk(rows: usize) -> DataChunk {
        let values: Vec<Value> = (0..rows)
            .map(|i| {
                if i % 13 == 5 {
                    Value::Null
                } else {
                    Value::Varchar(format!("city_{}\0x", i % 6))
                }
            })
            .collect();
        DataChunk::from_vectors(vec![Vector::from_values(LogicalType::Varchar, &values).unwrap()])
            .unwrap()
    }

    #[test]
    fn low_cardinality_varchar_crosses_the_wire_dict_coded() {
        use eider_vector::Encoding;
        let chunk = dict_friendly_chunk(256);
        let bytes =
            encode(&["c".to_string()], &[LogicalType::Varchar], std::slice::from_ref(&chunk));

        // Compare against a stream forced plain by bypassing write_chunk's
        // encoder (frame the serialized plain vector by hand).
        let mut plain_payload = BinWriter::new();
        plain_payload.write_u32(1);
        eider_storage::serde::write_vector(&mut plain_payload, chunk.column(0));
        assert!(
            bytes.len() * 2 < plain_payload.len(),
            "dict stream {}B should be well under half of plain {}B",
            bytes.len(),
            plain_payload.len()
        );

        let result = ChunkReader::new(&bytes[..]).read_result().unwrap();
        assert_eq!(result.chunks[0].column(0).encoding(), Encoding::Dict);
        assert_eq!(result.to_rows(), chunk.to_rows());
        // NULLs and embedded NULs survived the coded trip.
        assert!(result.to_rows()[5].iter().all(Value::is_null));
        let Value::Varchar(s) = &result.to_rows()[0][0] else { panic!("expected varchar") };
        assert!(s.contains('\0'));
    }

    #[test]
    fn high_cardinality_varchar_stays_plain_on_the_wire() {
        // All-distinct strings: the chooser must decline and emit legacy
        // plain frames (first payload byte after the frame header carries
        // no encoding flag), keeping old decoders compatible.
        let values: Vec<Value> = (0..128).map(|i| Value::Varchar(format!("unique_{i}"))).collect();
        let chunk =
            DataChunk::from_vectors(vec![
                Vector::from_values(LogicalType::Varchar, &values).unwrap()
            ])
            .unwrap();
        let bytes =
            encode(&["c".to_string()], &[LogicalType::Varchar], std::slice::from_ref(&chunk));
        let result = ChunkReader::new(&bytes[..]).read_result().unwrap();
        assert!(!result.chunks[0].column(0).is_encoded());
        assert_eq!(result.to_rows(), chunk.to_rows());
    }

    /// Golden snapshot for the *dictionary* frame layout, committed
    /// alongside the plain-stream golden: compressed frames are part of
    /// the protocol surface from the moment a server can emit them.
    #[test]
    fn golden_dict_stream_bytes_are_stable() {
        let chunk = dict_friendly_chunk(128);
        let bytes = encode(&["c".to_string()], &[LogicalType::Varchar], &[chunk]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_dict_wire_stream.bin");
        if std::env::var("EIDER_BLESS_GOLDEN").is_ok() {
            std::fs::write(path, &bytes).unwrap();
        }
        let golden = std::fs::read(path).expect("committed golden dict wire snapshot");
        assert_eq!(bytes, golden, "dict wire encoding drifted from the committed golden snapshot");
    }

    /// The committed golden snapshot: the encoding of this fixed stream must
    /// never change, or deployed clients and servers stop interoperating.
    /// Regenerate deliberately with
    /// `EIDER_BLESS_GOLDEN=1 cargo test -p eider-client golden` after a
    /// *versioned* protocol change.
    #[test]
    fn golden_stream_bytes_are_stable() {
        let chunk = every_type_chunk(5);
        let names: Vec<String> = LogicalType::ALL.iter().map(|t| t.to_string()).collect();
        let bytes = encode(&names, &LogicalType::ALL, &[chunk]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_wire_stream.bin");
        if std::env::var("EIDER_BLESS_GOLDEN").is_ok() {
            std::fs::write(path, &bytes).unwrap();
        }
        let golden = std::fs::read(path).expect("committed golden wire snapshot");
        assert_eq!(bytes, golden, "wire encoding drifted from the committed golden snapshot");
    }
}
