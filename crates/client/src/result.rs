//! Query results: zero-copy chunk access and the value-at-a-time baseline.

use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value};
use std::fmt;
use std::sync::Arc;

/// A fully materialized query result.
///
/// Chunks are reference-counted: handing one to the application is an
/// `Arc` clone, not a copy — the zero-copy transfer of §5/§6. The chunk
/// layout is "exactly identical to the internal representation".
#[derive(Debug, Clone)]
pub struct MaterializedResult {
    names: Vec<String>,
    types: Vec<LogicalType>,
    chunks: Vec<Arc<DataChunk>>,
}

impl MaterializedResult {
    pub fn new(names: Vec<String>, types: Vec<LogicalType>, chunks: Vec<DataChunk>) -> Self {
        MaterializedResult { names, types, chunks: chunks.into_iter().map(Arc::new).collect() }
    }

    /// Assemble from already-shared chunks (the streaming cursor's
    /// `materialize` path hands over the `Arc`s it pulled — no copy).
    pub fn from_shared(
        names: Vec<String>,
        types: Vec<LogicalType>,
        chunks: Vec<Arc<DataChunk>>,
    ) -> Self {
        MaterializedResult { names, types, chunks }
    }

    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    pub fn column_types(&self) -> &[LogicalType] {
        &self.types
    }

    pub fn column_count(&self) -> usize {
        self.types.len()
    }

    pub fn row_count(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Zero-copy bulk access: the application receives the engine's own
    /// chunks ("the chunk is handed over without requiring copying").
    pub fn chunks(&self) -> impl Iterator<Item = Arc<DataChunk>> + '_ {
        self.chunks.iter().cloned()
    }

    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Value-at-a-time access (the slow API §5 warns about): locates the
    /// chunk on every call, exactly like `sqlite3_column_*`.
    pub fn value(&self, mut row: usize, col: usize) -> Result<Value> {
        for chunk in &self.chunks {
            if row < chunk.len() {
                if col >= chunk.column_count() {
                    return Err(EiderError::Execution(format!("no column {col}")));
                }
                return Ok(chunk.column(col).get_value(row));
            }
            row -= chunk.len();
        }
        Err(EiderError::Execution(format!("row {row} beyond result set")))
    }

    /// Open a SQLite-style stepping cursor over this result.
    pub fn cursor(&self) -> ValueCursor<'_> {
        ValueCursor { result: self, chunk_idx: 0, row_in_chunk: 0, started: false }
    }

    /// Materialize to row vectors (test convenience; copies everything).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(self.row_count());
        for chunk in &self.chunks {
            out.extend(chunk.to_rows());
        }
        out
    }

    /// First value of the first row (handy for scalar results).
    pub fn scalar(&self) -> Result<Value> {
        self.value(0, 0)
    }
}

impl fmt::Display for MaterializedResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.names.join(" | "))?;
        writeln!(f, "{}", "-".repeat(self.names.join(" | ").len().max(4)))?;
        for chunk in &self.chunks {
            write!(f, "{chunk}")?;
        }
        writeln!(f, "({} rows)", self.row_count())
    }
}

/// The value-based cursor API: `step()` advances to the next row,
/// `column(i)` fetches one value. One function call per value — the §5
/// bottleneck, kept for familiarity and benchmarked against chunks.
pub struct ValueCursor<'a> {
    result: &'a MaterializedResult,
    chunk_idx: usize,
    row_in_chunk: usize,
    started: bool,
}

impl ValueCursor<'_> {
    /// Advance to the next row; `false` when exhausted.
    pub fn step(&mut self) -> bool {
        if !self.started {
            self.started = true;
        } else {
            self.row_in_chunk += 1;
        }
        while self.chunk_idx < self.result.chunks.len() {
            if self.row_in_chunk < self.result.chunks[self.chunk_idx].len() {
                return true;
            }
            self.chunk_idx += 1;
            self.row_in_chunk = 0;
        }
        false
    }

    /// Fetch one column of the current row.
    pub fn column(&self, col: usize) -> Value {
        self.result.chunks[self.chunk_idx].column(col).get_value(self.row_in_chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> MaterializedResult {
        let c1 = DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Varchar],
            &[
                vec![Value::Integer(1), Value::Varchar("a".into())],
                vec![Value::Integer(2), Value::Varchar("b".into())],
            ],
        )
        .unwrap();
        let c2 = DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Varchar],
            &[vec![Value::Integer(3), Value::Null]],
        )
        .unwrap();
        MaterializedResult::new(
            vec!["id".into(), "name".into()],
            vec![LogicalType::Integer, LogicalType::Varchar],
            vec![c1, c2],
        )
    }

    #[test]
    fn chunk_access_is_shared_not_copied() {
        let r = result();
        let first: Vec<Arc<DataChunk>> = r.chunks().collect();
        let second: Vec<Arc<DataChunk>> = r.chunks().collect();
        assert!(Arc::ptr_eq(&first[0], &second[0]), "same allocation");
        assert_eq!(r.chunk_count(), 2);
        assert_eq!(r.row_count(), 3);
    }

    #[test]
    fn value_api_spans_chunks() {
        let r = result();
        assert_eq!(r.value(0, 0).unwrap(), Value::Integer(1));
        assert_eq!(r.value(2, 0).unwrap(), Value::Integer(3));
        assert!(r.value(2, 1).unwrap().is_null());
        assert!(r.value(3, 0).is_err());
        assert!(r.value(0, 5).is_err());
    }

    #[test]
    fn cursor_steps_through_everything() {
        let r = result();
        let mut cur = r.cursor();
        let mut ids = Vec::new();
        while cur.step() {
            ids.push(cur.column(0));
        }
        assert_eq!(ids, vec![Value::Integer(1), Value::Integer(2), Value::Integer(3)]);
        assert!(!cur.step());
    }

    #[test]
    fn display_renders() {
        let s = result().to_string();
        assert!(s.contains("id | name"));
        assert!(s.contains("(3 rows)"));
    }
}
