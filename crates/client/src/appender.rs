//! Bulk append: the application-to-DBMS direction of §5's transfer story.
//!
//! "The same is true for appending data to tables, the client application
//! can fill chunks with its data. Once filled, they are handed over to
//! DuckDB and appended to persistent storage. All APIs are built around
//! bulk value handling to prevent function call overhead from becoming a
//! bottleneck."
//!
//! The API is columnar-first: [`Appender::append_chunk`] hands whole
//! chunks over by value (no copy, no per-value calls) and the appender
//! flushes them into the table in row-group-sized bursts, so storage
//! fills whole row groups at a time. [`Appender::append_row`] is a thin
//! batching wrapper that stages rows into a chunk for you, and
//! [`ChunkBuilder`] is the typed column-at-a-time middle ground.
//! [`Appender::from_source`] drains any [`TableSource`] — a CSV file, an
//! Arrow file, anything implementing the scan contract — through the same
//! path, so bulk file ingest and application handover share one code
//! path.

use eider_catalog::TableEntry;
use eider_etl::{for_each_chunk, TableSource};
use eider_txn::table::ROW_GROUP_SIZE;
use eider_txn::Transaction;
use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value, Vector, VECTOR_SIZE};
use std::sync::Arc;

/// Chunk-granular appender bound to a table and a transaction. Chunks
/// accumulate in the appender and land in the table once a full row
/// group's worth ([`ROW_GROUP_SIZE`] rows) is pending — call
/// [`flush`](Appender::flush) (or [`finish`](Appender::finish)) to push
/// the remainder.
pub struct Appender {
    entry: Arc<TableEntry>,
    txn: Arc<Transaction>,
    /// Staging chunk for `append_row`, spilled into `pending` at vector
    /// granularity.
    row_buffer: DataChunk,
    /// Validated whole chunks awaiting the next row-group flush.
    pending: Vec<DataChunk>,
    pending_rows: usize,
    rows_appended: u64,
}

impl Appender {
    pub fn new(entry: Arc<TableEntry>, txn: Arc<Transaction>) -> Self {
        let row_buffer = DataChunk::new(&entry.column_types());
        Appender { entry, txn, row_buffer, pending: Vec::new(), pending_rows: 0, rows_appended: 0 }
    }

    /// Hand a whole application-filled chunk over — the primary entry
    /// point and the zero-copy direction: the chunk moves as one unit,
    /// no per-value calls, and is buffered (not copied) until the next
    /// row-group flush.
    pub fn append_chunk(&mut self, chunk: DataChunk) -> Result<()> {
        self.stage_row_buffer();
        self.check_not_null(&chunk)?;
        self.pending_rows += chunk.len();
        self.pending.push(chunk);
        if self.pending_rows >= ROW_GROUP_SIZE {
            self.flush()?;
        }
        Ok(())
    }

    /// Append one row; a thin batching wrapper over the columnar path
    /// (rows stage into a chunk at vector granularity).
    pub fn append_row(&mut self, values: &[Value]) -> Result<()> {
        for (i, (v, def)) in values.iter().zip(&self.entry.columns).enumerate() {
            if def.not_null && v.is_null() {
                return Err(EiderError::Constraint(format!(
                    "NOT NULL constraint violated: column \"{}\" (value {i})",
                    def.name
                )));
            }
        }
        self.row_buffer.append_row(values)?;
        if self.row_buffer.len() >= VECTOR_SIZE {
            self.stage_row_buffer();
            if self.pending_rows >= ROW_GROUP_SIZE {
                self.flush()?;
            }
        }
        Ok(())
    }

    /// A typed column-at-a-time builder for this table's schema; hand the
    /// result to [`append_chunk`](Appender::append_chunk).
    pub fn chunk_builder(&self) -> ChunkBuilder {
        ChunkBuilder::new(self.entry.column_types())
    }

    /// Drain an entire [`TableSource`] into `entry` — the shared bulk
    /// path behind CSV/Arrow file loads. Columns are cast to the table's
    /// declared types where the source's schema differs; chunks flow
    /// through the same row-group-batched appends as
    /// [`append_chunk`](Appender::append_chunk). Returns the row count.
    pub fn from_source(
        entry: Arc<TableEntry>,
        txn: Arc<Transaction>,
        source: &dyn TableSource,
    ) -> Result<u64> {
        let mut app = Appender::new(entry, txn);
        app.ingest(source)?;
        app.finish()
    }

    /// Append every chunk of `source` (see
    /// [`from_source`](Appender::from_source)).
    pub fn ingest(&mut self, source: &dyn TableSource) -> Result<()> {
        let want = self.entry.column_types();
        if source.column_types().len() != want.len() {
            return Err(EiderError::Bind(format!(
                "{} has {} columns, table \"{}\" expects {}",
                source.name(),
                source.column_types().len(),
                self.entry.name,
                want.len()
            )));
        }
        let projection: Vec<usize> = (0..want.len()).collect();
        for_each_chunk(source, &projection, |chunk| {
            let chunk = cast_chunk(chunk, &want)?;
            self.append_chunk(chunk)
        })
    }

    /// Push the pending buffer into the table.
    pub fn flush(&mut self) -> Result<()> {
        self.stage_row_buffer();
        for chunk in self.pending.drain(..) {
            self.rows_appended += chunk.len() as u64;
            self.entry.data.append_chunk(&self.txn, &chunk)?;
        }
        self.pending_rows = 0;
        Ok(())
    }

    /// Rows handed to the table so far (excludes still-pending buffers).
    pub fn rows_appended(&self) -> u64 {
        self.rows_appended
    }

    /// Flush and return the total appended row count.
    pub fn finish(mut self) -> Result<u64> {
        self.flush()?;
        Ok(self.rows_appended)
    }

    fn stage_row_buffer(&mut self) {
        if self.row_buffer.is_empty() {
            return;
        }
        let chunk =
            std::mem::replace(&mut self.row_buffer, DataChunk::new(&self.entry.column_types()));
        self.pending_rows += chunk.len();
        self.pending.push(chunk); // rows were validated on entry
    }

    fn check_not_null(&self, chunk: &DataChunk) -> Result<()> {
        for (c, def) in chunk.columns().iter().zip(&self.entry.columns) {
            if def.not_null && !c.validity().all_valid() {
                return Err(EiderError::Constraint(format!(
                    "NOT NULL constraint violated: column \"{}\"",
                    def.name
                )));
            }
        }
        Ok(())
    }
}

/// Cast a chunk's columns to the target schema where they differ.
fn cast_chunk(chunk: DataChunk, want: &[LogicalType]) -> Result<DataChunk> {
    if chunk.types() == want {
        return Ok(chunk);
    }
    let columns = chunk
        .into_columns()
        .into_iter()
        .zip(want)
        .map(|(c, &ty)| if c.logical_type() == ty { Ok(c) } else { c.cast(ty) })
        .collect::<Result<Vec<_>>>()?;
    DataChunk::from_vectors(columns)
}

/// Typed column-at-a-time chunk construction: push values down each
/// column, then [`finish`](ChunkBuilder::finish) into a [`DataChunk`] for
/// [`Appender::append_chunk`]. Columns must end up the same length.
pub struct ChunkBuilder {
    columns: Vec<Vector>,
}

impl ChunkBuilder {
    pub fn new(types: Vec<LogicalType>) -> Self {
        ChunkBuilder { columns: types.into_iter().map(Vector::new).collect() }
    }

    /// Push one typed value onto column `col` (type-checked).
    pub fn push(&mut self, col: usize, value: &Value) -> Result<()> {
        let column = self
            .columns
            .get_mut(col)
            .ok_or_else(|| EiderError::Bind(format!("chunk builder has no column {col}")))?;
        column.push_value(value)
    }

    /// Push a NULL onto column `col`.
    pub fn push_null(&mut self, col: usize) -> Result<()> {
        let column = self
            .columns
            .get_mut(col)
            .ok_or_else(|| EiderError::Bind(format!("chunk builder has no column {col}")))?;
        column.push_null();
        Ok(())
    }

    /// Rows in the (ragged-while-building) longest column.
    pub fn len(&self) -> usize {
        self.columns.iter().map(Vector::len).max().unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Assemble the chunk; every column must have the same length.
    pub fn finish(self) -> Result<DataChunk> {
        let lens: Vec<usize> = self.columns.iter().map(Vector::len).collect();
        if lens.windows(2).any(|w| w[0] != w[1]) {
            return Err(EiderError::Bind(format!(
                "chunk builder columns are ragged: lengths {lens:?}"
            )));
        }
        DataChunk::from_vectors(self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_catalog::{Catalog, ColumnDefinition};
    use eider_txn::TransactionManager;
    use eider_vector::LogicalType;

    fn setup() -> (Arc<TransactionManager>, Arc<TableEntry>) {
        let cat = Catalog::new();
        let entry = cat
            .create_table(
                "t",
                vec![
                    ColumnDefinition::new("id", LogicalType::Integer).not_null(),
                    ColumnDefinition::new("v", LogicalType::Double),
                ],
                false,
            )
            .unwrap();
        (TransactionManager::new(), entry)
    }

    #[test]
    fn rows_flush_at_row_group_granularity() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let mut app = Appender::new(Arc::clone(&entry), Arc::clone(&txn));
        for i in 0..(ROW_GROUP_SIZE + 10) {
            app.append_row(&[Value::Integer(i as i32), Value::Double(0.5)]).unwrap();
        }
        // One full row group already flushed; the tail is still pending.
        assert_eq!(entry.data.count_visible(&txn), ROW_GROUP_SIZE);
        assert_eq!(app.finish().unwrap(), (ROW_GROUP_SIZE + 10) as u64);
        assert_eq!(entry.data.count_visible(&txn), ROW_GROUP_SIZE + 10);
    }

    #[test]
    fn chunk_handover_buffers_until_flush() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let chunk = DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Double],
            &(0..100).map(|i| vec![Value::Integer(i), Value::Double(1.0)]).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut app = Appender::new(Arc::clone(&entry), Arc::clone(&txn));
        app.append_chunk(chunk).unwrap();
        // Buffered, not yet in the table.
        assert_eq!(entry.data.count_visible(&txn), 0);
        assert_eq!(app.rows_appended(), 0);
        assert_eq!(app.finish().unwrap(), 100);
        assert_eq!(entry.data.count_visible(&txn), 100);
    }

    #[test]
    fn rows_and_chunks_interleave_in_arrival_order() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let mut app = Appender::new(Arc::clone(&entry), Arc::clone(&txn));
        app.append_row(&[Value::Integer(0), Value::Double(0.0)]).unwrap();
        let chunk = DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Double],
            &[vec![Value::Integer(1), Value::Double(1.0)]],
        )
        .unwrap();
        app.append_chunk(chunk).unwrap();
        app.append_row(&[Value::Integer(2), Value::Double(2.0)]).unwrap();
        app.finish().unwrap();
        let ids: Vec<i64> = entry
            .data
            .scan_collect(&txn, &eider_txn::ScanOptions { columns: vec![0], ..Default::default() })
            .unwrap()
            .iter()
            .flat_map(|c| c.to_rows())
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        assert_eq!(ids, [0, 1, 2]);
    }

    #[test]
    fn constraints_enforced() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let mut app = Appender::new(Arc::clone(&entry), Arc::clone(&txn));
        assert!(app.append_row(&[Value::Null, Value::Double(1.0)]).is_err());
        let bad = DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Double],
            &[vec![Value::Null, Value::Double(1.0)]],
        )
        .unwrap();
        assert!(app.append_chunk(bad).is_err());
    }

    #[test]
    fn chunk_builder_is_typed_and_rectangular() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let mut app = Appender::new(Arc::clone(&entry), Arc::clone(&txn));
        let mut b = app.chunk_builder();
        b.push(0, &Value::Integer(1)).unwrap();
        b.push(1, &Value::Double(0.5)).unwrap();
        b.push(0, &Value::Integer(2)).unwrap();
        // Wrong type is rejected at push time.
        assert!(b.push(1, &Value::Varchar("x".into())).is_err());
        // Ragged columns are rejected at finish time.
        let ragged = {
            let mut b2 = app.chunk_builder();
            b2.push(0, &Value::Integer(9)).unwrap();
            b2
        };
        assert!(ragged.finish().is_err());
        b.push_null(1).unwrap();
        let chunk = b.finish().unwrap();
        app.append_chunk(chunk).unwrap();
        assert_eq!(app.finish().unwrap(), 2);
    }

    #[test]
    fn from_source_ingests_a_csv_file() {
        use eider_etl::{CsvReadOptions, CsvSource};
        use std::io::Write as _;
        let mut path = std::env::temp_dir();
        path.push(format!("eider_appender_src_{}.csv", std::process::id()));
        {
            let mut f = std::fs::File::create(&path).unwrap();
            writeln!(f, "id,v").unwrap();
            for i in 0..1000 {
                writeln!(f, "{i},{}.5", i).unwrap();
            }
        }
        let src = CsvSource::open(&path, CsvReadOptions::default()).unwrap();
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        // CSV sniffs id as BigInt; from_source casts to the table's Integer.
        let n = Appender::from_source(Arc::clone(&entry), Arc::clone(&txn), &src).unwrap();
        assert_eq!(n, 1000);
        assert_eq!(entry.data.count_visible(&txn), 1000);
        std::fs::remove_file(&path).unwrap();
    }
}
