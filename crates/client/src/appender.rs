//! Bulk append: the application-to-DBMS direction of §5's transfer story.
//!
//! "The same is true for appending data to tables, the client application
//! can fill chunks with its data. Once filled, they are handed over to
//! DuckDB and appended to persistent storage. All APIs are built around
//! bulk value handling to prevent function call overhead from becoming a
//! bottleneck."

use eider_catalog::TableEntry;
use eider_txn::Transaction;
use eider_vector::{DataChunk, EiderError, Result, Value, VECTOR_SIZE};
use std::sync::Arc;

/// Chunk-granular appender bound to a table and a transaction.
pub struct Appender {
    entry: Arc<TableEntry>,
    txn: Arc<Transaction>,
    buffer: DataChunk,
    rows_appended: u64,
}

impl Appender {
    pub fn new(entry: Arc<TableEntry>, txn: Arc<Transaction>) -> Self {
        let buffer = DataChunk::new(&entry.column_types());
        Appender { entry, txn, buffer, rows_appended: 0 }
    }

    /// Append one row; flushes automatically at chunk granularity.
    pub fn append_row(&mut self, values: &[Value]) -> Result<()> {
        for (i, (v, def)) in values.iter().zip(&self.entry.columns).enumerate() {
            if def.not_null && v.is_null() {
                return Err(EiderError::Constraint(format!(
                    "NOT NULL constraint violated: column \"{}\" (value {i})",
                    def.name
                )));
            }
        }
        self.buffer.append_row(values)?;
        if self.buffer.len() >= VECTOR_SIZE {
            self.flush()?;
        }
        Ok(())
    }

    /// Hand a whole application-filled chunk over (the zero-copy direction:
    /// no per-value calls, the chunk moves as one unit).
    pub fn append_chunk(&mut self, chunk: &DataChunk) -> Result<()> {
        self.flush()?;
        for (c, def) in chunk.columns().iter().zip(&self.entry.columns) {
            if def.not_null && !c.validity().all_valid() {
                return Err(EiderError::Constraint(format!(
                    "NOT NULL constraint violated: column \"{}\"",
                    def.name
                )));
            }
        }
        self.rows_appended += chunk.len() as u64;
        self.entry.data.append_chunk(&self.txn, chunk)
    }

    /// Flush buffered rows into the table.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let chunk = std::mem::replace(&mut self.buffer, DataChunk::new(&self.entry.column_types()));
        self.rows_appended += chunk.len() as u64;
        self.entry.data.append_chunk(&self.txn, &chunk)
    }

    pub fn rows_appended(&self) -> u64 {
        self.rows_appended
    }

    /// Flush and return the total appended row count.
    pub fn finish(mut self) -> Result<u64> {
        self.flush()?;
        Ok(self.rows_appended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_catalog::{Catalog, ColumnDefinition};
    use eider_txn::TransactionManager;
    use eider_vector::LogicalType;

    fn setup() -> (Arc<TransactionManager>, Arc<TableEntry>) {
        let cat = Catalog::new();
        let entry = cat
            .create_table(
                "t",
                vec![
                    ColumnDefinition::new("id", LogicalType::Integer).not_null(),
                    ColumnDefinition::new("v", LogicalType::Double),
                ],
                false,
            )
            .unwrap();
        (TransactionManager::new(), entry)
    }

    #[test]
    fn rows_flush_at_chunk_granularity() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let mut app = Appender::new(Arc::clone(&entry), Arc::clone(&txn));
        for i in 0..(VECTOR_SIZE + 10) {
            app.append_row(&[Value::Integer(i as i32), Value::Double(0.5)]).unwrap();
        }
        // One full chunk already flushed; remainder pending.
        assert_eq!(entry.data.count_visible(&txn), VECTOR_SIZE);
        assert_eq!(app.finish().unwrap(), (VECTOR_SIZE + 10) as u64);
        assert_eq!(entry.data.count_visible(&txn), VECTOR_SIZE + 10);
    }

    #[test]
    fn chunk_handover() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let chunk = DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Double],
            &(0..100).map(|i| vec![Value::Integer(i), Value::Double(1.0)]).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut app = Appender::new(Arc::clone(&entry), Arc::clone(&txn));
        app.append_chunk(&chunk).unwrap();
        assert_eq!(app.finish().unwrap(), 100);
    }

    #[test]
    fn constraints_enforced() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let mut app = Appender::new(Arc::clone(&entry), Arc::clone(&txn));
        assert!(app.append_row(&[Value::Null, Value::Double(1.0)]).is_err());
        let bad = DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Double],
            &[vec![Value::Null, Value::Double(1.0)]],
        )
        .unwrap();
        assert!(app.append_chunk(&bad).is_err());
    }
}
