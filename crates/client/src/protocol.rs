//! A classic client-server result-set protocol, for comparison.
//!
//! §5: "Serialization traditionally occurs due to the need to transfer a
//! result set to a client program over a network connection. Network
//! connections are byte streams, but result sets are two-dimensional
//! structures ... data transfer over a network socket to another computer
//! is limited by the available bandwidth, e.g. 1 Gbit/s."
//!
//! This module deliberately reproduces that design: a row-major,
//! length-prefixed byte stream (header with column names/types, then one
//! record per row, each value tagged), plus a bandwidth model that converts
//! byte counts into wire seconds — the closed-source client protocol the
//! paper compares against, rebuilt (DESIGN.md substitution E5).

use crate::result::MaterializedResult;
use eider_storage::serde::{
    read_value, tag_to_type, type_to_tag, write_value, BinReader, BinWriter,
};
use eider_vector::{DataChunk, EiderError, Result, VECTOR_SIZE};

/// Serialize a result set into the row-major wire format.
pub fn serialize_result(result: &MaterializedResult) -> Vec<u8> {
    let mut w = BinWriter::with_capacity(result.row_count() * 16 + 256);
    w.write_u32(result.column_count() as u32);
    for (name, &ty) in result.column_names().iter().zip(result.column_types()) {
        w.write_str(name);
        w.write_u8(type_to_tag(ty));
    }
    w.write_u64(result.row_count() as u64);
    for chunk in result.chunks() {
        for row in 0..chunk.len() {
            // Row-major: every value is individually tagged, exactly like
            // textual/binary row protocols.
            for col in 0..chunk.column_count() {
                write_value(&mut w, &chunk.column(col).get_value(row));
            }
        }
    }
    w.into_bytes()
}

/// Deserialize the wire format back into a result set (the client side).
pub fn deserialize_result(bytes: &[u8]) -> Result<MaterializedResult> {
    let mut r = BinReader::new(bytes);
    let cols = r.read_u32()? as usize;
    let mut names = Vec::with_capacity(cols);
    let mut types = Vec::with_capacity(cols);
    for _ in 0..cols {
        names.push(r.read_str()?);
        types.push(tag_to_type(r.read_u8()?)?);
    }
    let rows = r.read_u64()? as usize;
    let mut chunks = Vec::new();
    let mut chunk = DataChunk::new(&types);
    for _ in 0..rows {
        let mut row = Vec::with_capacity(cols);
        for _ in 0..cols {
            row.push(read_value(&mut r)?);
        }
        chunk.append_row(&row)?;
        if chunk.len() >= VECTOR_SIZE {
            chunks.push(std::mem::replace(&mut chunk, DataChunk::new(&types)));
        }
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    if !r.is_exhausted() {
        return Err(EiderError::Corruption("trailing bytes after result set".into()));
    }
    Ok(MaterializedResult::new(names, types, chunks))
}

/// Bandwidth model for the simulated socket.
#[derive(Debug, Clone, Copy)]
pub struct Bandwidth {
    pub bits_per_second: f64,
}

impl Bandwidth {
    /// The paper's example link: 1 Gbit/s.
    pub fn gigabit() -> Self {
        Bandwidth { bits_per_second: 1e9 }
    }

    /// Seconds on the wire for `bytes`.
    pub fn wire_seconds(&self, bytes: usize) -> f64 {
        bytes as f64 * 8.0 / self.bits_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_vector::{LogicalType, Value};

    fn result(rows: usize) -> MaterializedResult {
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::BigInt(i as i64),
                    Value::Double(i as f64 / 2.0),
                    if i % 7 == 0 { Value::Null } else { Value::Varchar(format!("row{i}")) },
                ]
            })
            .collect();
        let chunk = DataChunk::from_rows(
            &[LogicalType::BigInt, LogicalType::Double, LogicalType::Varchar],
            &data,
        )
        .unwrap();
        MaterializedResult::new(
            vec!["id".into(), "value".into(), "label".into()],
            vec![LogicalType::BigInt, LogicalType::Double, LogicalType::Varchar],
            vec![chunk],
        )
    }

    #[test]
    fn round_trip() {
        let r = result(5000);
        let bytes = serialize_result(&r);
        let back = deserialize_result(&bytes).unwrap();
        assert_eq!(back.row_count(), 5000);
        assert_eq!(back.column_names(), r.column_names());
        assert_eq!(back.to_rows(), r.to_rows());
        // Deserialization re-chunks at the standard vector size.
        assert!(back.chunk_count() >= 2);
    }

    #[test]
    fn truncated_stream_detected() {
        let r = result(100);
        let bytes = serialize_result(&r);
        assert!(deserialize_result(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn trailing_garbage_detected() {
        let r = result(10);
        let mut bytes = serialize_result(&r);
        bytes.extend_from_slice(b"junk");
        assert!(deserialize_result(&bytes).is_err());
    }

    #[test]
    fn bandwidth_model() {
        let bw = Bandwidth::gigabit();
        // 125 MB takes one second at 1 Gbit/s.
        assert!((bw.wire_seconds(125_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(bw.wire_seconds(0), 0.0);
    }

    #[test]
    fn serialized_size_is_larger_than_columnar() {
        // Row-major tagging costs: every value carries a tag byte, strings
        // a length; the protocol is strictly bigger than raw column data.
        let r = result(10_000);
        let bytes = serialize_result(&r);
        let raw: usize = r.chunks().map(|c| c.size_bytes()).sum();
        assert!(bytes.len() > raw / 4, "sanity: {} vs {}", bytes.len(), raw);
    }
}
