//! Versioned columnar table storage.
//!
//! A [`DataTable`] is a list of *row groups*; each group holds up to
//! [`ROW_GROUP_SIZE`] rows as one `Vector` per column plus MVCC metadata:
//! per-row insert/delete stamps, per-row update stamps (first-updater-wins
//! conflict detection), an undo chain of prior values for in-place updates
//! (§6), and per-column zone maps that let scans skip whole groups ("the
//! format allows to scan individual columns and skip irrelevant blocks of
//! rows during a scan").
//!
//! Stamps are interpreted by magnitude (see [`crate::manager`]): values
//! below [`TXN_ID_START`] are commit timestamps, values above are live
//! transaction ids, and `u64::MAX` on a delete stamp means "not deleted".

use crate::manager::{DeleteRecord, InsertRecord, Transaction, TXN_ID_START};
use crate::predicate::{ReadPredicate, TableFilter};
use crate::stats::{ColumnStats, TableStats};
use eider_vector::{
    DataChunk, EiderError, LogicalType, Result, SelectionVector, Value, Vector, VECTOR_SIZE,
};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Rows per row group: 60 vectors of 2048, matching DuckDB's layout.
pub const ROW_GROUP_SIZE: usize = 60 * VECTOR_SIZE;

/// Sentinel delete stamp: row is live.
const NOT_DELETED: u64 = u64::MAX;

static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// Physical position of a row: (row group index, row within group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId {
    pub group: u32,
    pub row: u32,
}

impl RowId {
    /// Pack into an i64 for transport in a BigInt column.
    pub fn encode(self) -> i64 {
        ((self.group as i64) << 32) | self.row as i64
    }

    pub fn decode(v: i64) -> RowId {
        RowId { group: (v >> 32) as u32, row: (v & 0xFFFF_FFFF) as u32 }
    }
}

/// One prior value saved by an in-place update.
#[derive(Debug)]
struct UndoEntry {
    row: u32,
    column: u32,
    prior: Value,
    /// The row's update stamp before this transaction stamped it.
    prior_stamp: u64,
    /// Live txn id while uncommitted; commit timestamp afterwards.
    ts: u64,
}

struct RowGroupInner {
    columns: Vec<Vector>,
    insert_ids: Vec<u64>,
    delete_ids: Vec<u64>,
    /// Lazily allocated: most groups are never updated.
    update_stamps: Option<Vec<u64>>,
    undo: Vec<UndoEntry>,
    /// Per column: (min, max) over all values ever present. Only widened,
    /// never narrowed, so it stays conservative w.r.t. undo reconstruction.
    zone_maps: Vec<Option<(Value, Value)>>,
}

impl RowGroupInner {
    fn new(types: &[LogicalType]) -> Self {
        RowGroupInner {
            columns: types.iter().map(|&t| Vector::with_capacity(t, 0)).collect(),
            insert_ids: Vec::new(),
            delete_ids: Vec::new(),
            update_stamps: None,
            undo: Vec::new(),
            zone_maps: vec![None; types.len()],
        }
    }

    fn len(&self) -> usize {
        self.insert_ids.len()
    }

    fn widen_zone(&mut self, column: usize, v: &Value) {
        if v.is_null() {
            return;
        }
        match &mut self.zone_maps[column] {
            Some((min, max)) => {
                if v.total_cmp(min) == std::cmp::Ordering::Less {
                    *min = v.clone();
                }
                if v.total_cmp(max) == std::cmp::Ordering::Greater {
                    *max = v.clone();
                }
            }
            slot @ None => *slot = Some((v.clone(), v.clone())),
        }
    }

    fn stamps_mut(&mut self) -> &mut Vec<u64> {
        let len = self.len();
        self.update_stamps.get_or_insert_with(|| vec![0; len])
    }

    /// Run the stats-driven encoding chooser over every column once the
    /// group is full. Encoded columns flow through scans unchanged
    /// (slice/select preserve encodings), so downstream hash, key and
    /// aggregate kernels operate on codes; an in-place update simply
    /// flattens the touched column.
    fn compress_columns(&mut self) {
        for col in &mut self.columns {
            if let Some(encoded) = col.encode_auto() {
                *col = encoded;
            }
        }
    }

    fn stamp_of(&self, row: usize) -> u64 {
        self.update_stamps.as_ref().map_or(0, |s| s[row])
    }
}

/// Is a row visible to a snapshot (`start_ts`) / transaction (`txn_id`)?
#[inline]
fn visible(insert_id: u64, delete_id: u64, start_ts: u64, txn_id: u64) -> bool {
    let inserted = insert_id == txn_id || insert_id <= start_ts;
    let deleted = delete_id == txn_id || delete_id <= start_ts;
    inserted && !deleted
}

/// Should an undo entry's prior value override the in-place value for this
/// snapshot? (Entry written after my snapshot, or by a live transaction
/// that is not me.)
#[inline]
fn undo_applies(entry_ts: u64, start_ts: u64, txn_id: u64) -> bool {
    entry_ts > start_ts && entry_ts != txn_id
}

/// What a scan should produce.
#[derive(Debug, Clone, Default)]
pub struct ScanOptions {
    /// Physical column indexes to output, in order.
    pub columns: Vec<usize>,
    /// Pushed-down filters (ANDed), evaluated snapshot-consistently and
    /// used for zone-map group skipping.
    pub filters: Vec<TableFilter>,
    /// Append a trailing BigInt column with encoded [`RowId`]s (used by
    /// UPDATE/DELETE plans).
    pub emit_row_ids: bool,
}

impl ScanOptions {
    /// Column types a scan with these options produces over `table` —
    /// the single source of truth shared by the serial scan operator,
    /// the morsel scan and the parallel planner.
    pub fn output_types(&self, table: &DataTable) -> Vec<LogicalType> {
        let mut types: Vec<LogicalType> = self.columns.iter().map(|&c| table.types()[c]).collect();
        if self.emit_row_ids {
            types.push(LogicalType::BigInt);
        }
        types
    }
}

/// Cursor state for a chunk-at-a-time scan.
///
/// A state either covers the whole table ([`DataTable::begin_scan`]) or a
/// single-group row range ([`DataTable::begin_scan_range`]), which is the
/// granularity the morsel-driven parallel executor hands to its workers.
pub struct TableScanState {
    group: usize,
    offset: usize,
    /// Bounded scans: `(group, row_end)` — the scan covers rows
    /// `[offset, row_end)` of exactly `group` and nothing else.
    bound: Option<(usize, usize)>,
    /// Zone maps are consulted once per visited group.
    zone_checked: bool,
}

/// A versioned, columnar table.
pub struct DataTable {
    id: u64,
    types: Vec<LogicalType>,
    groups: RwLock<Vec<Arc<RwLock<RowGroupInner>>>>,
    /// Bumped by every mutation that could move [`DataTable::table_stats`];
    /// tags the memoized snapshot below so planning a read-mostly table
    /// costs one atomic load + `Arc` clone instead of a metadata walk.
    stats_version: AtomicU64,
    stats_cache: RwLock<Option<(u64, Arc<TableStats>)>>,
}

impl std::fmt::Debug for DataTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataTable")
            .field("id", &self.id)
            .field("types", &self.types)
            .field("groups", &self.groups.read().len())
            .finish()
    }
}

impl DataTable {
    pub fn new(types: Vec<LogicalType>) -> Arc<Self> {
        Arc::new(DataTable {
            id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed),
            types,
            groups: RwLock::new(Vec::new()),
            stats_version: AtomicU64::new(0),
            stats_cache: RwLock::new(None),
        })
    }

    /// Invalidate the memoized [`DataTable::table_stats`] snapshot.
    fn note_mutation(&self) {
        self.stats_version.fetch_add(1, Ordering::Release);
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn types(&self) -> &[LogicalType] {
        &self.types
    }

    pub fn column_count(&self) -> usize {
        self.types.len()
    }

    pub fn row_group_count(&self) -> usize {
        self.groups.read().len()
    }

    /// Total physical rows (including dead versions).
    pub fn physical_rows(&self) -> usize {
        self.groups.read().iter().map(|g| g.read().len()).sum()
    }

    /// Append a chunk of rows, visible to `txn` immediately and to others
    /// after commit. This is the bulk-append path of §2.
    pub fn append_chunk(self: &Arc<Self>, txn: &Transaction, chunk: &DataChunk) -> Result<()> {
        if chunk.types() != self.types {
            return Err(EiderError::TypeMismatch(format!(
                "appended chunk types {:?} do not match table types {:?}",
                chunk.types(),
                self.types
            )));
        }
        self.note_mutation();
        let mut offset = 0usize;
        while offset < chunk.len() {
            // Find (or create) a group with space.
            let group_arc;
            let group_idx;
            {
                let mut groups = self.groups.write();
                if groups.is_empty() || groups.last().unwrap().read().len() >= ROW_GROUP_SIZE {
                    groups.push(Arc::new(RwLock::new(RowGroupInner::new(&self.types))));
                }
                group_idx = groups.len() - 1;
                group_arc = Arc::clone(&groups[group_idx]);
            }
            let mut g = group_arc.write();
            let start = g.len();
            let space = ROW_GROUP_SIZE - start;
            let count = space.min(chunk.len() - offset);
            if count == 0 {
                continue; // another thread filled the group; retry
            }
            for (c, col) in g.columns.iter_mut().enumerate() {
                col.append_from(chunk.column(c), offset, count)?;
            }
            g.insert_ids.extend(std::iter::repeat_n(txn.id(), count));
            g.delete_ids.extend(std::iter::repeat_n(NOT_DELETED, count));
            if let Some(stamps) = g.update_stamps.as_mut() {
                stamps.extend(std::iter::repeat_n(0u64, count));
            }
            for c in 0..self.types.len() {
                for row in offset..offset + count {
                    let v = chunk.column(c).get_value(row);
                    g.widen_zone(c, &v);
                }
            }
            if g.len() >= ROW_GROUP_SIZE {
                g.compress_columns();
            }
            drop(g);
            let mut state = txn.state.lock();
            state.inserts.push(InsertRecord {
                table: Arc::clone(self),
                group: group_idx,
                start,
                count,
            });
            // Inserted values participate in conflict detection (phantoms).
            for c in 0..self.types.len() {
                for row in offset..offset + count {
                    let v = chunk.column(c).get_value(row);
                    state.summary.merge_value(self.id, c, &v);
                }
            }
            drop(state);
            offset += count;
        }
        Ok(())
    }

    /// Begin a scan; records the read predicates on the transaction.
    pub fn begin_scan(&self, txn: &Transaction, opts: &ScanOptions) -> TableScanState {
        self.record_scan_read(txn, opts);
        TableScanState { group: 0, offset: 0, bound: None, zone_checked: false }
    }

    /// Record the read predicates a scan with `opts` implies, without
    /// creating a cursor. The parallel executor calls this once per scan
    /// while its workers cursor over row ranges via
    /// [`DataTable::begin_scan_range`] (which deliberately does *not*
    /// record, to avoid one predicate per morsel).
    pub fn record_scan_read(&self, txn: &Transaction, opts: &ScanOptions) {
        if opts.filters.is_empty() {
            txn.record_read(ReadPredicate::whole_table(self.id));
        } else {
            for f in &opts.filters {
                txn.record_read(ReadPredicate::from_filter(self.id, f));
            }
        }
    }

    /// Begin a bounded scan over rows `[row_begin, row_end)` of one row
    /// group — a *morsel*. Visibility, undo reconstruction, filters and
    /// zone maps behave exactly as in a full scan restricted to that
    /// window. Does not record read predicates; see
    /// [`DataTable::record_scan_read`].
    pub fn begin_scan_range(
        &self,
        group: usize,
        row_begin: usize,
        row_end: usize,
    ) -> TableScanState {
        TableScanState {
            group,
            offset: row_begin,
            bound: Some((group, row_end)),
            zone_checked: false,
        }
    }

    /// Per-group *physical* row counts (dead and uncommitted versions
    /// included) — the morsel source's work list; visibility is applied
    /// later, inside [`DataTable::scan_next`]. Groups appended after this
    /// snapshot are simply not part of the scan, matching what a serial
    /// scan racing the same appends would observe under snapshot
    /// isolation.
    pub fn group_sizes(&self) -> Vec<usize> {
        self.groups.read().iter().map(|g| g.read().len()).collect()
    }

    /// Conservative group-level pruning test: `true` when `group`'s zone
    /// maps prove no row can satisfy `filters` — the same test
    /// [`DataTable::scan_next`] applies per cursor, exposed so the
    /// morsel-driven scheduler can drop whole groups from its work list
    /// before any worker claims a morsel in them. Groups with undo
    /// entries are never pruned (zone maps only widen, but pruning here
    /// mirrors the serial scan's belt-and-braces rule exactly).
    pub fn group_prunable(&self, group: usize, filters: &[TableFilter]) -> bool {
        if filters.is_empty() {
            return false;
        }
        let group_arc = {
            let groups = self.groups.read();
            match groups.get(group) {
                Some(g) => Arc::clone(g),
                None => return false,
            }
        };
        let g = group_arc.read();
        if !g.undo.is_empty() || g.len() == 0 {
            return false;
        }
        filters.iter().any(|f| match &g.zone_maps[f.column] {
            Some((min, max)) => !f.zone_may_match(min, max),
            None => true, // all-NULL column never matches a filter
        })
    }

    /// Produce the next chunk (≤ [`VECTOR_SIZE`] rows) of the scan, or
    /// `None` when exhausted. Rows are reconstructed for the transaction's
    /// snapshot: stamps decide visibility and undo chains roll values back.
    pub fn scan_next(
        &self,
        txn: &Transaction,
        opts: &ScanOptions,
        state: &mut TableScanState,
    ) -> Result<Option<DataChunk>> {
        loop {
            if let Some((bound_group, _)) = state.bound {
                if state.group != bound_group {
                    return Ok(None);
                }
            }
            let group_arc = {
                let groups = self.groups.read();
                match groups.get(state.group) {
                    Some(g) => Arc::clone(g),
                    None => return Ok(None),
                }
            };
            let g = group_arc.read();
            if !state.zone_checked && !opts.filters.is_empty() && g.undo.is_empty() {
                // Zone-map skipping for the whole group. Groups with undo
                // entries still pass (maps only widen, so this is already
                // conservative; the check is just belt-and-braces).
                let skip = opts.filters.iter().any(|f| match &g.zone_maps[f.column] {
                    Some((min, max)) => !f.zone_may_match(min, max),
                    None => g.len() > 0, // all-NULL column never matches
                });
                if skip && g.len() > 0 {
                    drop(g);
                    state.group += 1;
                    state.offset = 0;
                    state.zone_checked = false;
                    continue;
                }
            }
            state.zone_checked = true;
            let group_end = match state.bound {
                Some((_, row_end)) => row_end.min(g.len()),
                None => g.len(),
            };
            if state.offset >= group_end {
                drop(g);
                state.group += 1;
                state.offset = 0;
                state.zone_checked = false;
                continue;
            }
            let lo = state.offset;
            let hi = (lo + VECTOR_SIZE).min(group_end);
            state.offset = hi;

            // 1. Visibility. Cold windows — every row committed before
            // this snapshot, nothing ever deleted, the analytical common
            // case — are recognized with two branch-free sweeps; only
            // windows with in-flight or undone rows take the per-row walk.
            let all_visible = g.insert_ids[lo..hi].iter().all(|&id| id <= txn.start_ts())
                && g.delete_ids[lo..hi].iter().all(|&id| id == NOT_DELETED);
            let mut sel: Vec<u32> = Vec::with_capacity(hi - lo);
            if all_visible {
                sel.extend(0..(hi - lo) as u32);
            } else {
                for row in lo..hi {
                    if visible(g.insert_ids[row], g.delete_ids[row], txn.start_ts(), txn.id()) {
                        sel.push((row - lo) as u32);
                    }
                }
            }
            if sel.is_empty() {
                continue;
            }

            // 2. Materialize the window of every needed column and apply
            //    undo overrides for this snapshot.
            let mut needed: Vec<usize> = opts.columns.clone();
            for f in &opts.filters {
                if !needed.contains(&f.column) {
                    needed.push(f.column);
                }
            }
            let mut window: Vec<(usize, Vector)> = Vec::with_capacity(needed.len());
            for &c in &needed {
                let mut vec = g.columns[c].slice(lo, hi - lo);
                for entry in g.undo.iter().rev() {
                    if entry.column as usize == c
                        && (entry.row as usize) >= lo
                        && (entry.row as usize) < hi
                        && undo_applies(entry.ts, txn.start_ts(), txn.id())
                    {
                        vec.set_value(entry.row as usize - lo, &entry.prior)?;
                    }
                }
                window.push((c, vec));
            }
            let col_vec = |c: usize| -> &Vector {
                &window.iter().find(|(idx, _)| *idx == c).expect("materialized").1
            };

            // 3. Filters refine the selection.
            for f in &opts.filters {
                f.filter_vector(col_vec(f.column), &mut sel);
                if sel.is_empty() {
                    break;
                }
            }
            if sel.is_empty() {
                continue;
            }

            // 4. Output. When every row of the window survived (fully
            // visible, filters dropped nothing — the common case on cold
            // analytical data) the sliced windows ARE the output: skip the
            // gather, which would copy every string a second time.
            let distinct_columns =
                opts.columns.iter().enumerate().all(|(i, c)| !opts.columns[..i].contains(c));
            let full_window = sel.len() == hi - lo && distinct_columns;
            let mut out: Vec<Vector> = Vec::with_capacity(opts.columns.len() + 1);
            if full_window {
                for &c in &opts.columns {
                    let (_, vec) =
                        window.iter_mut().find(|(idx, _)| *idx == c).expect("materialized");
                    out.push(std::mem::replace(vec, Vector::new(LogicalType::Boolean)));
                }
            } else {
                let selvec = SelectionVector::from_indexes(sel.clone());
                for &c in &opts.columns {
                    out.push(col_vec(c).select(&selvec));
                }
            }
            if opts.emit_row_ids {
                let mut ids = Vector::with_capacity(LogicalType::BigInt, sel.len());
                for &rel in &sel {
                    let rid = RowId { group: state.group as u32, row: (lo + rel as usize) as u32 };
                    ids.push_value(&Value::BigInt(rid.encode()))?;
                }
                out.push(ids);
            }
            return Ok(Some(DataChunk::from_vectors(out)?));
        }
    }

    /// Convenience: run a whole scan to completion.
    pub fn scan_collect(&self, txn: &Transaction, opts: &ScanOptions) -> Result<Vec<DataChunk>> {
        let mut state = self.begin_scan(txn, opts);
        let mut chunks = Vec::new();
        while let Some(chunk) = self.scan_next(txn, opts, &mut state)? {
            chunks.push(chunk);
        }
        Ok(chunks)
    }

    /// Number of rows visible to `txn`.
    pub fn count_visible(&self, txn: &Transaction) -> usize {
        let groups = self.groups.read();
        let mut count = 0;
        for group in groups.iter() {
            let g = group.read();
            for row in 0..g.len() {
                if visible(g.insert_ids[row], g.delete_ids[row], txn.start_ts(), txn.id()) {
                    count += 1;
                }
            }
        }
        count
    }

    /// In-place update of one column for the given rows (the §2 bulk-update
    /// path: `UPDATE t SET d = NULL WHERE d = -999` arrives here as row ids
    /// plus a vector of new values for the single changed column — other
    /// columns are untouched). First-updater-wins: a row concurrently
    /// updated or deleted aborts this transaction with `Conflict`.
    pub fn update_rows(
        self: &Arc<Self>,
        txn: &Transaction,
        rows: &[RowId],
        column: usize,
        new_values: &Vector,
    ) -> Result<usize> {
        if new_values.len() != rows.len() {
            return Err(EiderError::Internal("update_rows: value count != row count".into()));
        }
        if column >= self.types.len() {
            return Err(EiderError::Internal(format!("no column {column}")));
        }
        self.note_mutation();
        let mut updated = 0usize;
        let mut i = 0usize;
        while i < rows.len() {
            let group_idx = rows[i].group;
            let mut j = i;
            while j < rows.len() && rows[j].group == group_idx {
                j += 1;
            }
            let group_arc = {
                let groups = self.groups.read();
                Arc::clone(groups.get(group_idx as usize).ok_or_else(|| {
                    EiderError::Internal(format!("row group {group_idx} out of range"))
                })?)
            };
            let mut g = group_arc.write();
            // Conflict-check the whole batch first so we fail before
            // mutating anything in this group.
            for rid in &rows[i..j] {
                let row = rid.row as usize;
                if row >= g.len() {
                    return Err(EiderError::Internal(format!("row {row} out of range")));
                }
                let del = g.delete_ids[row];
                if del != NOT_DELETED && (del == txn.id() || del > txn.start_ts()) {
                    return Err(EiderError::Conflict(
                        "row was deleted by a concurrent transaction".into(),
                    ));
                }
                let stamp = g.stamp_of(row);
                if stamp != txn.id() && stamp > txn.start_ts() {
                    return Err(EiderError::Conflict(
                        "row was updated by a concurrent transaction (first-updater-wins)".into(),
                    ));
                }
            }
            let mut state = txn.state.lock();
            for (k, rid) in rows[i..j].iter().enumerate() {
                let row = rid.row as usize;
                let prior = g.columns[column].get_value(row);
                let prior_stamp = g.stamp_of(row);
                g.stamps_mut()[row] = txn.id();
                let new_v = new_values.get_value(i + k);
                g.columns[column].set_value(row, &new_v)?;
                g.widen_zone(column, &new_v);
                g.undo.push(UndoEntry {
                    row: rid.row,
                    column: column as u32,
                    prior: prior.clone(),
                    prior_stamp,
                    ts: txn.id(),
                });
                state.summary.merge_value(self.id, column, &prior);
                state.summary.merge_value(self.id, column, &new_v);
                updated += 1;
            }
            state.note_updated_group(self, group_idx as usize);
            drop(state);
            drop(g);
            i = j;
        }
        Ok(updated)
    }

    /// Delete rows (§2 bulk deletes). First-updater-wins conflicts apply.
    pub fn delete_rows(self: &Arc<Self>, txn: &Transaction, rows: &[RowId]) -> Result<usize> {
        self.note_mutation();
        let mut deleted = 0usize;
        let mut i = 0usize;
        while i < rows.len() {
            let group_idx = rows[i].group;
            let mut j = i;
            while j < rows.len() && rows[j].group == group_idx {
                j += 1;
            }
            let group_arc = {
                let groups = self.groups.read();
                Arc::clone(groups.get(group_idx as usize).ok_or_else(|| {
                    EiderError::Internal(format!("row group {group_idx} out of range"))
                })?)
            };
            let mut g = group_arc.write();
            for rid in &rows[i..j] {
                let row = rid.row as usize;
                let del = g.delete_ids[row];
                if del == txn.id() {
                    continue; // idempotent within the transaction
                }
                if del != NOT_DELETED && del > txn.start_ts() {
                    return Err(EiderError::Conflict(
                        "row was deleted by a concurrent transaction".into(),
                    ));
                }
                let stamp = g.stamp_of(row);
                if stamp != txn.id() && stamp > txn.start_ts() {
                    return Err(EiderError::Conflict(
                        "row was updated by a concurrent transaction".into(),
                    ));
                }
            }
            let mut batch_rows = Vec::with_capacity(j - i);
            let mut state = txn.state.lock();
            for rid in &rows[i..j] {
                let row = rid.row as usize;
                if g.delete_ids[row] == txn.id() {
                    continue;
                }
                g.delete_ids[row] = txn.id();
                batch_rows.push(rid.row);
                // Deleted rows' values affect membership of any predicate.
                for c in 0..self.types.len() {
                    let v = g.columns[c].get_value(row);
                    state.summary.merge_value(self.id, c, &v);
                }
                deleted += 1;
            }
            if !batch_rows.is_empty() {
                state.deletes.push(DeleteRecord {
                    table: Arc::clone(self),
                    group: group_idx as usize,
                    rows: batch_rows,
                });
            }
            drop(state);
            drop(g);
            i = j;
        }
        Ok(deleted)
    }

    // ---- commit / rollback hooks (called by the transaction manager) ----

    pub(crate) fn finalize_insert(&self, group: usize, start: usize, count: usize, commit_ts: u64) {
        let group_arc = Arc::clone(&self.groups.read()[group]);
        let mut g = group_arc.write();
        for row in start..start + count {
            g.insert_ids[row] = commit_ts;
        }
    }

    pub(crate) fn invalidate_insert(&self, group: usize, start: usize, count: usize) {
        // Rolled-back inserts keep their (dead, unique) txn id in
        // insert_ids, which no snapshot ever matches; mark them deleted at
        // ts 0 as well so vacuum can reclaim them.
        self.note_mutation();
        let group_arc = Arc::clone(&self.groups.read()[group]);
        let mut g = group_arc.write();
        for row in start..start + count {
            g.delete_ids[row] = 0;
        }
    }

    pub(crate) fn finalize_updates(&self, group: usize, txn_id: u64, commit_ts: u64) {
        let group_arc = Arc::clone(&self.groups.read()[group]);
        let mut g = group_arc.write();
        let mut rows = Vec::new();
        for entry in g.undo.iter_mut() {
            if entry.ts == txn_id {
                entry.ts = commit_ts;
                rows.push(entry.row as usize);
            }
        }
        let stamps = g.stamps_mut();
        for row in rows {
            if stamps[row] == txn_id {
                stamps[row] = commit_ts;
            }
        }
    }

    pub(crate) fn rollback_updates(&self, group: usize, txn_id: u64) {
        self.note_mutation();
        let group_arc = Arc::clone(&self.groups.read()[group]);
        let mut g = group_arc.write();
        // Walk newest-to-oldest restoring prior values and stamps; the
        // final restoration for a row is its oldest entry, i.e. the state
        // at transaction start.
        let mut i = g.undo.len();
        while i > 0 {
            i -= 1;
            if g.undo[i].ts == txn_id {
                let row = g.undo[i].row as usize;
                let col = g.undo[i].column as usize;
                let prior = g.undo[i].prior.clone();
                let prior_stamp = g.undo[i].prior_stamp;
                let _ = g.columns[col].set_value(row, &prior);
                g.stamps_mut()[row] = prior_stamp;
                g.undo.remove(i);
            }
        }
    }

    pub(crate) fn finalize_delete(&self, group: usize, rows: &[u32], commit_ts: u64) {
        let group_arc = Arc::clone(&self.groups.read()[group]);
        let mut g = group_arc.write();
        for &row in rows {
            g.delete_ids[row as usize] = commit_ts;
        }
    }

    pub(crate) fn rollback_delete(&self, group: usize, rows: &[u32]) {
        let group_arc = Arc::clone(&self.groups.read()[group]);
        let mut g = group_arc.write();
        for &row in rows {
            g.delete_ids[row as usize] = NOT_DELETED;
        }
    }

    /// Drop undo entries no snapshot older than `horizon` can need.
    /// Returns the number reclaimed.
    pub(crate) fn vacuum_versions(&self, horizon: u64) -> usize {
        let groups: Vec<_> = self.groups.read().iter().cloned().collect();
        let mut reclaimed = 0;
        for group in groups {
            let mut g = group.write();
            let before = g.undo.len();
            g.undo.retain(|e| !(e.ts < TXN_ID_START && e.ts <= horizon));
            reclaimed += before - g.undo.len();
        }
        reclaimed
    }

    /// Total undo entries currently held (test/diagnostic handle).
    pub fn undo_len(&self) -> usize {
        self.groups.read().iter().map(|g| g.read().undo.len()).sum()
    }

    /// Zone map of a column in a group, if any (test/diagnostic handle).
    pub fn zone_map(&self, group: usize, column: usize) -> Option<(Value, Value)> {
        let groups = self.groups.read();
        let g = groups.get(group)?.read();
        g.zone_maps.get(column)?.clone()
    }

    /// On-demand statistics for the cost-based optimizer.
    ///
    /// Row count is the physical count (dead versions included — an upper
    /// bound on any snapshot). Min/max merge the per-group zone maps.
    /// Distinct estimates sum per-group evidence: the encoding chooser's
    /// dictionary size or run count where a column is encoded, the
    /// zone-map width for integer columns, and the group length otherwise
    /// — each clamped to the group's rows, the sum clamped to the table's.
    /// Because zone maps only widen and physical rows only grow, the
    /// estimates stay conservative across appends, deletes and rollbacks.
    ///
    /// The snapshot is memoized against `note_mutation`'s
    /// version counter: planning over a read-mostly table costs one atomic
    /// load and an `Arc` clone, not a metadata walk per estimate. A
    /// mutation racing the recompute can at worst tag slightly *newer*
    /// stats with the older version — still a valid conservative snapshot.
    pub fn table_stats(&self) -> Arc<TableStats> {
        let version = self.stats_version.load(Ordering::Acquire);
        if let Some((v, stats)) = &*self.stats_cache.read() {
            if *v == version {
                return Arc::clone(stats);
            }
        }
        let stats = Arc::new(self.compute_stats());
        *self.stats_cache.write() = Some((version, Arc::clone(&stats)));
        stats
    }

    fn compute_stats(&self) -> TableStats {
        let groups = self.groups.read();
        let mut row_count = 0u64;
        let mut columns = vec![ColumnStats::default(); self.types.len()];
        for group in groups.iter() {
            let g = group.read();
            let rows = g.len() as u64;
            row_count += rows;
            for (c, stat) in columns.iter_mut().enumerate() {
                if let Some((lo, hi)) = &g.zone_maps[c] {
                    match &mut stat.min {
                        Some(m) if lo.total_cmp(m) != std::cmp::Ordering::Less => {}
                        slot => *slot = Some(lo.clone()),
                    }
                    match &mut stat.max {
                        Some(m) if hi.total_cmp(m) != std::cmp::Ordering::Greater => {}
                        slot => *slot = Some(hi.clone()),
                    }
                }
                let ndv = g.columns[c]
                    .distinct_estimate()
                    .or_else(|| match &g.zone_maps[c] {
                        Some((lo, hi)) if self.types[c].is_integral() => {
                            let (lo, hi) = (lo.as_i64()?, hi.as_i64()?);
                            Some(hi.saturating_sub(lo).unsigned_abs().saturating_add(1))
                        }
                        _ => None,
                    })
                    .unwrap_or(rows);
                stat.distinct = stat.distinct.saturating_add(ndv.min(rows));
            }
        }
        for stat in &mut columns {
            stat.distinct = stat.distinct.min(row_count);
        }
        TableStats { row_count, columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::TransactionManager;
    use crate::predicate::CmpOp;

    fn int_table() -> Arc<DataTable> {
        DataTable::new(vec![LogicalType::Integer, LogicalType::Varchar])
    }

    fn chunk(vals: &[(i32, &str)]) -> DataChunk {
        DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Varchar],
            &vals
                .iter()
                .map(|(i, s)| vec![Value::Integer(*i), Value::Varchar((*s).into())])
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn all_ints(table: &Arc<DataTable>, txn: &Transaction) -> Vec<i32> {
        let opts = ScanOptions { columns: vec![0], ..Default::default() };
        let mut out = Vec::new();
        for chunk in table.scan_collect(txn, &opts).unwrap() {
            for row in 0..chunk.len() {
                match chunk.row_values(row)[0] {
                    Value::Integer(v) => out.push(v),
                    ref other => panic!("unexpected {other:?}"),
                }
            }
        }
        out
    }

    #[test]
    fn own_writes_visible_before_commit() {
        let mgr = TransactionManager::new();
        let table = int_table();
        let txn = mgr.begin();
        table.append_chunk(&txn, &chunk(&[(1, "a"), (2, "b")])).unwrap();
        assert_eq!(all_ints(&table, &txn), vec![1, 2]);
        // Another transaction sees nothing yet.
        let other = mgr.begin();
        assert_eq!(all_ints(&table, &other), Vec::<i32>::new());
        txn.commit().unwrap();
        // A *new* snapshot sees the rows; the old one still does not.
        assert_eq!(all_ints(&table, &other), Vec::<i32>::new());
        let fresh = mgr.begin();
        assert_eq!(all_ints(&table, &fresh), vec![1, 2]);
    }

    #[test]
    fn rolled_back_insert_never_visible() {
        let mgr = TransactionManager::new();
        let table = int_table();
        let txn = mgr.begin();
        table.append_chunk(&txn, &chunk(&[(7, "x")])).unwrap();
        txn.rollback().unwrap();
        let fresh = mgr.begin();
        assert_eq!(all_ints(&table, &fresh), Vec::<i32>::new());
    }

    #[test]
    fn snapshot_isolation_for_updates() {
        let mgr = TransactionManager::new();
        let table = int_table();
        let setup = mgr.begin();
        table.append_chunk(&setup, &chunk(&[(10, "a"), (20, "b")])).unwrap();
        setup.commit().unwrap();

        let reader = mgr.begin(); // snapshot before the update
        let writer = mgr.begin();
        let rows = [RowId { group: 0, row: 0 }];
        let newv = Vector::from_values(LogicalType::Integer, &[Value::Integer(99)]).unwrap();
        table.update_rows(&writer, &rows, 0, &newv).unwrap();
        // Writer sees its own update; reader sees the old value.
        assert_eq!(all_ints(&table, &writer), vec![99, 20]);
        assert_eq!(all_ints(&table, &reader), vec![10, 20]);
        writer.commit().unwrap();
        // Reader's snapshot still predates the commit.
        assert_eq!(all_ints(&table, &reader), vec![10, 20]);
        let fresh = mgr.begin();
        assert_eq!(all_ints(&table, &fresh), vec![99, 20]);
    }

    #[test]
    fn update_rollback_restores_value_and_stamp() {
        let mgr = TransactionManager::new();
        let table = int_table();
        let setup = mgr.begin();
        table.append_chunk(&setup, &chunk(&[(5, "a")])).unwrap();
        setup.commit().unwrap();

        let t = mgr.begin();
        let rows = [RowId { group: 0, row: 0 }];
        let v1 = Vector::from_values(LogicalType::Integer, &[Value::Integer(6)]).unwrap();
        let v2 = Vector::from_values(LogicalType::Integer, &[Value::Integer(7)]).unwrap();
        table.update_rows(&t, &rows, 0, &v1).unwrap();
        table.update_rows(&t, &rows, 0, &v2).unwrap();
        assert_eq!(all_ints(&table, &t), vec![7]);
        t.rollback().unwrap();
        let fresh = mgr.begin();
        assert_eq!(all_ints(&table, &fresh), vec![5]);
        assert_eq!(table.undo_len(), 0);
        // After rollback another transaction can update the row freely.
        let t2 = mgr.begin();
        table.update_rows(&t2, &rows, 0, &v1).unwrap();
        t2.commit().unwrap();
    }

    #[test]
    fn first_updater_wins() {
        let mgr = TransactionManager::new();
        let table = int_table();
        let setup = mgr.begin();
        table.append_chunk(&setup, &chunk(&[(1, "a")])).unwrap();
        setup.commit().unwrap();

        let t1 = mgr.begin();
        let t2 = mgr.begin();
        let rows = [RowId { group: 0, row: 0 }];
        let v = Vector::from_values(LogicalType::Integer, &[Value::Integer(2)]).unwrap();
        table.update_rows(&t1, &rows, 0, &v).unwrap();
        // Second live updater must abort.
        let err = table.update_rows(&t2, &rows, 0, &v).unwrap_err();
        assert!(err.is_transient(), "expected Conflict, got {err}");
        drop(t2);
        t1.commit().unwrap();
        // A transaction whose snapshot predates t1's commit also conflicts.
        let t3 = mgr.begin();
        assert_eq!(all_ints(&table, &t3), vec![2]);
        let t4_snapshot_pre = {
            // start a txn, then commit another update, then try updating
            let t4 = mgr.begin();
            let t5 = mgr.begin();
            table.update_rows(&t5, &rows, 0, &v).unwrap();
            t5.commit().unwrap();
            table.update_rows(&t4, &rows, 0, &v).unwrap_err()
        };
        assert!(t4_snapshot_pre.is_transient());
    }

    #[test]
    fn delete_visibility_and_conflicts() {
        let mgr = TransactionManager::new();
        let table = int_table();
        let setup = mgr.begin();
        table.append_chunk(&setup, &chunk(&[(1, "a"), (2, "b"), (3, "c")])).unwrap();
        setup.commit().unwrap();

        let reader = mgr.begin();
        let deleter = mgr.begin();
        let rows = [RowId { group: 0, row: 1 }];
        assert_eq!(table.delete_rows(&deleter, &rows).unwrap(), 1);
        assert_eq!(all_ints(&table, &deleter), vec![1, 3]);
        assert_eq!(all_ints(&table, &reader), vec![1, 2, 3]);
        // Concurrent delete of the same row conflicts.
        let other = mgr.begin();
        assert!(table.delete_rows(&other, &rows).unwrap_err().is_transient());
        deleter.commit().unwrap();
        let fresh = mgr.begin();
        assert_eq!(all_ints(&table, &fresh), vec![1, 3]);
        assert_eq!(table.count_visible(&fresh), 2);
    }

    #[test]
    fn delete_then_update_conflicts() {
        let mgr = TransactionManager::new();
        let table = int_table();
        let setup = mgr.begin();
        table.append_chunk(&setup, &chunk(&[(1, "a")])).unwrap();
        setup.commit().unwrap();
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        let rows = [RowId { group: 0, row: 0 }];
        table.delete_rows(&t1, &rows).unwrap();
        let v = Vector::from_values(LogicalType::Integer, &[Value::Integer(9)]).unwrap();
        assert!(table.update_rows(&t2, &rows, 0, &v).unwrap_err().is_transient());
    }

    #[test]
    fn filters_and_zone_maps() {
        let mgr = TransactionManager::new();
        let table = int_table();
        let setup = mgr.begin();
        let rows: Vec<(i32, &str)> = (0..1000).map(|i| (i, "v")).collect();
        table.append_chunk(&setup, &chunk(&rows)).unwrap();
        setup.commit().unwrap();
        let txn = mgr.begin();
        let opts = ScanOptions {
            columns: vec![0],
            filters: vec![TableFilter::new(0, CmpOp::GtEq, Value::Integer(995))],
            ..Default::default()
        };
        let chunks = table.scan_collect(&txn, &opts).unwrap();
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 5);
        // Zone map reflects data.
        let (min, max) = table.zone_map(0, 0).unwrap();
        assert_eq!(min, Value::Integer(0));
        assert_eq!(max, Value::Integer(999));
        // A filter outside the zone scans nothing.
        let opts2 = ScanOptions {
            columns: vec![0],
            filters: vec![TableFilter::new(0, CmpOp::Gt, Value::Integer(100_000))],
            ..Default::default()
        };
        assert!(table.scan_collect(&txn, &opts2).unwrap().is_empty());
    }

    #[test]
    fn row_ids_round_trip_through_scan() {
        let mgr = TransactionManager::new();
        let table = int_table();
        let setup = mgr.begin();
        table.append_chunk(&setup, &chunk(&[(1, "a"), (2, "b")])).unwrap();
        setup.commit().unwrap();
        let txn = mgr.begin();
        let opts = ScanOptions { columns: vec![0], emit_row_ids: true, ..Default::default() };
        let chunks = table.scan_collect(&txn, &opts).unwrap();
        assert_eq!(chunks[0].column_count(), 2);
        let rid = match chunks[0].row_values(1)[1] {
            Value::BigInt(v) => RowId::decode(v),
            ref o => panic!("{o:?}"),
        };
        assert_eq!(rid, RowId { group: 0, row: 1 });
    }

    #[test]
    fn serializability_write_skew_detected() {
        // Classic write skew: t1 reads column range then writes; t2 does
        // the same concurrently. Snapshot isolation would allow both;
        // validation must abort the second committer.
        let mgr = TransactionManager::new();
        let table = int_table();
        let setup = mgr.begin();
        table.append_chunk(&setup, &chunk(&[(10, "a"), (20, "b")])).unwrap();
        setup.commit().unwrap();

        let t1 = mgr.begin();
        let t2 = mgr.begin();
        let opts = ScanOptions {
            columns: vec![0],
            filters: vec![TableFilter::new(0, CmpOp::Lt, Value::Integer(100))],
            ..Default::default()
        };
        let _ = table.scan_collect(&t1, &opts).unwrap();
        let _ = table.scan_collect(&t2, &opts).unwrap();
        let v1 = Vector::from_values(LogicalType::Integer, &[Value::Integer(30)]).unwrap();
        let v2 = Vector::from_values(LogicalType::Integer, &[Value::Integer(40)]).unwrap();
        table.update_rows(&t1, &[RowId { group: 0, row: 0 }], 0, &v1).unwrap();
        table.update_rows(&t2, &[RowId { group: 0, row: 1 }], 0, &v2).unwrap();
        t1.commit().unwrap();
        let err = t2.commit().unwrap_err();
        assert!(err.is_transient(), "write skew must be detected: {err}");
    }

    #[test]
    fn disjoint_predicates_do_not_conflict() {
        let mgr = TransactionManager::new();
        let table = int_table();
        let setup = mgr.begin();
        table.append_chunk(&setup, &chunk(&[(10, "a"), (2000, "b")])).unwrap();
        setup.commit().unwrap();

        let t1 = mgr.begin();
        let t2 = mgr.begin();
        // t1 reads small values and updates a small row; t2 reads large
        // values and updates a large row: serializable, must both commit.
        let small = ScanOptions {
            columns: vec![0],
            filters: vec![TableFilter::new(0, CmpOp::Lt, Value::Integer(100))],
            ..Default::default()
        };
        let large = ScanOptions {
            columns: vec![0],
            filters: vec![TableFilter::new(0, CmpOp::Gt, Value::Integer(1000))],
            ..Default::default()
        };
        let _ = table.scan_collect(&t1, &small).unwrap();
        let _ = table.scan_collect(&t2, &large).unwrap();
        let v1 = Vector::from_values(LogicalType::Integer, &[Value::Integer(11)]).unwrap();
        let v2 = Vector::from_values(LogicalType::Integer, &[Value::Integer(2001)]).unwrap();
        table.update_rows(&t1, &[RowId { group: 0, row: 0 }], 0, &v1).unwrap();
        table.update_rows(&t2, &[RowId { group: 0, row: 1 }], 0, &v2).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();
    }

    #[test]
    fn garbage_collection_reclaims_versions() {
        let mgr = TransactionManager::new();
        let table = int_table();
        mgr.register_table(&table);
        let setup = mgr.begin();
        table.append_chunk(&setup, &chunk(&[(1, "a")])).unwrap();
        setup.commit().unwrap();
        let rows = [RowId { group: 0, row: 0 }];
        for i in 0..5 {
            let t = mgr.begin();
            let v = Vector::from_values(LogicalType::Integer, &[Value::Integer(i + 10)]).unwrap();
            table.update_rows(&t, &rows, 0, &v).unwrap();
            t.commit().unwrap();
        }
        assert_eq!(table.undo_len(), 5);
        // With no active transactions everything is reclaimable.
        let reclaimed = mgr.garbage_collect();
        assert_eq!(reclaimed, 5);
        assert_eq!(table.undo_len(), 0);
        // An old open snapshot pins versions.
        let pin = mgr.begin();
        let t = mgr.begin();
        let v = Vector::from_values(LogicalType::Integer, &[Value::Integer(99)]).unwrap();
        table.update_rows(&t, &rows, 0, &v).unwrap();
        t.commit().unwrap();
        assert_eq!(mgr.garbage_collect(), 0);
        assert_eq!(table.undo_len(), 1);
        drop(pin);
        assert_eq!(mgr.garbage_collect(), 1);
    }

    #[test]
    fn multi_group_append_and_scan() {
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer]);
        let txn = mgr.begin();
        let n = ROW_GROUP_SIZE + 100;
        let rows: Vec<Vec<Value>> = (0..n as i32).map(|i| vec![Value::Integer(i)]).collect();
        let big = DataChunk::from_rows(&[LogicalType::Integer], &rows).unwrap();
        table.append_chunk(&txn, &big).unwrap();
        assert_eq!(table.row_group_count(), 2);
        txn.commit().unwrap();
        let t = mgr.begin();
        assert_eq!(table.count_visible(&t), n);
    }

    #[test]
    fn bounded_range_scans_partition_a_full_scan() {
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer]);
        let setup = mgr.begin();
        let n = ROW_GROUP_SIZE + 5000; // two groups
        let rows: Vec<Vec<Value>> = (0..n as i32).map(|i| vec![Value::Integer(i)]).collect();
        table
            .append_chunk(&setup, &DataChunk::from_rows(&[LogicalType::Integer], &rows).unwrap())
            .unwrap();
        setup.commit().unwrap();

        let txn = mgr.begin();
        let opts = ScanOptions { columns: vec![0], ..Default::default() };
        // Cover the table with half-group morsels; the union of their rows
        // must equal the full serial scan.
        let mut ranged = Vec::new();
        for (group, &len) in table.group_sizes().iter().enumerate() {
            for (lo, hi) in [(0, len / 2), (len / 2, len)] {
                let mut state = table.begin_scan_range(group, lo, hi);
                while let Some(chunk) = table.scan_next(&txn, &opts, &mut state).unwrap() {
                    for row in 0..chunk.len() {
                        ranged.push(chunk.row_values(row)[0].clone());
                    }
                }
            }
        }
        let mut full = Vec::new();
        for chunk in table.scan_collect(&txn, &opts).unwrap() {
            for row in 0..chunk.len() {
                full.push(chunk.row_values(row)[0].clone());
            }
        }
        assert_eq!(ranged.len(), n);
        assert_eq!(ranged, full);
    }

    #[test]
    fn bounded_scan_respects_filters_and_bounds() {
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer]);
        let setup = mgr.begin();
        let rows: Vec<Vec<Value>> = (0..10_000).map(|i| vec![Value::Integer(i)]).collect();
        table
            .append_chunk(&setup, &DataChunk::from_rows(&[LogicalType::Integer], &rows).unwrap())
            .unwrap();
        setup.commit().unwrap();
        let txn = mgr.begin();
        let opts = ScanOptions {
            columns: vec![0],
            filters: vec![TableFilter::new(0, CmpOp::Lt, Value::Integer(6000))],
            ..Default::default()
        };
        let mut state = table.begin_scan_range(0, 4096, 8192);
        let mut got = Vec::new();
        while let Some(chunk) = table.scan_next(&txn, &opts, &mut state).unwrap() {
            for row in 0..chunk.len() {
                got.push(chunk.row_values(row)[0].as_i64().unwrap());
            }
        }
        assert_eq!(got, (4096..6000).collect::<Vec<i64>>());
    }

    #[test]
    fn type_mismatch_on_append() {
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer]);
        let txn = mgr.begin();
        let wrong =
            DataChunk::from_rows(&[LogicalType::Varchar], &[vec![Value::Varchar("x".into())]])
                .unwrap();
        assert!(table.append_chunk(&txn, &wrong).is_err());
    }

    #[test]
    fn concurrent_readers_during_bulk_update() {
        // The §2 dashboard scenario: a writer bulk-updates while readers
        // aggregate concurrently; every reader must see a consistent sum.
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer]);
        let setup = mgr.begin();
        let rows: Vec<Vec<Value>> = (0..10_000).map(|_| vec![Value::Integer(1)]).collect();
        table
            .append_chunk(&setup, &DataChunk::from_rows(&[LogicalType::Integer], &rows).unwrap())
            .unwrap();
        setup.commit().unwrap();

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let mgr = Arc::clone(&mgr);
                let table = Arc::clone(&table);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let txn = mgr.begin();
                        let opts = ScanOptions { columns: vec![0], ..Default::default() };
                        let mut sum = 0i64;
                        let mut count = 0i64;
                        for chunk in table.scan_collect(&txn, &opts).unwrap() {
                            for row in 0..chunk.len() {
                                if let Value::Integer(v) = chunk.row_values(row)[0] {
                                    sum += i64::from(v);
                                    count += 1;
                                }
                            }
                        }
                        // All rows hold the same value under every snapshot.
                        assert_eq!(count, 10_000);
                        assert_eq!(sum % 10_000, 0, "torn snapshot: sum={sum}");
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        // Writer: set every row to k, transactionally.
        for k in 2..6 {
            let txn = mgr.begin();
            let ids: Vec<RowId> = (0..10_000u32).map(|r| RowId { group: 0, row: r }).collect();
            let vals = Vector::constant(LogicalType::Integer, &Value::Integer(k), 10_000).unwrap();
            table.update_rows(&txn, &ids, 0, &vals).unwrap();
            txn.commit().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}
