//! Scan filters, read predicates and write summaries.
//!
//! Three related concepts share the comparison machinery:
//! * [`TableFilter`] — a pushed-down scan predicate, used both for exact
//!   row filtering and conservative zone-map skipping;
//! * [`ReadPredicate`] — what a transaction *remembers* about its reads for
//!   commit-time serializability validation (HyPer's precision locking,
//!   §6; we summarize predicates as per-column ranges, which is
//!   conservative: it may abort a serializable schedule, never accept a
//!   non-serializable one);
//! * `WriteSummary` (in [`crate::manager`]) — per-column value ranges a
//!   committed transaction wrote, tested for intersection with later
//!   committers' read predicates.

use eider_vector::{value_at, Value, Vector};
use std::cmp::Ordering;

/// Comparison operator for pushed-down filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    pub fn evaluate(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::NotEq => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::LtEq => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::GtEq => ord != Ordering::Less,
        }
    }

    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }
}

/// A pushed-down predicate: `column <op> constant`.
#[derive(Debug, Clone)]
pub struct TableFilter {
    /// Index into the table's physical columns.
    pub column: usize,
    pub op: CmpOp,
    pub value: Value,
}

impl TableFilter {
    pub fn new(column: usize, op: CmpOp, value: Value) -> Self {
        TableFilter { column, op, value }
    }

    /// Exact evaluation against one value (NULL never matches, SQL
    /// three-valued logic collapsed to false for filtering).
    pub fn matches(&self, v: &Value) -> bool {
        match v.sql_cmp(&self.value) {
            Some(ord) => self.op.evaluate(ord),
            None => false,
        }
    }

    /// Conservative test against a zone map: can *any* value in
    /// `[min, max]` match? `true` means the row group must be scanned.
    pub fn zone_may_match(&self, min: &Value, max: &Value) -> bool {
        match self.op {
            CmpOp::Eq => {
                // value within [min, max]?
                self.value.total_cmp(min) != Ordering::Less
                    && self.value.total_cmp(max) != Ordering::Greater
            }
            CmpOp::NotEq => {
                // Only skippable when the whole group is exactly `value`.
                !(min == &self.value && max == &self.value)
            }
            CmpOp::Lt => min.total_cmp(&self.value) == Ordering::Less,
            CmpOp::LtEq => min.total_cmp(&self.value) != Ordering::Greater,
            CmpOp::Gt => max.total_cmp(&self.value) == Ordering::Greater,
            CmpOp::GtEq => max.total_cmp(&self.value) != Ordering::Less,
        }
    }

    /// Vectorized evaluation into a selection of qualifying row indexes,
    /// refining an existing selection.
    pub fn filter_vector(&self, vector: &Vector, sel: &mut Vec<u32>) {
        // Compressed-domain short-circuits: evaluate the comparison once
        // per distinct value (dictionary) or once per run (RLE) and then
        // consult only the keep table per row — whole runs of a losing
        // value drop without a single per-row comparison.
        if let Some((dict, codes)) = vector.dict_parts() {
            let keep: Vec<bool> =
                dict.values().iter().map(|s| self.matches(&Value::Varchar(s.clone()))).collect();
            sel.retain(|&row| {
                let row = row as usize;
                !vector.is_null(row) && keep[codes[row] as usize]
            });
            return;
        }
        if let Some((runs, starts)) = vector.rle_parts() {
            let ty = vector.logical_type();
            let keep: Vec<bool> =
                (0..starts.len()).map(|i| self.matches(&value_at(runs, ty, i))).collect();
            sel.retain(|&row| {
                if vector.is_null(row as usize) {
                    return false;
                }
                let run = starts.partition_point(|&s| s <= row) - 1;
                keep[run]
            });
            return;
        }
        sel.retain(|&row| {
            let v = vector.get_value(row as usize);
            self.matches(&v)
        });
    }

    /// The value range this predicate can possibly select, as
    /// `(lower, upper)` with `None` meaning unbounded. Used to build read
    /// predicates for validation.
    pub fn selected_range(&self) -> (Option<Value>, Option<Value>) {
        match self.op {
            CmpOp::Eq => (Some(self.value.clone()), Some(self.value.clone())),
            CmpOp::NotEq => (None, None),
            CmpOp::Lt | CmpOp::LtEq => (None, Some(self.value.clone())),
            CmpOp::Gt | CmpOp::GtEq => (Some(self.value.clone()), None),
        }
    }
}

/// What a transaction remembers about a read, for commit-time validation.
#[derive(Debug, Clone)]
pub struct ReadPredicate {
    pub table_id: u64,
    /// `None` = unpredicated (whole-table) read: conflicts with any write.
    pub column: Option<usize>,
    /// Inclusive bounds; `None` = unbounded on that side.
    pub lower: Option<Value>,
    pub upper: Option<Value>,
}

impl ReadPredicate {
    pub fn whole_table(table_id: u64) -> Self {
        ReadPredicate { table_id, column: None, lower: None, upper: None }
    }

    pub fn from_filter(table_id: u64, filter: &TableFilter) -> Self {
        let (lower, upper) = filter.selected_range();
        ReadPredicate { table_id, column: Some(filter.column), lower, upper }
    }

    /// Does a written value range `[wmin, wmax]` on `column` intersect this
    /// predicate?
    pub fn overlaps(&self, column: usize, wmin: &Value, wmax: &Value) -> bool {
        match self.column {
            None => true,
            Some(c) if c != column => false,
            Some(_) => {
                let below = match &self.upper {
                    Some(u) => wmin.total_cmp(u) != Ordering::Greater,
                    None => true,
                };
                let above = match &self.lower {
                    Some(l) => wmax.total_cmp(l) != Ordering::Less,
                    None => true,
                };
                below && above
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_vector::LogicalType;

    #[test]
    fn cmp_op_evaluation() {
        assert!(CmpOp::Lt.evaluate(Ordering::Less));
        assert!(!CmpOp::Lt.evaluate(Ordering::Equal));
        assert!(CmpOp::LtEq.evaluate(Ordering::Equal));
        assert!(CmpOp::NotEq.evaluate(Ordering::Greater));
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn filter_matches_with_null_semantics() {
        let f = TableFilter::new(0, CmpOp::Eq, Value::Integer(-999));
        assert!(f.matches(&Value::Integer(-999)));
        assert!(!f.matches(&Value::Integer(0)));
        assert!(!f.matches(&Value::Null), "NULL never matches a filter");
    }

    #[test]
    fn zone_map_skipping() {
        let f = TableFilter::new(0, CmpOp::Gt, Value::Integer(100));
        assert!(!f.zone_may_match(&Value::Integer(0), &Value::Integer(100)));
        assert!(f.zone_may_match(&Value::Integer(0), &Value::Integer(101)));
        let eq = TableFilter::new(0, CmpOp::Eq, Value::Integer(50));
        assert!(eq.zone_may_match(&Value::Integer(0), &Value::Integer(100)));
        assert!(!eq.zone_may_match(&Value::Integer(60), &Value::Integer(100)));
    }

    #[test]
    fn filter_vector_refines_selection() {
        let v = Vector::from_values(
            LogicalType::Integer,
            &[Value::Integer(1), Value::Null, Value::Integer(3), Value::Integer(4)],
        )
        .unwrap();
        let f = TableFilter::new(0, CmpOp::GtEq, Value::Integer(3));
        let mut sel: Vec<u32> = vec![0, 1, 2, 3];
        f.filter_vector(&v, &mut sel);
        assert_eq!(sel, vec![2, 3]);
    }

    #[test]
    fn read_predicate_overlap() {
        let f = TableFilter::new(2, CmpOp::Eq, Value::Integer(-999));
        let p = ReadPredicate::from_filter(1, &f);
        assert!(p.overlaps(2, &Value::Integer(-1000), &Value::Integer(0)));
        assert!(!p.overlaps(2, &Value::Integer(0), &Value::Integer(10)));
        assert!(!p.overlaps(3, &Value::Integer(-999), &Value::Integer(-999)));
        let whole = ReadPredicate::whole_table(1);
        assert!(whole.overlaps(7, &Value::Integer(1), &Value::Integer(1)));
    }

    #[test]
    fn unbounded_ranges() {
        let f = TableFilter::new(0, CmpOp::Lt, Value::Integer(10));
        let p = ReadPredicate::from_filter(1, &f);
        assert!(p.overlaps(0, &Value::Integer(-1_000_000), &Value::Integer(-999_999)));
        assert!(!p.overlaps(0, &Value::Integer(11), &Value::Integer(20)));
        // boundary: Lt 10 has upper bound 10 inclusive in the conservative
        // range — writes at exactly 10 conservatively conflict.
        assert!(p.overlaps(0, &Value::Integer(10), &Value::Integer(12)));
    }
}
