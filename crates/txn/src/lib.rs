//! MVCC transactions and versioned table storage (§6 of the paper).
//!
//! "DuckDB provides ACID-compliance through Multi-Version Concurrency
//! Control (MVCC). ... We implement HyPer's serializable variant of MVCC
//! that is tailored specifically for hybrid OLAP/OLTP systems. This variant
//! updates data in-place immediately, and keeps previous states stored in a
//! separate undo buffer for concurrent transactions and aborts."
//!
//! The combined OLAP & ETL workload of §2 shapes everything here:
//! * bulk appends and bulk updates/deletes are first-class (chunk-at-a-time
//!   APIs, per-row-group locking rather than per-row locks);
//! * updates touch single columns without rewriting the others ("when some
//!   columns in a table are changed, the unchanged columns should not be
//!   rewritten in any way");
//! * concurrent dashboards work: readers scan consistent snapshots while
//!   ETL writers commit, without blocking each other.
//!
//! Modules:
//! * [`manager`] — transaction lifecycle, commit/abort, serializability
//!   validation (precision-locking style, conservative range summaries),
//!   and garbage collection of obsolete undo versions;
//! * [`table`] — [`DataTable`]: columnar row groups with per-row version
//!   stamps, in-place updates + undo chains, and zone-map scan skipping;
//! * [`predicate`] — scan filters, read predicates and write summaries.

//! * [`stats`] — [`TableStats`]: table/column statistics derived from
//!   zone maps and encoding metadata, consumed by the cost-based
//!   optimizer.

pub mod manager;
pub mod predicate;
pub mod stats;
pub mod table;

pub use manager::{Transaction, TransactionManager, TXN_ID_START};
pub use predicate::{CmpOp, ReadPredicate, TableFilter};
pub use stats::{ColumnStats, TableStats};
pub use table::{DataTable, RowId, ScanOptions, ROW_GROUP_SIZE};
