//! Transaction lifecycle: begin, commit (with serializability validation),
//! rollback, and garbage collection of obsolete versions.
//!
//! Timestamps follow HyPer's scheme: a logical clock hands out *start
//! timestamps* (the snapshot) and *commit timestamps*; live transactions
//! are identified by ids from a disjoint high range ([`TXN_ID_START`]), so
//! a single `u64` stamp on a row distinguishes "committed at ts" from
//! "written by live transaction" by magnitude alone.

use crate::predicate::ReadPredicate;
use crate::table::DataTable;
use eider_vector::{EiderError, Result, Value};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Transaction ids live above this bound; commit timestamps below it.
pub const TXN_ID_START: u64 = 1 << 62;

/// Per-column value range a transaction wrote into a table. Old and new
/// values of updates, inserted values and deleted values are all merged in,
/// so a later committer's read predicate can conservatively detect that its
/// result set could have been affected.
type ColumnRanges = HashMap<usize, (Value, Value)>;

#[derive(Debug, Clone, Default)]
pub(crate) struct WriteSummary {
    /// table id -> column -> (min, max) of written values.
    pub tables: HashMap<u64, ColumnRanges>,
}

impl WriteSummary {
    pub fn merge_value(&mut self, table_id: u64, column: usize, v: &Value) {
        if v.is_null() {
            // NULLs never satisfy a comparison predicate; they cannot turn
            // a read result. (NULL-ness changes ARE visible to IS NULL
            // reads, which we conservatively record as whole-table reads.)
            return;
        }
        let ranges = self.tables.entry(table_id).or_default();
        match ranges.entry(column) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (min, max) = e.get_mut();
                if v.total_cmp(min) == std::cmp::Ordering::Less {
                    *min = v.clone();
                }
                if v.total_cmp(max) == std::cmp::Ordering::Greater {
                    *max = v.clone();
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((v.clone(), v.clone()));
            }
        }
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    fn conflicts_with(&self, read: &ReadPredicate) -> bool {
        let Some(ranges) = self.tables.get(&read.table_id) else {
            return false;
        };
        match read.column {
            None => true, // unpredicated read of a written table
            Some(_) => ranges.iter().any(|(&col, (min, max))| read.overlaps(col, min, max)),
        }
    }
}

/// One committed transaction's footprint, kept until no live snapshot
/// predates it.
#[derive(Debug)]
struct CommitRecord {
    commit_ts: u64,
    summary: WriteSummary,
}

/// Where an insert landed (finalized or invalidated at commit/rollback).
pub(crate) struct InsertRecord {
    pub table: Arc<DataTable>,
    pub group: usize,
    pub start: usize,
    pub count: usize,
}

/// Rows a transaction deleted in one row group.
pub(crate) struct DeleteRecord {
    pub table: Arc<DataTable>,
    pub group: usize,
    pub rows: Vec<u32>,
}

#[derive(Default)]
pub(crate) struct TxnState {
    pub inserts: Vec<InsertRecord>,
    /// (table, group) pairs holding undo entries of this transaction.
    pub updated_groups: Vec<(Arc<DataTable>, usize)>,
    pub deletes: Vec<DeleteRecord>,
    pub reads: Vec<ReadPredicate>,
    pub summary: WriteSummary,
}

impl TxnState {
    fn has_writes(&self) -> bool {
        !self.inserts.is_empty() || !self.updated_groups.is_empty() || !self.deletes.is_empty()
    }

    pub fn note_updated_group(&mut self, table: &Arc<DataTable>, group: usize) {
        if !self.updated_groups.iter().any(|(t, g)| t.id() == table.id() && *g == group) {
            self.updated_groups.push((Arc::clone(table), group));
        }
    }
}

/// A transaction handle. Dropped without [`Transaction::commit`] it rolls
/// back automatically (RAII abort).
pub struct Transaction {
    id: u64,
    start_ts: u64,
    mgr: Arc<TransactionManager>,
    pub(crate) state: Mutex<TxnState>,
    finished: AtomicBool,
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.id)
            .field("start_ts", &self.start_ts)
            .finish_non_exhaustive()
    }
}

impl Transaction {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The snapshot timestamp: this transaction sees exactly the effects of
    /// transactions with `commit_ts <= start_ts`, plus its own writes.
    pub fn start_ts(&self) -> u64 {
        self.start_ts
    }

    /// Record a read predicate for commit-time validation.
    pub fn record_read(&self, predicate: ReadPredicate) {
        self.state.lock().reads.push(predicate);
    }

    /// True if this transaction has performed any write.
    pub fn is_read_write(&self) -> bool {
        self.state.lock().has_writes()
    }

    fn check_active(&self) -> Result<()> {
        if self.finished.load(Ordering::Acquire) {
            return Err(EiderError::Transaction(
                "transaction already committed or rolled back".into(),
            ));
        }
        Ok(())
    }

    /// Commit. Read-only transactions always succeed; read-write
    /// transactions first validate their read predicates against every
    /// transaction that committed after this one started (conservative
    /// precision locking — HyPer's serializable variant, §6).
    pub fn commit(self) -> Result<u64> {
        self.check_active()?;
        let mut state = {
            let mut guard = self.state.lock();
            std::mem::take(&mut *guard)
        };
        if !state.has_writes() {
            self.finish();
            return Ok(self.start_ts);
        }
        let mgr = Arc::clone(&self.mgr);
        let _commit_guard = mgr.commit_lock.lock();
        // Validation inside the commit lock: the commit log cannot grow
        // under us.
        if !state.reads.is_empty() {
            let conflict = {
                let log = mgr.commit_log.read();
                let mut found = None;
                'outer: for record in log.iter().rev() {
                    if record.commit_ts <= self.start_ts {
                        break;
                    }
                    for read in &state.reads {
                        if record.summary.conflicts_with(read) {
                            found = Some((read.table_id, record.commit_ts));
                            break 'outer;
                        }
                    }
                }
                found
            };
            if let Some((table_id, commit_ts)) = conflict {
                drop(_commit_guard);
                self.rollback_writes(&mut state);
                self.finish();
                return Err(EiderError::Conflict(format!(
                    "serializability validation failed: transaction read data \
                     (table {table_id}) modified by a transaction that committed at ts {commit_ts}"
                )));
            }
        }
        let commit_ts = mgr.clock.load(Ordering::SeqCst) + 1;
        // Finalize stamps: flip txn-id markers to the commit timestamp.
        for ins in &state.inserts {
            ins.table.finalize_insert(ins.group, ins.start, ins.count, commit_ts);
        }
        for (table, group) in &state.updated_groups {
            table.finalize_updates(*group, self.id, commit_ts);
        }
        for del in &state.deletes {
            del.table.finalize_delete(del.group, &del.rows, commit_ts);
        }
        mgr.commit_log
            .write()
            .push(CommitRecord { commit_ts, summary: std::mem::take(&mut state.summary) });
        // Publish: only now do new snapshots include this commit.
        mgr.clock.store(commit_ts, Ordering::SeqCst);
        self.finish();
        Ok(commit_ts)
    }

    /// Roll back all effects of this transaction.
    pub fn rollback(self) -> Result<()> {
        self.check_active()?;
        let mut state = {
            let mut guard = self.state.lock();
            std::mem::take(&mut *guard)
        };
        self.rollback_writes(&mut state);
        self.finish();
        Ok(())
    }

    fn rollback_writes(&self, state: &mut TxnState) {
        // Undo in-place updates from the undo chains (newest first inside
        // each group, handled by the table) and release deleted rows.
        for (table, group) in &state.updated_groups {
            table.rollback_updates(*group, self.id);
        }
        for del in &state.deletes {
            del.table.rollback_delete(del.group, &del.rows);
        }
        for ins in &state.inserts {
            ins.table.invalidate_insert(ins.group, ins.start, ins.count);
        }
    }

    fn finish(&self) {
        self.finished.store(true, Ordering::Release);
        self.mgr.active.lock().remove(&self.id);
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished.load(Ordering::Acquire) {
            let mut state = {
                let mut guard = self.state.lock();
                std::mem::take(&mut *guard)
            };
            self.rollback_writes(&mut state);
            self.finish();
        }
    }
}

/// The transaction manager: clock, active set, commit log, GC.
pub struct TransactionManager {
    clock: AtomicU64,
    next_txn_id: AtomicU64,
    active: Mutex<BTreeMap<u64, u64>>,
    commit_log: RwLock<Vec<CommitRecord>>,
    commit_lock: Mutex<()>,
    /// Tables registered for garbage collection.
    tables: Mutex<Vec<Weak<DataTable>>>,
}

impl Default for TransactionManager {
    fn default() -> Self {
        TransactionManager {
            clock: AtomicU64::new(1),
            next_txn_id: AtomicU64::new(TXN_ID_START),
            active: Mutex::new(BTreeMap::new()),
            commit_log: RwLock::new(Vec::new()),
            commit_lock: Mutex::new(()),
            tables: Mutex::new(Vec::new()),
        }
    }
}

impl TransactionManager {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Begin a transaction with a snapshot of everything committed so far.
    pub fn begin(self: &Arc<Self>) -> Transaction {
        let start_ts = self.clock.load(Ordering::SeqCst);
        let id = self.next_txn_id.fetch_add(1, Ordering::SeqCst);
        self.active.lock().insert(id, start_ts);
        Transaction {
            id,
            start_ts,
            mgr: Arc::clone(self),
            state: Mutex::new(TxnState::default()),
            finished: AtomicBool::new(false),
        }
    }

    /// Current committed timestamp (newest snapshot).
    pub fn committed_ts(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Register a table for version garbage collection.
    pub fn register_table(&self, table: &Arc<DataTable>) {
        self.tables.lock().push(Arc::downgrade(table));
    }

    /// The oldest snapshot any live transaction can observe.
    pub fn oldest_active_snapshot(&self) -> u64 {
        self.active.lock().values().min().copied().unwrap_or_else(|| self.committed_ts())
    }

    /// Drop undo versions and commit records no live snapshot needs.
    /// Returns the number of undo entries reclaimed.
    pub fn garbage_collect(&self) -> usize {
        let horizon = self.oldest_active_snapshot();
        let mut reclaimed = 0;
        let mut tables = self.tables.lock();
        tables.retain(|w| w.strong_count() > 0);
        for weak in tables.iter() {
            if let Some(table) = weak.upgrade() {
                reclaimed += table.vacuum_versions(horizon);
            }
        }
        drop(tables);
        self.commit_log.write().retain(|r| r.commit_ts > horizon);
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_assigns_monotonic_ids_and_snapshots() {
        let mgr = TransactionManager::new();
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        assert!(t2.id() > t1.id());
        assert!(t1.id() >= TXN_ID_START);
        assert_eq!(t1.start_ts(), t2.start_ts());
        assert_eq!(mgr.active_count(), 2);
        t1.commit().unwrap();
        t2.rollback().unwrap();
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn read_only_commit_does_not_advance_clock() {
        let mgr = TransactionManager::new();
        let before = mgr.committed_ts();
        mgr.begin().commit().unwrap();
        assert_eq!(mgr.committed_ts(), before);
    }

    #[test]
    fn dropped_transaction_leaves_active_set() {
        let mgr = TransactionManager::new();
        {
            let _t = mgr.begin();
            assert_eq!(mgr.active_count(), 1);
        }
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn oldest_active_snapshot_tracks_minimum() {
        let mgr = TransactionManager::new();
        assert_eq!(mgr.oldest_active_snapshot(), 1);
        let t1 = mgr.begin();
        let snap = t1.start_ts();
        assert_eq!(mgr.oldest_active_snapshot(), snap);
        drop(t1);
        assert_eq!(mgr.oldest_active_snapshot(), mgr.committed_ts());
    }

    #[test]
    fn write_summary_conflict_logic() {
        let mut s = WriteSummary::default();
        s.merge_value(1, 0, &Value::Integer(5));
        s.merge_value(1, 0, &Value::Integer(15));
        s.merge_value(1, 2, &Value::Varchar("x".into()));
        // Range read overlapping [5,15].
        let f =
            crate::predicate::TableFilter::new(0, crate::predicate::CmpOp::Lt, Value::Integer(7));
        let read = ReadPredicate::from_filter(1, &f);
        assert!(s.conflicts_with(&read));
        // Disjoint range.
        let f2 =
            crate::predicate::TableFilter::new(0, crate::predicate::CmpOp::Gt, Value::Integer(20));
        assert!(!s.conflicts_with(&ReadPredicate::from_filter(1, &f2)));
        // Other table never conflicts.
        assert!(!s.conflicts_with(&ReadPredicate::whole_table(2)));
        // Whole-table read of the written table conflicts.
        assert!(s.conflicts_with(&ReadPredicate::whole_table(1)));
        // NULL writes are ignored.
        let mut s2 = WriteSummary::default();
        s2.merge_value(1, 0, &Value::Null);
        assert!(s2.is_empty());
    }
}
