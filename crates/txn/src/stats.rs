//! Table and column statistics for the cost-based optimizer.
//!
//! Stats are derived entirely from storage metadata the engine already
//! maintains — per-group zone maps (min/max, only ever widened) and the
//! encoding chooser's per-column evidence (dictionary sizes, run counts) —
//! so computing them is O(row groups), never a data scan. They are
//! recomputed on demand rather than cached: appends, deletes and
//! rollbacks need no invalidation hooks, and because zone maps only widen
//! and physical rows only grow, every estimate stays a conservative upper
//! bound of the live data.

use eider_vector::Value;

/// Statistics for one column of a table.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Smallest non-NULL value ever present (from zone maps), if any.
    pub min: Option<Value>,
    /// Largest non-NULL value ever present (from zone maps), if any.
    pub max: Option<Value>,
    /// Estimated number of distinct values, clamped to the row count.
    /// Zero only for an empty table.
    pub distinct: u64,
}

/// Statistics for a whole table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Physical row count (dead and uncommitted versions included), an
    /// upper bound on what any snapshot can see.
    pub row_count: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    pub fn column(&self, i: usize) -> Option<&ColumnStats> {
        self.columns.get(i)
    }
}
