//! CRC-32C (Castagnoli) checksums, the per-block integrity check of the
//! storage layer (§3/§6: "DuckDB computes and stores check sums of all
//! blocks in persistent storage and verifies this as blocks are read").
//!
//! Implemented from scratch: a slice-by-8 table-driven CRC using the
//! Castagnoli polynomial (reflected form `0x82F63B78`), the same polynomial
//! ZFS and iSCSI use. Slice-by-8 processes eight input bytes per iteration,
//! keeping checksum overhead on 256 KiB blocks in the low single digits of
//! a percent of scan cost (measured in `benches/resilience.rs`).

const POLY: u32 = 0x82F6_3B78;

/// 8 lookup tables of 256 entries each (slice-by-8).
struct Tables([[u32; 256]; 8]);

fn build_tables() -> Tables {
    let mut t = [[0u32; 256]; 8];
    for i in 0..256u32 {
        let mut crc = i;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
        t[0][i as usize] = crc;
    }
    for i in 0..256usize {
        let mut crc = t[0][i];
        for slice in 1..8 {
            crc = t[0][(crc & 0xFF) as usize] ^ (crc >> 8);
            t[slice][i] = crc;
        }
    }
    Tables(t)
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(build_tables)
}

/// Streaming CRC-32C state.
#[derive(Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, mut data: &[u8]) {
        let t = &tables().0;
        let mut crc = self.state;
        while data.len() >= 8 {
            let low = crc
                ^ (u32::from(data[0])
                    | u32::from(data[1]) << 8
                    | u32::from(data[2]) << 16
                    | u32::from(data[3]) << 24);
            crc = t[7][(low & 0xFF) as usize]
                ^ t[6][((low >> 8) & 0xFF) as usize]
                ^ t[5][((low >> 16) & 0xFF) as usize]
                ^ t[4][((low >> 24) & 0xFF) as usize]
                ^ t[3][data[4] as usize]
                ^ t[2][data[5] as usize]
                ^ t[1][data[6] as usize]
                ^ t[0][data[7] as usize];
            data = &data[8..];
        }
        for &b in data {
            crc = t[0][((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Finalize and return the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32C of a byte slice.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

/// A much weaker but faster checksum (Fletcher-64 style), kept as the
/// baseline for the resilience benchmark's "how much does a *real* CRC
/// cost" comparison. Not used for on-disk blocks.
pub fn fletcher64(data: &[u8]) -> u64 {
    let mut a: u64 = 0;
    let mut b: u64 = 0;
    for chunk in data.chunks(4) {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        a = a.wrapping_add(u64::from(u32::from_le_bytes(w)));
        b = b.wrapping_add(a);
    }
    (b << 32) | (a & 0xFFFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 (iSCSI) test vectors for CRC-32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"a"), 0xC1D04330);
        assert_eq!(crc32c(b"123456789"), 0xE3069283);
        let zeros = [0u8; 32];
        assert_eq!(crc32c(&zeros), 0x8A9136AA);
        let ones = [0xFFu8; 32];
        assert_eq!(crc32c(&ones), 0x62A8AB43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let mut c = Crc32c::new();
        for chunk in data.chunks(37) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32c(&data));
    }

    #[test]
    fn detects_any_single_bit_flip_in_block() {
        let mut data = vec![0xA5u8; 4096];
        let original = crc32c(&data);
        // Flip every 997th bit and verify the checksum changes each time.
        for bit in (0..data.len() * 8).step_by(997) {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&data), original, "missed flip at bit {bit}");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32c(&data), original);
    }

    #[test]
    fn detects_swapped_words() {
        let mut data: Vec<u8> = (0..=255).cycle().take(1024).collect();
        let original = crc32c(&data);
        data.swap(10, 500);
        assert_ne!(crc32c(&data), original);
    }

    #[test]
    fn fletcher_differs_from_crc_and_detects_simple_flips() {
        let mut data = vec![1u8; 256];
        let f = fletcher64(&data);
        data[17] ^= 0x40;
        assert_ne!(fletcher64(&data), f);
    }
}
