//! Resilience substrate for eider (§3 of the paper).
//!
//! Consumer hardware has no ECC RAM, no RAID and no administrator; the
//! paper's position is that an embedded analytical DBMS must *distrust the
//! hardware in every aspect*. This crate implements the detection machinery:
//!
//! * [`checksum`] — CRC-32C block checksums ("DuckDB computes and stores
//!   check sums of all blocks in persistent storage and verifies this as
//!   blocks are read").
//! * [`ancode`] — AN-code hardening of in-memory integer data, after
//!   Kolditz et al. (AHEAD, SIGMOD'18), the state of the art the paper
//!   cites for detecting bit flips during query processing.
//! * [`memtest`] — "moving inversions" memory tests (after MemTest86),
//!   which the paper plans to integrate into the buffer manager.
//! * [`fault`] — a deterministic fault injector and simulated faulty
//!   memory, standing in for real hardware failures (see DESIGN.md,
//!   substitutions table).
//! * [`failure_model`] — the Monte-Carlo consumer-hardware failure model
//!   that regenerates Table 1 (Nightingale et al. numbers).
//! * [`health`] — a process-wide health monitor implementing the paper's
//!   observation that "a system that has failed once is very likely to
//!   fail again": after the first detected fault, checking escalates.

pub mod ancode;
pub mod checksum;
pub mod failure_model;
pub mod fault;
pub mod health;
pub mod memtest;

pub use ancode::AnCodec;
pub use checksum::{crc32c, Crc32c};
pub use failure_model::{ComponentKind, FailureModel, FleetReport};
pub use fault::{FaultInjector, SimulatedMemory};
pub use health::{CheckingMode, HealthMonitor};
pub use memtest::{MemTestKind, MemTestReport, MemoryTester};
