//! Monte-Carlo consumer-hardware failure model — regenerates **Table 1**.
//!
//! Table 1 of the paper reproduces Nightingale, Douceur & Orgovan (EuroSys
//! 2011): over a 30-day window, 1 in 190 consumer machines suffers a CPU
//! machine-check exception, 1 in 1700 a DRAM bit flip in kernel memory and
//! 1 in 270 a disk failure — and for machines that already failed once, the
//! probability of a *second* failure rises by roughly two orders of
//! magnitude (to 1 in 2.9, 1 in 12 and 1 in 3.5 respectively).
//!
//! We cannot re-run a million real consumer PCs, so this module simulates
//! them (DESIGN.md substitution T1): each machine draws exponential
//! times-to-failure whose hazard rate jumps after the first failure — the
//! standard model for "failure begets failure" (latent defects: a marginal
//! DIMM or worn disk keeps producing errors). Calibrating the two hazard
//! rates against the paper's probabilities and simulating the fleet must
//! reproduce all six numbers of Table 1, which the tests assert.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The failing component, as in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// CPU machine-check exception.
    CpuMce,
    /// DRAM bit flip (in kernel memory, per the study).
    DramBitFlip,
    /// Disk subsystem failure.
    Disk,
}

impl ComponentKind {
    pub const ALL: [ComponentKind; 3] =
        [ComponentKind::CpuMce, ComponentKind::DramBitFlip, ComponentKind::Disk];

    pub fn label(self) -> &'static str {
        match self {
            ComponentKind::CpuMce => "CPU (MCE)",
            ComponentKind::DramBitFlip => "DRAM bit flip",
            ComponentKind::Disk => "Disk failure",
        }
    }

    /// Paper's Table 1: 30-day probability of a first failure, as `1 in N`.
    pub fn paper_first_failure_odds(self) -> f64 {
        match self {
            ComponentKind::CpuMce => 190.0,
            ComponentKind::DramBitFlip => 1700.0,
            ComponentKind::Disk => 270.0,
        }
    }

    /// Paper's Table 1: 30-day probability of a second failure given one
    /// already happened, as `1 in N`.
    pub fn paper_second_failure_odds(self) -> f64 {
        match self {
            ComponentKind::CpuMce => 2.9,
            ComponentKind::DramBitFlip => 12.0,
            ComponentKind::Disk => 3.5,
        }
    }
}

/// Hazard-rate model for one component class.
#[derive(Debug, Clone, Copy)]
pub struct FailureModel {
    /// Hazard rate (failures/day) for a machine with no failure history.
    pub base_rate: f64,
    /// Hazard rate after the first failure (latent-defect regime).
    pub recurrent_rate: f64,
    /// Observation window in days (30 in the study).
    pub window_days: f64,
}

impl FailureModel {
    /// Calibrate hazard rates from `1 in N` 30-day probabilities, i.e.
    /// invert `p = 1 - exp(-rate * window)`.
    pub fn from_window_odds(first_odds: f64, second_odds: f64, window_days: f64) -> Self {
        let p1 = 1.0 / first_odds;
        let p2 = 1.0 / second_odds;
        FailureModel {
            base_rate: -(1.0 - p1).ln() / window_days,
            recurrent_rate: -(1.0 - p2).ln() / window_days,
            window_days,
        }
    }

    /// The model for a paper component, calibrated to Table 1.
    pub fn for_component(c: ComponentKind) -> Self {
        Self::from_window_odds(c.paper_first_failure_odds(), c.paper_second_failure_odds(), 30.0)
    }

    /// Analytic 30-day first-failure probability (sanity check handle).
    pub fn first_failure_probability(&self) -> f64 {
        1.0 - (-self.base_rate * self.window_days).exp()
    }

    /// The recurrence multiplier ("two orders of magnitude", §3).
    pub fn hazard_multiplier(&self) -> f64 {
        self.recurrent_rate / self.base_rate
    }

    /// Simulate one machine for one window; returns how many failures
    /// occurred. Exponential waiting times; the hazard switches to the
    /// recurrent rate after the first failure.
    fn simulate_machine(&self, rng: &mut StdRng) -> u32 {
        let mut t = 0.0f64;
        let mut failures = 0u32;
        loop {
            let rate = if failures == 0 { self.base_rate } else { self.recurrent_rate };
            // Inverse-CDF exponential sample.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / rate;
            if t > self.window_days {
                return failures;
            }
            failures += 1;
            if failures > 1000 {
                return failures; // hard cap; cannot happen with sane rates
            }
        }
    }
}

/// Aggregated fleet statistics for one component class.
#[derive(Debug, Clone)]
pub struct FleetReport {
    pub component: ComponentKind,
    pub machines: usize,
    pub machines_with_failure: usize,
    pub machines_with_recurrence: usize,
}

impl FleetReport {
    /// Empirical Pr[≥1 failure in 30 days], as `1 in N`.
    pub fn first_failure_one_in(&self) -> f64 {
        self.machines as f64 / self.machines_with_failure.max(1) as f64
    }

    /// Empirical Pr[≥2 failures | ≥1 failure], as `1 in N`.
    ///
    /// Conditioning on the first failure having happened, the remaining
    /// window runs at the recurrent hazard — exactly the quantity the study
    /// reports in its second column.
    pub fn second_failure_one_in(&self) -> f64 {
        self.machines_with_failure as f64 / self.machines_with_recurrence.max(1) as f64
    }
}

/// Simulate a fleet of `machines` for one 30-day window per component.
pub fn simulate_fleet(component: ComponentKind, machines: usize, seed: u64) -> FleetReport {
    let model = FailureModel::for_component(component);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut with_failure = 0usize;
    let mut with_recurrence = 0usize;
    for _ in 0..machines {
        let failures = model.simulate_machine(&mut rng);
        if failures >= 1 {
            with_failure += 1;
            // Follow the failed machine for a fresh 30-day window in the
            // recurrent regime, mirroring the study's methodology of
            // tracking machines after their first observed failure.
            let p2 = 1.0 - (-model.recurrent_rate * model.window_days).exp();
            if rng.gen_range(0.0..1.0) < p2 {
                with_recurrence += 1;
            }
        }
    }
    FleetReport {
        component,
        machines,
        machines_with_failure: with_failure,
        machines_with_recurrence: with_recurrence,
    }
}

/// Simulate all three components and return reports in Table 1 order.
pub fn simulate_table1(machines: usize, seed: u64) -> Vec<FleetReport> {
    ComponentKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &c)| simulate_fleet(c, machines, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_inverts_probabilities() {
        for c in ComponentKind::ALL {
            let m = FailureModel::for_component(c);
            let p = m.first_failure_probability();
            let expected = 1.0 / c.paper_first_failure_odds();
            assert!((p - expected).abs() < 1e-12, "{c:?}: {p} vs {expected}");
        }
    }

    #[test]
    fn recurrence_is_about_two_orders_of_magnitude() {
        // §3: "the probability for the next hardware failure is increased
        // by two orders of magnitude."
        for c in ComponentKind::ALL {
            let m = FailureModel::for_component(c);
            let mult = m.hazard_multiplier();
            assert!(
                (40.0..400.0).contains(&mult),
                "{c:?} multiplier {mult} outside plausible range"
            );
        }
    }

    #[test]
    fn fleet_simulation_reproduces_table1_first_column() {
        for c in ComponentKind::ALL {
            let report = simulate_fleet(c, 2_000_000, 42);
            let measured = report.first_failure_one_in();
            let expected = c.paper_first_failure_odds();
            let rel = (measured - expected).abs() / expected;
            assert!(
                rel < 0.10,
                "{c:?}: measured 1 in {measured:.1}, paper 1 in {expected} (rel err {rel:.3})"
            );
        }
    }

    #[test]
    fn fleet_simulation_reproduces_table1_second_column() {
        for c in ComponentKind::ALL {
            // The second column conditions on machines that failed once —
            // for DRAM that's only ~1 in 1700 of the fleet, so the fleet
            // must be large for the conditioned sample to be stable.
            let report = simulate_fleet(c, 8_000_000, 7);
            let measured = report.second_failure_one_in();
            let expected = c.paper_second_failure_odds();
            let rel = (measured - expected).abs() / expected;
            assert!(
                rel < 0.15,
                "{c:?}: measured 1 in {measured:.2}, paper 1 in {expected} (rel err {rel:.3})"
            );
        }
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let a = simulate_fleet(ComponentKind::Disk, 100_000, 3);
        let b = simulate_fleet(ComponentKind::Disk, 100_000, 3);
        assert_eq!(a.machines_with_failure, b.machines_with_failure);
        assert_eq!(a.machines_with_recurrence, b.machines_with_recurrence);
    }
}
