//! Process-wide hardware health tracking.
//!
//! Table 1 of the paper shows that a machine which has suffered one
//! hardware failure is ~two orders of magnitude more likely to fail again
//! (e.g. DRAM: first failure 1 in 1700, next failure 1 in 12). The paper
//! derives a policy from this: *"we could afford to use more lightweight
//! error detection routines if we can verify that the hardware is working
//! as expected."*
//!
//! [`HealthMonitor`] implements that policy: it counts detected integrity
//! events (checksum mismatches, AN-code violations, failed memory tests)
//! and escalates the process from [`CheckingMode::Relaxed`] to
//! [`CheckingMode::Paranoid`] on the first event. The buffer manager then
//! switches from quick allocation-time memory tests to full moving
//! inversions, and repeated faults can take the system to
//! [`CheckingMode::Failed`], where it refuses writes rather than risk
//! silent corruption.

use std::sync::atomic::{AtomicU64, Ordering};

/// How aggressively integrity checks run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckingMode {
    /// No faults observed: lightweight checks (quick memtest, checksums).
    Relaxed,
    /// At least one fault observed: full memory tests, verify-after-write.
    Paranoid,
    /// Fault threshold exceeded: cease operation ("rather than allowing
    /// data corruption ... cease operation entirely", §3).
    Failed,
}

/// Categories of detected integrity events (mirrors Table 1's components).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCategory {
    /// Block checksum mismatch on read: persistent-storage corruption.
    DiskCorruption,
    /// Failed memory test or AN-code violation: DRAM corruption.
    MemoryCorruption,
    /// Any other self-check failure.
    Other,
}

/// Shared, lock-free health state.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    disk_faults: AtomicU64,
    memory_faults: AtomicU64,
    other_faults: AtomicU64,
}

/// Number of faults after which the monitor declares the hardware failed.
const FAIL_THRESHOLD: u64 = 8;

impl HealthMonitor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a detected fault; returns the (possibly escalated) mode.
    pub fn record_fault(&self, category: FaultCategory) -> CheckingMode {
        match category {
            FaultCategory::DiskCorruption => self.disk_faults.fetch_add(1, Ordering::Relaxed),
            FaultCategory::MemoryCorruption => self.memory_faults.fetch_add(1, Ordering::Relaxed),
            FaultCategory::Other => self.other_faults.fetch_add(1, Ordering::Relaxed),
        };
        self.mode()
    }

    pub fn total_faults(&self) -> u64 {
        self.disk_faults.load(Ordering::Relaxed)
            + self.memory_faults.load(Ordering::Relaxed)
            + self.other_faults.load(Ordering::Relaxed)
    }

    pub fn disk_faults(&self) -> u64 {
        self.disk_faults.load(Ordering::Relaxed)
    }

    pub fn memory_faults(&self) -> u64 {
        self.memory_faults.load(Ordering::Relaxed)
    }

    /// Current checking mode derived from fault history.
    pub fn mode(&self) -> CheckingMode {
        let total = self.total_faults();
        if total >= FAIL_THRESHOLD {
            CheckingMode::Failed
        } else if total > 0 {
            CheckingMode::Paranoid
        } else {
            CheckingMode::Relaxed
        }
    }

    /// True if it is still safe to accept writes.
    pub fn operational(&self) -> bool {
        self.mode() != CheckingMode::Failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_relaxed() {
        let h = HealthMonitor::new();
        assert_eq!(h.mode(), CheckingMode::Relaxed);
        assert!(h.operational());
    }

    #[test]
    fn first_fault_escalates_to_paranoid() {
        let h = HealthMonitor::new();
        let mode = h.record_fault(FaultCategory::MemoryCorruption);
        assert_eq!(mode, CheckingMode::Paranoid);
        assert_eq!(h.memory_faults(), 1);
        assert!(h.operational());
    }

    #[test]
    fn repeated_faults_fail_the_system() {
        let h = HealthMonitor::new();
        for _ in 0..FAIL_THRESHOLD {
            h.record_fault(FaultCategory::DiskCorruption);
        }
        assert_eq!(h.mode(), CheckingMode::Failed);
        assert!(!h.operational());
    }

    #[test]
    fn categories_tracked_separately() {
        let h = HealthMonitor::new();
        h.record_fault(FaultCategory::DiskCorruption);
        h.record_fault(FaultCategory::MemoryCorruption);
        h.record_fault(FaultCategory::MemoryCorruption);
        assert_eq!(h.disk_faults(), 1);
        assert_eq!(h.memory_faults(), 2);
        assert_eq!(h.total_faults(), 3);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        use std::sync::Arc;
        let h = Arc::new(HealthMonitor::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        h.record_fault(FaultCategory::Other);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.total_faults(), 400);
        assert_eq!(h.mode(), CheckingMode::Failed);
    }
}
