//! AN-code hardening of in-memory integer data.
//!
//! The paper cites Kolditz et al. (DaMoN'14, SIGMOD'18 "AHEAD") as the only
//! prior work on detecting memory bit flips during query processing: encode
//! every integer `n` as `A * n` for a constant `A`. A decoded word is valid
//! iff it is divisible by `A`; a random bit flip turns a code word into a
//! non-multiple of `A` with probability `1 - 1/A`. Arithmetic can run
//! *directly on encoded data* (the code is linear: `A*x + A*y = A*(x+y)`),
//! so aggregation kernels pay only the final check.
//!
//! AHEAD reports a 1.1×–1.6× slowdown for hardened query processing; the
//! `resilience` bench reproduces that band with these codecs.

use eider_vector::{EiderError, Result};

/// Default constant: a "golden A" from the AN-coding literature (Schiffel
/// 2011). Odd (so multiplication is invertible mod 2^64), not a power of
/// two, with high minimum Hamming distance between code words for 32-bit
/// payloads.
pub const DEFAULT_A: i64 = 64311;

/// An AN encoder/decoder for a fixed constant `A`.
#[derive(Debug, Clone, Copy)]
pub struct AnCodec {
    a: i64,
}

impl Default for AnCodec {
    fn default() -> Self {
        AnCodec::new(DEFAULT_A)
    }
}

impl AnCodec {
    /// Create a codec. `a` must be odd and > 1 (even `A`s lose low-bit
    /// information; `A = 1` detects nothing).
    pub fn new(a: i64) -> Self {
        assert!(a > 1 && a % 2 == 1, "A must be an odd constant > 1");
        AnCodec { a }
    }

    pub fn a(&self) -> i64 {
        self.a
    }

    /// Encode one value. Values must fit `i64 / A`; i32 payloads always do.
    #[inline]
    pub fn encode(&self, v: i64) -> i64 {
        v.wrapping_mul(self.a)
    }

    /// Decode without checking (caller must have validated).
    #[inline]
    pub fn decode_unchecked(&self, code: i64) -> i64 {
        code / self.a
    }

    /// True if `code` is a valid code word.
    #[inline]
    pub fn is_valid(&self, code: i64) -> bool {
        code % self.a == 0
    }

    /// Decode with validation.
    #[inline]
    pub fn decode(&self, code: i64) -> Result<i64> {
        if self.is_valid(code) {
            Ok(code / self.a)
        } else {
            Err(EiderError::HardwareFault(format!(
                "AN-code violation: {code} is not a multiple of {}; a memory bit flip corrupted this value",
                self.a
            )))
        }
    }

    /// Encode a slice of i32 payloads into i64 code words.
    pub fn encode_slice_i32(&self, data: &[i32]) -> Vec<i64> {
        data.iter().map(|&v| self.encode(i64::from(v))).collect()
    }

    /// Encode a slice of i64 payloads (payloads must fit `i64 / A`).
    pub fn encode_slice_i64(&self, data: &[i64]) -> Result<Vec<i64>> {
        let limit = i64::MAX / self.a;
        let mut out = Vec::with_capacity(data.len());
        for &v in data {
            if v.abs() > limit {
                return Err(EiderError::Execution(format!(
                    "value {v} too large to AN-encode with A = {}",
                    self.a
                )));
            }
            out.push(self.encode(v));
        }
        Ok(out)
    }

    /// Validate every word; returns the index of the first corrupted word.
    pub fn check_slice(&self, codes: &[i64]) -> std::result::Result<(), usize> {
        for (i, &c) in codes.iter().enumerate() {
            if !self.is_valid(c) {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Decode a full slice with validation.
    pub fn decode_slice(&self, codes: &[i64]) -> Result<Vec<i64>> {
        codes.iter().map(|&c| self.decode(c)).collect()
    }

    /// Sum directly over encoded data, validating only the *result* — the
    /// AHEAD trick that makes hardened aggregation cheap. Accumulation
    /// uses four parallel 128-bit lanes: wide enough that overflow is
    /// impossible for any realistic slice, and independent enough that the
    /// adds pipeline (keeping the overhead in the paper's 1.1×–1.6× band).
    pub fn sum_encoded(&self, codes: &[i64]) -> Result<i64> {
        let mut lanes = [0i128; 4];
        let mut chunks = codes.chunks_exact(4);
        for c in &mut chunks {
            lanes[0] += i128::from(c[0]);
            lanes[1] += i128::from(c[1]);
            lanes[2] += i128::from(c[2]);
            lanes[3] += i128::from(c[3]);
        }
        let mut total: i128 = lanes.iter().sum();
        for &c in chunks.remainder() {
            total += i128::from(c);
        }
        if total % i128::from(self.a) != 0 {
            return Err(EiderError::HardwareFault(format!(
                "AN-code violation: aggregate {total} is not a multiple of {}; \
                 a memory bit flip corrupted the input",
                self.a
            )));
        }
        i64::try_from(total / i128::from(self.a))
            .map_err(|_| EiderError::Execution("AN-coded sum exceeds BIGINT range".into()))
    }

    /// Hardened filter: count of elements equal to `needle`, comparing in
    /// the *encoded domain* (encode the needle once; corrupted words can
    /// never equal a valid encoded needle, and are reported).
    pub fn count_eq_encoded(&self, codes: &[i64], needle: i64) -> Result<usize> {
        let coded_needle = self.encode(needle);
        let mut count = 0usize;
        for &c in codes {
            if c == coded_needle {
                count += 1;
            } else if !self.is_valid(c) {
                return Err(EiderError::HardwareFault(format!(
                    "AN-code violation during filter: word {c} corrupted"
                )));
            }
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let c = AnCodec::default();
        for v in [-1_000_000i64, -1, 0, 1, 42, i64::from(i32::MAX)] {
            assert_eq!(c.decode(c.encode(v)).unwrap(), v);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_a_rejected() {
        AnCodec::new(64);
    }

    #[test]
    fn single_bit_flips_detected() {
        let c = AnCodec::default();
        let code = c.encode(123_456);
        let mut missed = 0;
        for bit in 0..63 {
            let corrupted = code ^ (1i64 << bit);
            if c.is_valid(corrupted) {
                missed += 1;
            }
        }
        // With A = 64311 every single-bit flip of this word is detected.
        assert_eq!(missed, 0);
    }

    #[test]
    fn detection_probability_over_random_double_flips() {
        let c = AnCodec::default();
        let code = c.encode(-987);
        let mut detected = 0;
        let mut total = 0;
        for b1 in (0..63).step_by(3) {
            for b2 in (b1 + 1..63).step_by(5) {
                let corrupted = code ^ (1i64 << b1) ^ (1i64 << b2);
                total += 1;
                if !c.is_valid(corrupted) {
                    detected += 1;
                }
            }
        }
        // Expected detection rate is 1 - 1/A; with 200+ samples we should
        // see (nearly) everything detected.
        assert!(detected as f64 / total as f64 > 0.99);
    }

    #[test]
    fn sum_encoded_matches_plain_sum() {
        let c = AnCodec::default();
        let data: Vec<i32> = (0..10_000).map(|i| (i % 1000) - 500).collect();
        let codes = c.encode_slice_i32(&data);
        let expect: i64 = data.iter().map(|&v| i64::from(v)).sum();
        assert_eq!(c.sum_encoded(&codes).unwrap(), expect);
    }

    #[test]
    fn sum_encoded_detects_corruption() {
        let c = AnCodec::default();
        let data: Vec<i32> = (0..100).collect();
        let mut codes = c.encode_slice_i32(&data);
        codes[57] ^= 1 << 13;
        assert!(c.sum_encoded(&codes).is_err());
    }

    #[test]
    fn count_eq_in_encoded_domain() {
        let c = AnCodec::default();
        let data = [5i32, 7, 5, 9, 5];
        let codes = c.encode_slice_i32(&data);
        assert_eq!(c.count_eq_encoded(&codes, 5).unwrap(), 3);
        let mut corrupted = codes.clone();
        corrupted[1] ^= 1;
        assert!(c.count_eq_encoded(&corrupted, 5).is_err());
    }

    #[test]
    fn check_slice_reports_first_bad_index() {
        let c = AnCodec::default();
        let mut codes = c.encode_slice_i64(&[1, 2, 3, 4]).unwrap();
        assert!(c.check_slice(&codes).is_ok());
        codes[2] += 1;
        assert_eq!(c.check_slice(&codes), Err(2));
    }

    #[test]
    fn oversized_payload_rejected() {
        let c = AnCodec::default();
        assert!(c.encode_slice_i64(&[i64::MAX / 2]).is_err());
    }
}
