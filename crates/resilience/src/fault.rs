//! Deterministic fault injection: the stand-in for real hardware failures.
//!
//! The paper's resilience experiments require hardware that flips bits; we
//! obviously cannot ship broken DIMMs, so this module simulates the two
//! failure behaviours §3 describes:
//!
//! * **transient bit flips** — [`FaultInjector`] corrupts byte buffers with
//!   a configurable probability, deterministically from a seed so tests are
//!   reproducible;
//! * **stuck/intermittent cells** — [`SimulatedMemory`] models a memory
//!   region where specific bits are stuck at 0/1 or flip only when a
//!   neighbouring cell is written (the "interactions between adjacent
//!   cells" that make naive write-read testing insufficient, per the
//!   paper's MemTest86 discussion).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded injector that flips bits in buffers.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    /// Probability that any given *bit* is flipped by `corrupt`.
    bit_flip_prob: f64,
    /// Total number of bits flipped so far (for test assertions).
    flips: u64,
}

impl FaultInjector {
    pub fn new(seed: u64, bit_flip_prob: f64) -> Self {
        FaultInjector { rng: StdRng::seed_from_u64(seed), bit_flip_prob, flips: 0 }
    }

    /// Number of bits flipped so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Flip each bit of `buf` independently with `bit_flip_prob`.
    /// Returns how many bits were flipped.
    pub fn corrupt(&mut self, buf: &mut [u8]) -> u64 {
        // Sampling every bit is wasteful for realistic (tiny) probabilities;
        // draw the gap to the next flip from a geometric distribution.
        if self.bit_flip_prob <= 0.0 {
            return 0;
        }
        let total_bits = buf.len() as u64 * 8;
        let mut flipped = 0u64;
        let mut pos = self.next_gap();
        while pos < total_bits {
            buf[(pos / 8) as usize] ^= 1 << (pos % 8);
            flipped += 1;
            pos += 1 + self.next_gap();
        }
        self.flips += flipped;
        flipped
    }

    /// Geometric gap: number of non-flipped bits before the next flip.
    fn next_gap(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        if self.bit_flip_prob >= 1.0 {
            return 0;
        }
        (u.ln() / (1.0 - self.bit_flip_prob).ln()).floor() as u64
    }

    /// Flip exactly `n` uniformly chosen bits. Returns their bit indexes.
    pub fn flip_random_bits(&mut self, buf: &mut [u8], n: usize) -> Vec<usize> {
        let total = buf.len() * 8;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let bit = self.rng.gen_range(0..total);
            buf[bit / 8] ^= 1 << (bit % 8);
            out.push(bit);
            self.flips += 1;
        }
        out
    }

    /// Flip one specific bit (targeted corruption for directed tests).
    pub fn flip_bit(buf: &mut [u8], bit: usize) {
        buf[bit / 8] ^= 1 << (bit % 8);
    }
}

/// The kind of defect a [`SimulatedMemory`] cell can have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellDefect {
    /// Bit always reads as 1.
    StuckHigh,
    /// Bit always reads as 0.
    StuckLow,
    /// Writing the *previous* word forces this bit to the value written to
    /// the neighbouring cell (adjacent-cell coupling; this is the defect
    /// class plain write-read tests miss and moving inversions catches,
    /// because its sweeps leave neighbours holding *complementary*
    /// patterns at check time).
    CoupledToPrevious,
}

/// A defective bit position within the simulated region.
#[derive(Debug, Clone, Copy)]
pub struct Defect {
    /// Word index within the region.
    pub word: usize,
    /// Bit within the word (0..64).
    pub bit: u32,
    pub kind: CellDefect,
}

/// A simulated memory region with injected cell defects. All access goes
/// through `read`/`write`, which apply the defect semantics.
#[derive(Debug)]
pub struct SimulatedMemory {
    cells: Vec<u64>,
    defects: Vec<Defect>,
}

impl SimulatedMemory {
    pub fn new(words: usize) -> Self {
        SimulatedMemory { cells: vec![0; words], defects: Vec::new() }
    }

    pub fn with_defects(words: usize, defects: Vec<Defect>) -> Self {
        for d in &defects {
            assert!(d.word < words && d.bit < 64, "defect out of range");
        }
        SimulatedMemory { cells: vec![0; words], defects }
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn write(&mut self, word: usize, value: u64) {
        self.cells[word] = value;
        // Coupling faults: writing word w forces the defective bit of w+1
        // to the corresponding bit of the value just written (charge leaks
        // into the neighbouring cell).
        let coupled: Vec<(usize, u32)> = self
            .defects
            .iter()
            .filter(|d| d.kind == CellDefect::CoupledToPrevious && d.word == word + 1)
            .map(|d| (d.word, d.bit))
            .collect();
        for (w, b) in coupled {
            self.cells[w] = (self.cells[w] & !(1 << b)) | (value & (1 << b));
        }
    }

    pub fn read(&self, word: usize) -> u64 {
        let mut v = self.cells[word];
        for d in &self.defects {
            if d.word == word {
                match d.kind {
                    CellDefect::StuckHigh => v |= 1 << d.bit,
                    CellDefect::StuckLow => v &= !(1 << d.bit),
                    CellDefect::CoupledToPrevious => {}
                }
            }
        }
        v
    }

    pub fn defect_count(&self) -> usize {
        self.defects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic() {
        let mut a = FaultInjector::new(42, 0.01);
        let mut b = FaultInjector::new(42, 0.01);
        let mut buf_a = vec![0u8; 1024];
        let mut buf_b = vec![0u8; 1024];
        a.corrupt(&mut buf_a);
        b.corrupt(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert!(a.flips() > 0);
    }

    #[test]
    fn corrupt_rate_is_roughly_probability() {
        let mut inj = FaultInjector::new(7, 0.01);
        let mut buf = vec![0u8; 100_000];
        let flipped = inj.corrupt(&mut buf);
        let expected = (buf.len() * 8) as f64 * 0.01;
        assert!(
            (flipped as f64) > expected * 0.8 && (flipped as f64) < expected * 1.2,
            "flipped {flipped}, expected ~{expected}"
        );
        // Flips are observable in the buffer.
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(u64::from(ones), flipped);
    }

    #[test]
    fn zero_probability_never_corrupts() {
        let mut inj = FaultInjector::new(1, 0.0);
        let mut buf = vec![0xAAu8; 4096];
        assert_eq!(inj.corrupt(&mut buf), 0);
        assert!(buf.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn flip_random_bits_exact_count() {
        let mut inj = FaultInjector::new(3, 0.0);
        let mut buf = vec![0u8; 64];
        let bits = inj.flip_random_bits(&mut buf, 5);
        assert_eq!(bits.len(), 5);
    }

    #[test]
    fn stuck_bits_apply_on_read() {
        let mut mem = SimulatedMemory::with_defects(
            4,
            vec![
                Defect { word: 1, bit: 3, kind: CellDefect::StuckHigh },
                Defect { word: 2, bit: 0, kind: CellDefect::StuckLow },
            ],
        );
        mem.write(1, 0);
        assert_eq!(mem.read(1), 1 << 3);
        mem.write(2, u64::MAX);
        assert_eq!(mem.read(2), !1);
        mem.write(0, 0xDEAD);
        assert_eq!(mem.read(0), 0xDEAD);
    }

    #[test]
    fn coupled_cell_flips_on_neighbour_write() {
        let mut mem = SimulatedMemory::with_defects(
            4,
            vec![Defect { word: 2, bit: 7, kind: CellDefect::CoupledToPrevious }],
        );
        mem.write(2, 0);
        assert_eq!(mem.read(2), 0); // a plain write-read test sees no fault
        mem.write(1, 0xFF); // ... but writing 1-bits next door leaks charge
        assert_eq!(mem.read(2), 1 << 7);
        mem.write(1, 0); // and writing 0-bits clears it again
        assert_eq!(mem.read(2), 0);
    }
}
