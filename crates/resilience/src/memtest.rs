//! Moving-inversions memory tests (after the MemTest86 algorithm the paper
//! cites) for detecting broken RAM regions.
//!
//! The paper: "writing a known pattern into RAM and reading it back ... is
//! not enough, because intermittent and data-dependent errors are missed.
//! ... There exist approximate memory error detection algorithms like
//! 'moving inversions' ... we plan to integrate memory tests into the
//! buffer manager, which will test all buffers on allocation to detect
//! existing errors and periodically to detect new errors."
//!
//! Moving inversions: write a pattern ascending through the region, then
//! sweep *descending* — checking each word and writing its complement —
//! then sweep ascending again checking the complement. Because each word is
//! rewritten while its neighbours still hold the old pattern, coupling
//! faults between adjacent cells get exercised in both directions.

use crate::fault::SimulatedMemory;

/// Abstraction over a word-addressable memory region so that the identical
/// test algorithm runs against real buffers (`[u64]`) and against
/// [`SimulatedMemory`] with injected defects.
pub trait MemRegion {
    fn len_words(&self) -> usize;
    fn read_word(&self, idx: usize) -> u64;
    fn write_word(&mut self, idx: usize, value: u64);
}

impl MemRegion for [u64] {
    fn len_words(&self) -> usize {
        self.len()
    }
    fn read_word(&self, idx: usize) -> u64 {
        self[idx]
    }
    fn write_word(&mut self, idx: usize, value: u64) {
        self[idx] = value;
    }
}

impl MemRegion for SimulatedMemory {
    fn len_words(&self) -> usize {
        self.len()
    }
    fn read_word(&self, idx: usize) -> u64 {
        self.read(idx)
    }
    fn write_word(&mut self, idx: usize, value: u64) {
        self.write(idx, value);
    }
}

/// One detected mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    pub word: usize,
    pub expected: u64,
    pub actual: u64,
}

impl MemError {
    /// Bitmask of the bits that differ.
    pub fn bad_bits(&self) -> u64 {
        self.expected ^ self.actual
    }
}

/// Outcome of a memory test run.
#[derive(Debug, Clone, Default)]
pub struct MemTestReport {
    pub errors: Vec<MemError>,
    pub words_tested: usize,
    pub passes: usize,
}

impl MemTestReport {
    pub fn is_healthy(&self) -> bool {
        self.errors.is_empty()
    }

    /// Distinct faulty word indexes (a region to quarantine).
    pub fn faulty_words(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.errors.iter().map(|e| e.word).collect();
        w.sort_unstable();
        w.dedup();
        w
    }
}

/// How thorough a test to run. The buffer manager uses `Quick` on
/// allocation and `Full` when the health monitor has escalated (§3: "we
/// could afford to use more lightweight error detection routines if we can
/// verify that the hardware is working as expected").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTestKind {
    /// One pattern + complement pass (cheap allocation-time check).
    Quick,
    /// Full moving inversions with all patterns including walking ones.
    Full,
}

/// The tester. Stateless apart from configuration.
#[derive(Debug, Clone)]
pub struct MemoryTester {
    kind: MemTestKind,
}

const QUICK_PATTERNS: [u64; 2] = [0x0000_0000_0000_0000, 0xAAAA_AAAA_AAAA_AAAA];
const FULL_PATTERNS: [u64; 4] =
    [0x0000_0000_0000_0000, 0xFFFF_FFFF_FFFF_FFFF, 0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555];

impl MemoryTester {
    pub fn new(kind: MemTestKind) -> Self {
        MemoryTester { kind }
    }

    pub fn kind(&self) -> MemTestKind {
        self.kind
    }

    /// Run the configured test over `region`. The region's previous
    /// contents are destroyed (buffers are tested *before* first use).
    pub fn test<R: MemRegion + ?Sized>(&self, region: &mut R) -> MemTestReport {
        let mut report =
            MemTestReport { errors: Vec::new(), words_tested: region.len_words(), passes: 0 };
        match self.kind {
            MemTestKind::Quick => {
                for &p in &QUICK_PATTERNS {
                    Self::moving_inversion_pass(region, p, &mut report);
                }
            }
            MemTestKind::Full => {
                for &p in &FULL_PATTERNS {
                    Self::moving_inversion_pass(region, p, &mut report);
                }
                // Walking ones: pattern with a single set bit, shifted.
                for shift in (0..64).step_by(8) {
                    Self::moving_inversion_pass(region, 1u64 << shift, &mut report);
                }
            }
        }
        report
    }

    /// One moving-inversions round for a pattern:
    /// 1. ascending write of `pattern`;
    /// 2. descending: check `pattern`, write `!pattern`;
    /// 3. ascending: check `!pattern`, write `pattern`.
    fn moving_inversion_pass<R: MemRegion + ?Sized>(
        region: &mut R,
        pattern: u64,
        report: &mut MemTestReport,
    ) {
        let n = region.len_words();
        for i in 0..n {
            region.write_word(i, pattern);
        }
        for i in (0..n).rev() {
            let v = region.read_word(i);
            if v != pattern {
                report.errors.push(MemError { word: i, expected: pattern, actual: v });
            }
            region.write_word(i, !pattern);
        }
        for i in 0..n {
            let v = region.read_word(i);
            if v != !pattern {
                report.errors.push(MemError { word: i, expected: !pattern, actual: v });
            }
            region.write_word(i, pattern);
        }
        report.passes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CellDefect, Defect, SimulatedMemory};

    #[test]
    fn healthy_memory_passes() {
        let mut buf = vec![0u64; 4096];
        let report = MemoryTester::new(MemTestKind::Full).test(buf.as_mut_slice());
        assert!(report.is_healthy());
        assert_eq!(report.words_tested, 4096);
        assert!(report.passes >= 4);
    }

    #[test]
    fn stuck_high_bit_detected_by_quick_test() {
        let mut mem = SimulatedMemory::with_defects(
            256,
            vec![Defect { word: 100, bit: 5, kind: CellDefect::StuckHigh }],
        );
        let report = MemoryTester::new(MemTestKind::Quick).test(&mut mem);
        assert!(!report.is_healthy());
        assert_eq!(report.faulty_words(), vec![100]);
        assert!(report.errors.iter().all(|e| e.bad_bits() == 1 << 5));
    }

    #[test]
    fn stuck_low_bit_detected() {
        let mut mem = SimulatedMemory::with_defects(
            256,
            vec![Defect { word: 7, bit: 63, kind: CellDefect::StuckLow }],
        );
        let report = MemoryTester::new(MemTestKind::Quick).test(&mut mem);
        assert_eq!(report.faulty_words(), vec![7]);
    }

    #[test]
    fn coupling_fault_detected_by_moving_inversions() {
        // This is the defect class a naive write-then-read test misses:
        // the cell only flips when its neighbour is written.
        let mut mem = SimulatedMemory::with_defects(
            128,
            vec![Defect { word: 50, bit: 2, kind: CellDefect::CoupledToPrevious }],
        );
        // Naive test: write everything, read everything => sees nothing,
        // because each cell is written after its neighbour's last write...
        // except moving inversions interleaves writes between checks.
        let report = MemoryTester::new(MemTestKind::Quick).test(&mut mem);
        assert!(!report.is_healthy(), "moving inversions must catch coupling faults");
        assert!(report.faulty_words().contains(&50));
    }

    #[test]
    fn naive_write_read_misses_coupling_fault() {
        // Demonstrates *why* the paper insists on moving inversions: a plain
        // pattern write + read-back over the same order sees a clean region.
        let mut mem = SimulatedMemory::with_defects(
            128,
            vec![Defect { word: 50, bit: 2, kind: CellDefect::CoupledToPrevious }],
        );
        let mut errors = 0;
        for pattern in [0u64, u64::MAX] {
            for i in 0..128 {
                mem.write(i, pattern);
            }
            for i in 0..128 {
                if mem.read(i) != pattern {
                    errors += 1;
                    // Repair for next round so the flip doesn't accumulate.
                    mem.write(i, pattern);
                }
            }
        }
        assert_eq!(errors, 0, "naive test is expected to miss the fault");
    }

    #[test]
    fn multiple_defects_all_reported() {
        let mut mem = SimulatedMemory::with_defects(
            512,
            vec![
                Defect { word: 0, bit: 0, kind: CellDefect::StuckHigh },
                Defect { word: 511, bit: 31, kind: CellDefect::StuckLow },
                Defect { word: 300, bit: 60, kind: CellDefect::StuckHigh },
            ],
        );
        let report = MemoryTester::new(MemTestKind::Full).test(&mut mem);
        assert_eq!(report.faulty_words(), vec![0, 300, 511]);
    }

    #[test]
    fn empty_region_is_trivially_healthy() {
        let mut buf: Vec<u64> = Vec::new();
        let report = MemoryTester::new(MemTestKind::Quick).test(buf.as_mut_slice());
        assert!(report.is_healthy());
        assert_eq!(report.words_tested, 0);
    }
}
