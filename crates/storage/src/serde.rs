//! Hand-rolled binary encoding of values, vectors and chunks.
//!
//! Used by the WAL, the checkpointer and spill files. Deliberately written
//! from scratch (no serde): the byte-stream serialization of result sets is
//! itself one of the paper's artifacts — §5 benchmarks the cost of exactly
//! this kind of encoding against zero-copy chunk handover.

use eider_vector::{
    DataChunk, EiderError, LogicalType, Result, StrDict, ValidityMask, Value, Vector, VectorData,
};

/// Append-only binary writer.
#[derive(Debug, Default)]
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BinWriter { buf: Vec::with_capacity(cap) }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn write_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    pub fn write_i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_bytes(&mut self, v: &[u8]) {
        self.write_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub fn write_str(&mut self, v: &str) {
        self.write_bytes(v.as_bytes());
    }
}

/// Sequential binary reader over a byte slice; every read is bounds-checked
/// and fails with a `Corruption` error rather than panicking — truncated or
/// bit-flipped inputs are expected inputs here (§3).
#[derive(Debug)]
pub struct BinReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BinReader { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(EiderError::Corruption(format!(
                "truncated record: needed {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn read_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn read_bool(&mut self) -> Result<bool> {
        Ok(self.read_u8()? != 0)
    }

    pub fn read_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    pub fn read_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub fn read_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn read_i8(&mut self) -> Result<i8> {
        Ok(self.read_u8()? as i8)
    }

    pub fn read_i16(&mut self) -> Result<i16> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    pub fn read_i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub fn read_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn read_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn read_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.read_u64()? as usize;
        self.take(len)
    }

    pub fn read_str(&mut self) -> Result<String> {
        let bytes = self.read_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| EiderError::Corruption("invalid UTF-8 in serialized string".into()))
    }
}

/// Stable on-disk tag for a logical type.
pub fn type_to_tag(ty: LogicalType) -> u8 {
    match ty {
        LogicalType::Boolean => 0,
        LogicalType::TinyInt => 1,
        LogicalType::SmallInt => 2,
        LogicalType::Integer => 3,
        LogicalType::BigInt => 4,
        LogicalType::Double => 5,
        LogicalType::Varchar => 6,
        LogicalType::Date => 7,
        LogicalType::Timestamp => 8,
    }
}

pub fn tag_to_type(tag: u8) -> Result<LogicalType> {
    Ok(match tag {
        0 => LogicalType::Boolean,
        1 => LogicalType::TinyInt,
        2 => LogicalType::SmallInt,
        3 => LogicalType::Integer,
        4 => LogicalType::BigInt,
        5 => LogicalType::Double,
        6 => LogicalType::Varchar,
        7 => LogicalType::Date,
        8 => LogicalType::Timestamp,
        _ => return Err(EiderError::Corruption(format!("unknown type tag {tag}"))),
    })
}

/// Serialize one value (type tag + payload; NULL is tag 255).
pub fn write_value(w: &mut BinWriter, v: &Value) {
    match v {
        Value::Null => w.write_u8(255),
        Value::Boolean(b) => {
            w.write_u8(type_to_tag(LogicalType::Boolean));
            w.write_bool(*b);
        }
        Value::TinyInt(x) => {
            w.write_u8(type_to_tag(LogicalType::TinyInt));
            w.write_i8(*x);
        }
        Value::SmallInt(x) => {
            w.write_u8(type_to_tag(LogicalType::SmallInt));
            w.write_i16(*x);
        }
        Value::Integer(x) => {
            w.write_u8(type_to_tag(LogicalType::Integer));
            w.write_i32(*x);
        }
        Value::BigInt(x) => {
            w.write_u8(type_to_tag(LogicalType::BigInt));
            w.write_i64(*x);
        }
        Value::Double(x) => {
            w.write_u8(type_to_tag(LogicalType::Double));
            w.write_f64(*x);
        }
        Value::Varchar(s) => {
            w.write_u8(type_to_tag(LogicalType::Varchar));
            w.write_str(s);
        }
        Value::Date(x) => {
            w.write_u8(type_to_tag(LogicalType::Date));
            w.write_i32(*x);
        }
        Value::Timestamp(x) => {
            w.write_u8(type_to_tag(LogicalType::Timestamp));
            w.write_i64(*x);
        }
    }
}

pub fn read_value(r: &mut BinReader) -> Result<Value> {
    let tag = r.read_u8()?;
    if tag == 255 {
        return Ok(Value::Null);
    }
    Ok(match tag_to_type(tag)? {
        LogicalType::Boolean => Value::Boolean(r.read_bool()?),
        LogicalType::TinyInt => Value::TinyInt(r.read_i8()?),
        LogicalType::SmallInt => Value::SmallInt(r.read_i16()?),
        LogicalType::Integer => Value::Integer(r.read_i32()?),
        LogicalType::BigInt => Value::BigInt(r.read_i64()?),
        LogicalType::Double => Value::Double(r.read_f64()?),
        LogicalType::Varchar => Value::Varchar(r.read_str()?),
        LogicalType::Date => Value::Date(r.read_i32()?),
        LogicalType::Timestamp => Value::Timestamp(r.read_i64()?),
    })
}

/// High bit of the type tag marks an encoded (compressed) vector frame.
/// Plain vectors keep the legacy `[tag][len][nulls][flat data]` layout
/// byte-for-byte, so frames written by older code parse unchanged and
/// frames of plain vectors round-trip through older decoders.
const ENCODED_FLAG: u8 = 0x80;
const ENC_DICT: u8 = 1;
const ENC_RLE: u8 = 2;
const ENC_FOR: u8 = 3;

fn write_len_and_nulls(w: &mut BinWriter, v: &Vector) {
    let len = v.len();
    w.write_u64(len as u64);
    let has_nulls = !v.validity().all_valid();
    w.write_bool(has_nulls);
    if has_nulls {
        let mut bitmap = vec![0u8; len.div_ceil(8)];
        for row in 0..len {
            if v.validity().is_valid(row) {
                bitmap[row / 8] |= 1 << (row % 8);
            }
        }
        w.write_bytes(&bitmap);
    }
}

fn write_flat_data(w: &mut BinWriter, data: &VectorData) {
    match data {
        VectorData::Bool(d) => d.iter().for_each(|&x| w.write_bool(x)),
        VectorData::I8(d) => d.iter().for_each(|&x| w.write_i8(x)),
        VectorData::I16(d) => d.iter().for_each(|&x| w.write_i16(x)),
        VectorData::I32(d) => d.iter().for_each(|&x| w.write_i32(x)),
        VectorData::I64(d) => d.iter().for_each(|&x| w.write_i64(x)),
        VectorData::F64(d) => d.iter().for_each(|&x| w.write_f64(x)),
        VectorData::Str(d) => d.iter().for_each(|x| w.write_str(x)),
    }
}

/// Serialize a vector. Plain: `[type tag][row count][null bitmap flag +
/// bitmap][data]`. Encoded vectors serialize their compressed form
/// directly — `[tag | 0x80][encoding][row count][nulls][payload]` — so
/// dictionary/RLE/FOR columns spill and checkpoint at compressed size and
/// reload still encoded.
pub fn write_vector(w: &mut BinWriter, v: &Vector) {
    let tag = type_to_tag(v.logical_type());
    if let Some((dict, codes)) = v.dict_parts() {
        w.write_u8(tag | ENCODED_FLAG);
        w.write_u8(ENC_DICT);
        write_len_and_nulls(w, v);
        w.write_u32(dict.len() as u32);
        for s in dict.values() {
            w.write_str(s);
        }
        codes.iter().for_each(|&c| w.write_u32(c));
        return;
    }
    if let Some((runs, starts)) = v.rle_parts() {
        w.write_u8(tag | ENCODED_FLAG);
        w.write_u8(ENC_RLE);
        write_len_and_nulls(w, v);
        w.write_u32(starts.len() as u32);
        starts.iter().for_each(|&s| w.write_u32(s));
        write_flat_data(w, runs);
        return;
    }
    if let Some((frame, deltas)) = v.for_parts() {
        w.write_u8(tag | ENCODED_FLAG);
        w.write_u8(ENC_FOR);
        write_len_and_nulls(w, v);
        w.write_i64(frame);
        deltas.iter().for_each(|&d| w.write_u32(d));
        return;
    }
    w.write_u8(tag);
    write_len_and_nulls(w, v);
    write_flat_data(w, v.data());
}

fn read_flat_data(r: &mut BinReader, ty: LogicalType, len: usize) -> Result<VectorData> {
    Ok(match ty {
        LogicalType::Boolean => {
            let mut d = Vec::with_capacity(len);
            for _ in 0..len {
                d.push(r.read_bool()?);
            }
            VectorData::Bool(d)
        }
        LogicalType::TinyInt => {
            let mut d = Vec::with_capacity(len);
            for _ in 0..len {
                d.push(r.read_i8()?);
            }
            VectorData::I8(d)
        }
        LogicalType::SmallInt => {
            let mut d = Vec::with_capacity(len);
            for _ in 0..len {
                d.push(r.read_i16()?);
            }
            VectorData::I16(d)
        }
        LogicalType::Integer | LogicalType::Date => {
            let mut d = Vec::with_capacity(len);
            for _ in 0..len {
                d.push(r.read_i32()?);
            }
            VectorData::I32(d)
        }
        LogicalType::BigInt | LogicalType::Timestamp => {
            let mut d = Vec::with_capacity(len);
            for _ in 0..len {
                d.push(r.read_i64()?);
            }
            VectorData::I64(d)
        }
        LogicalType::Double => {
            let mut d = Vec::with_capacity(len);
            for _ in 0..len {
                d.push(r.read_f64()?);
            }
            VectorData::F64(d)
        }
        LogicalType::Varchar => {
            let mut d = Vec::with_capacity(len);
            for _ in 0..len {
                d.push(r.read_str()?);
            }
            VectorData::Str(d)
        }
    })
}

pub fn read_vector(r: &mut BinReader) -> Result<Vector> {
    let raw_tag = r.read_u8()?;
    let encoded = raw_tag & ENCODED_FLAG != 0;
    let ty = tag_to_type(raw_tag & !ENCODED_FLAG)?;
    let enc = if encoded { r.read_u8()? } else { 0 };
    let len = r.read_u64()? as usize;
    // Guard against absurd lengths from corrupted input before allocating.
    if len > (1 << 40) {
        return Err(EiderError::Corruption(format!("implausible vector length {len}")));
    }
    let has_nulls = r.read_bool()?;
    let mut validity = ValidityMask::new_all_valid(0);
    if has_nulls {
        let bitmap = r.read_bytes()?;
        if bitmap.len() != len.div_ceil(8) {
            return Err(EiderError::Corruption("null bitmap size mismatch".into()));
        }
        for row in 0..len {
            validity.push(bitmap[row / 8] & (1 << (row % 8)) != 0);
        }
    } else {
        validity = ValidityMask::new_all_valid(len);
    }
    if !encoded {
        let data = read_flat_data(r, ty, len)?;
        return Vector::from_parts(ty, data, validity);
    }
    let corrupt = |e: EiderError| EiderError::Corruption(format!("invalid encoded vector: {e}"));
    match enc {
        ENC_DICT => {
            let dict_len = r.read_u32()? as usize;
            if dict_len > len {
                return Err(EiderError::Corruption(format!(
                    "dictionary larger than vector: {dict_len} > {len}"
                )));
            }
            let mut values = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                values.push(r.read_str()?);
            }
            let mut codes = Vec::with_capacity(len);
            for _ in 0..len {
                codes.push(r.read_u32()?);
            }
            Vector::from_dict(ty, std::sync::Arc::new(StrDict::new(values)), codes, validity)
                .map_err(corrupt)
        }
        ENC_RLE => {
            let runs = r.read_u32()? as usize;
            if runs > len {
                return Err(EiderError::Corruption(format!("more runs than rows: {runs} > {len}")));
            }
            let mut starts = Vec::with_capacity(runs);
            for _ in 0..runs {
                starts.push(r.read_u32()?);
            }
            let values = read_flat_data(r, ty, runs)?;
            Vector::from_rle(ty, values, starts, len, validity).map_err(corrupt)
        }
        ENC_FOR => {
            let frame = r.read_i64()?;
            let mut deltas = Vec::with_capacity(len);
            for _ in 0..len {
                deltas.push(r.read_u32()?);
            }
            Vector::from_for(ty, frame, deltas, validity).map_err(corrupt)
        }
        other => Err(EiderError::Corruption(format!("unknown vector encoding {other}"))),
    }
}

/// Serialize a chunk: `[column count][vectors...]`.
pub fn write_chunk(w: &mut BinWriter, chunk: &DataChunk) {
    w.write_u32(chunk.column_count() as u32);
    for col in chunk.columns() {
        write_vector(w, col);
    }
}

pub fn read_chunk(r: &mut BinReader) -> Result<DataChunk> {
    let cols = r.read_u32()? as usize;
    if cols > 100_000 {
        return Err(EiderError::Corruption(format!("implausible column count {cols}")));
    }
    let mut vectors = Vec::with_capacity(cols);
    for _ in 0..cols {
        vectors.push(read_vector(r)?);
    }
    DataChunk::from_vectors(vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = BinWriter::new();
        w.write_u8(7);
        w.write_i64(-1234567890123);
        w.write_f64(3.5);
        w.write_str("hello eider");
        w.write_bool(true);
        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_i64().unwrap(), -1234567890123);
        assert_eq!(r.read_f64().unwrap(), 3.5);
        assert_eq!(r.read_str().unwrap(), "hello eider");
        assert!(r.read_bool().unwrap());
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_read_is_error_not_panic() {
        let mut w = BinWriter::new();
        w.write_u32(5);
        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes[..2]);
        assert!(r.read_u32().is_err());
    }

    #[test]
    fn values_round_trip() {
        let values = vec![
            Value::Null,
            Value::Boolean(true),
            Value::TinyInt(-5),
            Value::SmallInt(1234),
            Value::Integer(-99999),
            Value::BigInt(1 << 50),
            Value::Double(2.25),
            Value::Varchar("quack".into()),
            Value::Date(18273),
            Value::Timestamp(1_578_787_200_000_000),
        ];
        let mut w = BinWriter::new();
        for v in &values {
            write_value(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes);
        for v in &values {
            assert_eq!(&read_value(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn vectors_round_trip_with_nulls() {
        for ty in LogicalType::ALL {
            let mut v = Vector::new(ty);
            for i in 0..100 {
                if i % 7 == 0 {
                    v.push_null();
                } else {
                    let val = match ty {
                        LogicalType::Boolean => Value::Boolean(i % 2 == 0),
                        LogicalType::Varchar => Value::Varchar(format!("s{i}")),
                        LogicalType::Double => Value::Double(i as f64 / 4.0),
                        _ => Value::BigInt(i64::from(i)).cast_to(ty).unwrap(),
                    };
                    v.push_value(&val).unwrap();
                }
            }
            let mut w = BinWriter::new();
            write_vector(&mut w, &v);
            let bytes = w.into_bytes();
            let mut r = BinReader::new(&bytes);
            let back = read_vector(&mut r).unwrap();
            assert_eq!(back.logical_type(), ty);
            assert_eq!(back.to_values(), v.to_values(), "{ty}");
        }
    }

    #[test]
    fn chunk_round_trip() {
        let chunk = DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Varchar, LogicalType::Double],
            &[
                vec![Value::Integer(1), Value::Varchar("a".into()), Value::Double(0.5)],
                vec![Value::Null, Value::Null, Value::Null],
                vec![Value::Integer(3), Value::Varchar("c".into()), Value::Double(1.5)],
            ],
        )
        .unwrap();
        let mut w = BinWriter::new();
        write_chunk(&mut w, &chunk);
        let bytes = w.into_bytes();
        let back = read_chunk(&mut BinReader::new(&bytes)).unwrap();
        assert_eq!(back.to_rows(), chunk.to_rows());
    }

    #[test]
    fn encoded_vectors_round_trip_still_encoded() {
        use eider_vector::Encoding;
        // Dict: low-cardinality varchar with NULL slots.
        let mut dict = Vector::new(LogicalType::Varchar);
        for i in 0..256 {
            if i % 11 == 0 {
                dict.push_null();
            } else {
                dict.push_value(&Value::Varchar(format!("name_{}", i % 5))).unwrap();
            }
        }
        // RLE: runny integers. FOR: big ints in a narrow range.
        let mut rle = Vector::new(LogicalType::Integer);
        for i in 0..256 {
            rle.push_value(&Value::Integer(i / 64)).unwrap();
        }
        let mut forv = Vector::new(LogicalType::BigInt);
        for i in 0..256i64 {
            forv.push_value(&Value::BigInt((1 << 40) + i * 37 % 1000)).unwrap();
        }
        for (v, want) in [(dict, Encoding::Dict), (rle, Encoding::Rle), (forv, Encoding::For)] {
            let enc = v.encode_auto().expect("chooser should encode fixture");
            assert_eq!(enc.encoding(), want);
            let mut w = BinWriter::new();
            write_vector(&mut w, &enc);
            let encoded_size = w.len();
            let mut plain_w = BinWriter::new();
            write_vector(&mut plain_w, &v);
            assert!(
                encoded_size < plain_w.len(),
                "{want:?}: encoded frame {encoded_size} >= plain {}",
                plain_w.len()
            );
            let bytes = w.into_bytes();
            let back = read_vector(&mut BinReader::new(&bytes)).unwrap();
            assert_eq!(back.encoding(), want, "deserialized vector stays encoded");
            assert_eq!(back.to_values(), v.to_values());
        }
    }

    #[test]
    fn plain_frames_keep_legacy_layout() {
        // A plain vector's frame must start with the bare type tag (no
        // encoding flag), so decoders predating compressed frames parse it.
        let v = Vector::from_values(
            LogicalType::Integer,
            &(0..4).map(Value::Integer).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut w = BinWriter::new();
        write_vector(&mut w, &v);
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], type_to_tag(LogicalType::Integer));
        assert_eq!(bytes[0] & super::ENCODED_FLAG, 0);
    }

    #[test]
    fn corrupted_encoded_frames_rejected() {
        let mut v = Vector::new(LogicalType::Varchar);
        for i in 0..128 {
            v.push_value(&Value::Varchar(format!("k{}", i % 3))).unwrap();
        }
        let enc = v.encode_auto().unwrap();
        let mut w = BinWriter::new();
        write_vector(&mut w, &enc);
        let bytes = w.into_bytes();
        // Unknown encoding id.
        let mut bad = bytes.clone();
        bad[1] = 99;
        assert!(read_vector(&mut BinReader::new(&bad)).is_err());
        // Truncated payload.
        assert!(read_vector(&mut BinReader::new(&bytes[..bytes.len() - 2])).is_err());
    }

    #[test]
    fn corrupted_type_tag_rejected() {
        let mut w = BinWriter::new();
        let v = Vector::from_values(LogicalType::Integer, &[Value::Integer(1)]).unwrap();
        write_vector(&mut w, &v);
        let mut bytes = w.into_bytes();
        bytes[0] = 99; // invalid tag
        assert!(read_vector(&mut BinReader::new(&bytes)).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = BinWriter::new();
        w.write_bytes(&[0xFF, 0xFE, 0xFD]);
        let bytes = w.into_bytes();
        assert!(BinReader::new(&bytes).read_str().is_err());
    }
}
