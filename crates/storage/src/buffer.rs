//! The buffer manager: memory accounting and tested allocations.
//!
//! Two of the paper's requirements meet here:
//!
//! * **Cooperation (§4)** — "DuckDB for now allows the user to manually set
//!   hard limits on memory": every memory-hungry operator (hash join build
//!   sides, sort runs, aggregation tables) reserves its footprint through
//!   the buffer manager, which enforces the configured limit and thereby
//!   drives operators to spill or switch strategies.
//! * **Resilience (§3)** — "we plan to integrate memory tests into the
//!   buffer manager, which will test all buffers on allocation to detect
//!   existing errors": [`BufferManager::allocate_tested`] runs a moving-
//!   inversions pass over each fresh buffer, escalating from quick to full
//!   tests once the [`HealthMonitor`] has seen a fault.

use eider_resilience::health::{CheckingMode, FaultCategory, HealthMonitor};
use eider_resilience::memtest::{MemRegion, MemTestKind, MemoryTester};
use eider_vector::{EiderError, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Configuration for the buffer manager.
#[derive(Debug, Clone)]
pub struct BufferManagerConfig {
    /// Hard memory limit in bytes for tracked allocations (§4).
    pub memory_limit: usize,
    /// Whether to memory-test buffers on allocation (§3).
    pub memtest_allocations: bool,
}

impl Default for BufferManagerConfig {
    fn default() -> Self {
        // The paper's cooperation argument: never assume the whole machine.
        // Default to a deliberately modest 1 GiB rather than probing for
        // all available RAM the way server DBMSs do.
        BufferManagerConfig { memory_limit: 1 << 30, memtest_allocations: true }
    }
}

/// Tracks all operator memory against the configured limit.
///
/// Accounts form a tree: [`BufferManager::sub_account`] carves a
/// per-session *quota* out of a parent account. A reservation on a
/// sub-account charges every level up to the root, so a session can never
/// exceed its own quota *or* push the database past its global limit, and
/// one session's hunger is invisible to its siblings' quotas.
#[derive(Debug)]
pub struct BufferManager {
    limit: AtomicUsize,
    used: AtomicUsize,
    /// High-water mark of `used` since construction (or the last
    /// [`BufferManager::reset_peak`]); benchmarks report it as the peak
    /// accounted footprint of a workload.
    peak: AtomicUsize,
    memtest_allocations: bool,
    health: Arc<HealthMonitor>,
    /// Parent account when this is a session sub-account; charges and
    /// releases propagate up the chain.
    parent: Option<Arc<BufferManager>>,
}

impl BufferManager {
    pub fn new(config: BufferManagerConfig) -> Arc<Self> {
        Self::with_health(config, Arc::new(HealthMonitor::new()))
    }

    pub fn with_health(config: BufferManagerConfig, health: Arc<HealthMonitor>) -> Arc<Self> {
        Arc::new(BufferManager {
            limit: AtomicUsize::new(config.memory_limit),
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            memtest_allocations: config.memtest_allocations,
            health,
            parent: None,
        })
    }

    /// A session quota carved out of this account. The sub-account shares
    /// the parent's health monitor and memtest policy; its reservations
    /// are charged against *both* its own quota and every ancestor, so
    /// the global limit still holds across all sessions combined.
    pub fn sub_account(self: &Arc<Self>, quota: usize) -> Arc<BufferManager> {
        Arc::new(BufferManager {
            limit: AtomicUsize::new(quota),
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            memtest_allocations: self.memtest_allocations,
            health: Arc::clone(&self.health),
            parent: Some(Arc::clone(self)),
        })
    }

    /// True for accounts created via [`BufferManager::sub_account`].
    pub fn is_sub_account(&self) -> bool {
        self.parent.is_some()
    }

    /// The effective limit: this account's own limit capped by every
    /// ancestor's (a session quota larger than the global limit still
    /// cannot reserve past the global limit).
    pub fn memory_limit(&self) -> usize {
        let own = self.limit.load(Ordering::Relaxed);
        match &self.parent {
            Some(p) => own.min(p.memory_limit()),
            None => own,
        }
    }

    /// Adjust the limit at runtime (`PRAGMA memory_limit`, or the adaptive
    /// controller of §4 shrinking the DBMS under application pressure).
    pub fn set_memory_limit(&self, bytes: usize) {
        self.limit.store(bytes, Ordering::Relaxed);
    }

    pub fn used_memory(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Headroom before a reservation would fail: this account's own
    /// headroom capped by every ancestor's.
    pub fn available_memory(&self) -> usize {
        let own = self.limit.load(Ordering::Relaxed).saturating_sub(self.used_memory());
        match &self.parent {
            Some(p) => own.min(p.available_memory()),
            None => own,
        }
    }

    /// High-water mark of accounted memory since construction or the last
    /// [`BufferManager::reset_peak`] — what a workload's §4 footprint
    /// actually peaked at, as opposed to where it happens to sit now.
    pub fn peak_memory(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restart peak tracking (benchmarks call this between phases).
    pub fn reset_peak(&self) {
        self.peak.store(self.used_memory(), Ordering::Relaxed);
    }

    pub fn health(&self) -> &Arc<HealthMonitor> {
        &self.health
    }

    /// Reserve `bytes` against the limit; fails with `OutOfMemory` when the
    /// budget is exhausted, which is the signal operators use to spill. On
    /// a sub-account the charge propagates through every ancestor (and is
    /// rolled back at each level if a higher one refuses).
    pub fn reserve(self: &Arc<Self>, bytes: usize) -> Result<MemoryReservation> {
        self.charge(bytes)?;
        Ok(MemoryReservation { mgr: Arc::clone(self), bytes })
    }

    fn charge(&self, bytes: usize) -> Result<()> {
        let own_limit = self.limit.load(Ordering::Relaxed);
        let mut current = self.used.load(Ordering::Relaxed);
        loop {
            let new = current + bytes;
            if new > own_limit {
                let knob = if self.parent.is_some() {
                    "raise the quota with PRAGMA session_memory_limit"
                } else {
                    "raise the limit with PRAGMA memory_limit"
                };
                return Err(EiderError::OutOfMemory(format!(
                    "cannot reserve {bytes} bytes: {current} of {own_limit} in use \
                     ({knob} or let the operator spill)",
                )));
            }
            match self.used.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        if let Some(parent) = &self.parent {
            if let Err(e) = parent.charge(bytes) {
                self.used.fetch_sub(bytes, Ordering::Relaxed);
                return Err(e);
            }
        }
        self.peak.fetch_max(self.used.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(())
    }

    fn release(&self, bytes: usize) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
        if let Some(parent) = &self.parent {
            parent.release(bytes);
        }
    }

    /// Allocate a zeroed, memory-tested buffer of `bytes` (rounded up to
    /// whole 8-byte words). In `Relaxed` health mode a quick test runs; in
    /// `Paranoid` mode (a fault has been seen) the full moving-inversions
    /// battery runs. A failing buffer is reported and the allocation
    /// refused — the quarantine policy §3 sketches.
    pub fn allocate_tested(self: &Arc<Self>, bytes: usize) -> Result<TestedBuffer> {
        let reservation = self.reserve(bytes)?;
        let words = bytes.div_ceil(8);
        let mut data = vec![0u64; words];
        if self.memtest_allocations {
            let kind = match self.health.mode() {
                CheckingMode::Relaxed => MemTestKind::Quick,
                CheckingMode::Paranoid => MemTestKind::Full,
                CheckingMode::Failed => {
                    return Err(EiderError::HardwareFault(
                        "refusing allocation: hardware declared failed after repeated faults"
                            .into(),
                    ))
                }
            };
            let report = MemoryTester::new(kind).test(data.as_mut_slice());
            if !report.is_healthy() {
                self.health.record_fault(FaultCategory::MemoryCorruption);
                return Err(EiderError::HardwareFault(format!(
                    "memory test failed on fresh buffer: {} faulty words (first at {:?})",
                    report.faulty_words().len(),
                    report.errors.first().map(|e| e.word)
                )));
            }
            data.fill(0);
        }
        Ok(TestedBuffer { words: data, len_bytes: bytes, _reservation: reservation })
    }
}

/// RAII memory reservation; releases its bytes on drop.
#[derive(Debug)]
pub struct MemoryReservation {
    mgr: Arc<BufferManager>,
    bytes: usize,
}

impl MemoryReservation {
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grow the reservation in place (e.g. a hash table doubling).
    pub fn grow(&mut self, extra: usize) -> Result<()> {
        let add = self.mgr.reserve(extra)?;
        // Merge: forget the temp guard, absorb its bytes.
        let add_bytes = add.bytes;
        std::mem::forget(add);
        self.bytes += add_bytes;
        Ok(())
    }

    /// Shrink the reservation (e.g. after spilling a partition).
    pub fn shrink(&mut self, less: usize) {
        let less = less.min(self.bytes);
        self.bytes -= less;
        self.mgr.release(less);
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.mgr.release(self.bytes);
    }
}

/// A zeroed buffer that passed its allocation-time memory test.
#[derive(Debug)]
pub struct TestedBuffer {
    words: Vec<u64>,
    len_bytes: usize,
    _reservation: MemoryReservation,
}

impl TestedBuffer {
    pub fn len(&self) -> usize {
        self.len_bytes
    }

    pub fn is_empty(&self) -> bool {
        self.len_bytes == 0
    }

    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    pub fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Re-run a memory test over the buffer *in place is impossible* — the
    /// test is destructive — so this checks a scratch copy pattern instead:
    /// periodic re-verification per §6 ("periodically to detect new
    /// errors") is done by the owner when the buffer is free.
    pub fn retest(&mut self, kind: MemTestKind) -> bool {
        let report = MemoryTester::new(kind).test(self.words.as_mut_slice());
        self.words.fill(0);
        report.is_healthy()
    }
}

/// Adapter: treat a byte slice as a word-addressable [`MemRegion`] (tail
/// bytes that do not fill a word are not tested).
pub struct ByteRegion<'a>(pub &'a mut [u8]);

impl MemRegion for ByteRegion<'_> {
    fn len_words(&self) -> usize {
        self.0.len() / 8
    }
    fn read_word(&self, idx: usize) -> u64 {
        u64::from_le_bytes(self.0[idx * 8..idx * 8 + 8].try_into().expect("8"))
    }
    fn write_word(&mut self, idx: usize, value: u64) {
        self.0[idx * 8..idx * 8 + 8].copy_from_slice(&value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(limit: usize) -> Arc<BufferManager> {
        BufferManager::new(BufferManagerConfig { memory_limit: limit, memtest_allocations: true })
    }

    #[test]
    fn reserve_and_release() {
        let m = mgr(1000);
        let r = m.reserve(400).unwrap();
        assert_eq!(m.used_memory(), 400);
        let r2 = m.reserve(600).unwrap();
        assert_eq!(m.available_memory(), 0);
        assert!(m.reserve(1).is_err());
        drop(r);
        assert_eq!(m.used_memory(), 600);
        drop(r2);
        assert_eq!(m.used_memory(), 0);
    }

    #[test]
    fn peak_tracks_the_high_water_mark() {
        let m = mgr(1000);
        let r = m.reserve(400).unwrap();
        let r2 = m.reserve(300).unwrap();
        drop(r);
        assert_eq!(m.used_memory(), 300);
        assert_eq!(m.peak_memory(), 700, "peak survives releases");
        m.reset_peak();
        assert_eq!(m.peak_memory(), 300, "reset re-bases on current usage");
        drop(r2);
        assert_eq!(m.peak_memory(), 300);
    }

    #[test]
    fn grow_and_shrink() {
        let m = mgr(1000);
        let mut r = m.reserve(100).unwrap();
        r.grow(200).unwrap();
        assert_eq!(m.used_memory(), 300);
        assert!(r.grow(800).is_err());
        r.shrink(250);
        assert_eq!(m.used_memory(), 50);
        drop(r);
        assert_eq!(m.used_memory(), 0);
    }

    #[test]
    fn tested_allocation_is_zeroed_and_accounted() {
        let m = mgr(1 << 20);
        let buf = m.allocate_tested(4096).unwrap();
        assert_eq!(buf.len(), 4096);
        assert!(buf.as_words().iter().all(|&w| w == 0));
        assert!(m.used_memory() >= 4096);
        drop(buf);
        assert_eq!(m.used_memory(), 0);
    }

    #[test]
    fn allocation_over_limit_fails() {
        let m = mgr(1024);
        assert!(m.allocate_tested(2048).is_err());
    }

    #[test]
    fn paranoid_mode_uses_full_test_and_failed_mode_refuses() {
        let m = mgr(1 << 20);
        // Trip the health monitor into Failed.
        for _ in 0..8 {
            m.health().record_fault(FaultCategory::MemoryCorruption);
        }
        let err = m.allocate_tested(64).unwrap_err();
        assert!(matches!(err, EiderError::HardwareFault(_)));
    }

    #[test]
    fn limit_can_change_at_runtime() {
        let m = mgr(100);
        assert!(m.reserve(200).is_err());
        m.set_memory_limit(500);
        let _r = m.reserve(200).unwrap();
        assert_eq!(m.memory_limit(), 500);
    }

    #[test]
    fn concurrent_reservations_respect_limit() {
        let m = mgr(10_000);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    let mut ok = 0;
                    for _ in 0..100 {
                        if let Ok(r) = m.reserve(100) {
                            ok += 1;
                            drop(r);
                        }
                    }
                    ok
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.used_memory(), 0);
    }

    #[test]
    fn sub_account_charges_propagate_to_the_root() {
        let root = mgr(1000);
        let a = root.sub_account(600);
        let b = root.sub_account(600);
        assert!(a.is_sub_account() && !root.is_sub_account());
        let ra = a.reserve(400).unwrap();
        assert_eq!(a.used_memory(), 400);
        assert_eq!(root.used_memory(), 400, "session charge visible at the root");
        // b's quota would allow 600, but the root only has 600 left and a
        // holds 400 of it: b can take 600 only if the root agrees.
        let rb = b.reserve(600).unwrap();
        assert_eq!(root.used_memory(), 1000);
        assert!(a.reserve(1).is_err(), "root exhausted even inside a's quota");
        drop(ra);
        drop(rb);
        assert_eq!(root.used_memory(), 0);
        assert_eq!(a.used_memory(), 0);
        assert_eq!(b.used_memory(), 0);
    }

    #[test]
    fn sub_account_quota_is_enforced_independently() {
        let root = mgr(1000);
        let a = root.sub_account(200);
        let err = a.reserve(300).unwrap_err();
        assert!(err.to_string().contains("session_memory_limit"), "{err}");
        assert_eq!(root.used_memory(), 0, "refused charge leaves the root untouched");
        let _r = a.reserve(200).unwrap();
        assert!(a.reserve(1).is_err(), "quota full");
        assert_eq!(root.available_memory(), 800, "siblings keep the rest");
    }

    #[test]
    fn sub_account_rolls_back_own_charge_when_the_root_refuses() {
        let root = mgr(500);
        let a = root.sub_account(400);
        let b = root.sub_account(400);
        let _rb = b.reserve(300).unwrap();
        assert!(a.reserve(400).is_err(), "root has only 200 left");
        assert_eq!(a.used_memory(), 0, "failed reservation fully rolled back");
        assert_eq!(root.used_memory(), 300);
    }

    #[test]
    fn sub_account_effective_limit_is_min_over_the_chain() {
        let root = mgr(1000);
        let a = root.sub_account(1 << 40);
        assert_eq!(a.memory_limit(), 1000, "quota larger than the root is capped");
        let b = root.sub_account(100);
        assert_eq!(b.memory_limit(), 100);
        let _r = root.reserve(950).unwrap();
        assert_eq!(b.available_memory(), 50, "available is capped by root headroom");
    }

    #[test]
    fn sub_account_grow_and_shrink_propagate() {
        let root = mgr(1000);
        let a = root.sub_account(500);
        let mut r = a.reserve(100).unwrap();
        r.grow(200).unwrap();
        assert_eq!(a.used_memory(), 300);
        assert_eq!(root.used_memory(), 300);
        r.shrink(250);
        assert_eq!(a.used_memory(), 50);
        assert_eq!(root.used_memory(), 50);
        drop(r);
        assert_eq!(root.used_memory(), 0);
    }

    #[test]
    fn byte_region_round_trips_words() {
        let mut bytes = vec![0u8; 20];
        let mut region = ByteRegion(&mut bytes);
        assert_eq!(region.len_words(), 2);
        region.write_word(1, 0xDEADBEEF);
        assert_eq!(region.read_word(1), 0xDEADBEEF);
        assert_eq!(region.read_word(0), 0);
    }
}
