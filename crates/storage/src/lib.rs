//! Persistent storage substrate for eider (§6 of the paper).
//!
//! "DuckDB uses a single-file storage format ... The storage file is
//! partitioned into fixed-size blocks of 256KB which are read and written
//! in their entirety. The first block contains a header that points to the
//! table catalog and a list of free blocks. ... Checkpoints will first
//! write new blocks that contain the updated data to the file and as a
//! last step update the root pointer and the free list in the header
//! atomically. ... As an exception, the WAL is written to a separate file
//! until consumed by a checkpoint."
//!
//! And from §3: "DuckDB computes and stores check sums of all blocks in
//! persistent storage and verifies this as blocks are read" — every block
//! (including headers, WAL records and spill chunks) carries a CRC-32C.
//!
//! Modules:
//! * [`block`] — block geometry and the checksummed on-disk block codec;
//! * [`file_manager`] — the single-file [`BlockManager`] with its
//!   double-buffered header providing the atomic root-pointer switch;
//! * [`meta`] — meta-block chains: logical byte streams spanning blocks;
//! * [`serde`] — hand-rolled binary encoding of values/vectors/chunks;
//! * [`wal`] — the write-ahead log (separate file, checksummed records);
//! * [`buffer`] — the buffer manager: memory accounting against the
//!   configured limit (§4) and allocation-time memory testing (§3);
//! * [`spill`] — checksummed chunk spill files for out-of-core operators.

pub mod block;
pub mod buffer;
pub mod file_manager;
pub mod meta;
pub mod serde;
pub mod spill;
pub mod wal;

pub use block::{BlockId, BLOCK_PAYLOAD, BLOCK_SIZE, INVALID_BLOCK};
pub use buffer::{BufferManager, BufferManagerConfig, MemoryReservation, TestedBuffer};
pub use file_manager::{
    BlockManager, DatabaseHeader, InMemoryBlockManager, SingleFileBlockManager,
};
pub use meta::{MetaBlockReader, MetaBlockWriter};
pub use spill::{SpillFile, SpillReader};
pub use wal::WriteAheadLog;
