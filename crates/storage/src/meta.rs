//! Meta-block chains: logical byte streams spanning multiple blocks.
//!
//! The catalog and table data written at a checkpoint rarely fit one block;
//! a meta chain stores an arbitrary byte stream as a linked list of blocks
//! whose payload starts with the next block id ([`INVALID_BLOCK`]
//! terminates the chain). The header's `meta_root` and `free_root` point at
//! such chains (§6: "the first block contains a header that points to the
//! table catalog and a list of free blocks").

use crate::block::{BlockId, BLOCK_PAYLOAD, INVALID_BLOCK};
use crate::file_manager::BlockManager;
use crate::serde::{BinReader, BinWriter};
use eider_vector::Result;

/// Usable data bytes per chain block (payload minus the next pointer and
/// the per-block data length).
const CHAIN_DATA: usize = BLOCK_PAYLOAD - 16;

/// Buffers a byte stream and writes it out as a block chain on `finish`.
pub struct MetaBlockWriter {
    pub writer: BinWriter,
}

impl Default for MetaBlockWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaBlockWriter {
    pub fn new() -> Self {
        MetaBlockWriter { writer: BinWriter::new() }
    }

    /// Write the buffered stream into freshly allocated blocks.
    /// Returns the first block id and the list of all blocks used.
    pub fn finish(self, mgr: &dyn BlockManager) -> Result<(BlockId, Vec<BlockId>)> {
        let data = self.writer.into_bytes();
        let nchunks = data.chunks(CHAIN_DATA).count().max(1);
        let ids: Vec<BlockId> = (0..nchunks).map(|_| mgr.allocate_block()).collect();
        let mut chunks: Vec<&[u8]> = data.chunks(CHAIN_DATA).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let next = ids.get(i + 1).copied().unwrap_or(INVALID_BLOCK);
            let mut payload = Vec::with_capacity(8 + 8 + chunk.len());
            payload.extend_from_slice(&next.to_le_bytes());
            payload.extend_from_slice(&(chunk.len() as u64).to_le_bytes());
            payload.extend_from_slice(chunk);
            mgr.write_block(ids[i], &payload)?;
        }
        Ok((ids[0], ids))
    }
}

/// Reads a block chain back into a contiguous byte buffer.
pub struct MetaBlockReader {
    data: Vec<u8>,
    /// The blocks the chain occupied (callers free them after a successful
    /// checkpoint supersedes the chain).
    pub blocks: Vec<BlockId>,
}

impl MetaBlockReader {
    pub fn read_chain(mgr: &dyn BlockManager, root: BlockId) -> Result<Self> {
        let mut data = Vec::new();
        let mut blocks = Vec::new();
        let mut current = root;
        while current != INVALID_BLOCK {
            let payload = mgr.read_block(current)?;
            blocks.push(current);
            let next = u64::from_le_bytes(payload[..8].try_into().expect("8"));
            let len = u64::from_le_bytes(payload[8..16].try_into().expect("8")) as usize;
            if len > CHAIN_DATA {
                return Err(eider_vector::EiderError::Corruption(format!(
                    "meta block {current} declares impossible data length {len}"
                )));
            }
            data.extend_from_slice(&payload[16..16 + len]);
            current = next;
            if blocks.len() > 10_000_000 {
                return Err(eider_vector::EiderError::Corruption(
                    "meta chain does not terminate (cycle?)".into(),
                ));
            }
        }
        Ok(MetaBlockReader { data, blocks })
    }

    pub fn reader(&self) -> BinReader<'_> {
        BinReader::new(&self.data)
    }

    pub fn into_data(self) -> Vec<u8> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file_manager::InMemoryBlockManager;

    #[test]
    fn small_stream_single_block() {
        let mgr = InMemoryBlockManager::new();
        let mut w = MetaBlockWriter::new();
        w.writer.write_str("catalog goes here");
        let (root, blocks) = w.finish(&mgr).unwrap();
        assert_eq!(blocks.len(), 1);
        let r = MetaBlockReader::read_chain(&mgr, root).unwrap();
        assert_eq!(r.reader().read_str().unwrap(), "catalog goes here");
        assert_eq!(r.blocks, blocks);
    }

    #[test]
    fn large_stream_spans_blocks() {
        let mgr = InMemoryBlockManager::new();
        let mut w = MetaBlockWriter::new();
        let big: Vec<u8> = (0..900_000u32).map(|i| (i % 251) as u8).collect();
        w.writer.write_bytes(&big);
        let (root, blocks) = w.finish(&mgr).unwrap();
        assert!(blocks.len() >= 4, "900KB must span >=4 256KiB blocks");
        let r = MetaBlockReader::read_chain(&mgr, root).unwrap();
        assert_eq!(r.reader().read_bytes().unwrap(), big.as_slice());
    }

    #[test]
    fn empty_stream_round_trips() {
        let mgr = InMemoryBlockManager::new();
        let (root, blocks) = MetaBlockWriter::new().finish(&mgr).unwrap();
        assert_eq!(blocks.len(), 1);
        let r = MetaBlockReader::read_chain(&mgr, root).unwrap();
        assert!(r.reader().is_exhausted());
    }

    #[test]
    fn invalid_root_reads_nothing() {
        let mgr = InMemoryBlockManager::new();
        let r = MetaBlockReader::read_chain(&mgr, INVALID_BLOCK).unwrap();
        assert!(r.blocks.is_empty());
        assert!(r.reader().is_exhausted());
    }

    #[test]
    fn corruption_mid_chain_detected() {
        let mgr = InMemoryBlockManager::new();
        let mut w = MetaBlockWriter::new();
        w.writer.write_bytes(&vec![0x11u8; 600_000]);
        let (root, blocks) = w.finish(&mgr).unwrap();
        mgr.corrupt_block(blocks[1], 4096 * 8 + 3);
        assert!(MetaBlockReader::read_chain(&mgr, root).is_err());
    }
}
