//! Block geometry and the checksummed block codec.
//!
//! Every on-disk block is exactly [`BLOCK_SIZE`] bytes: an 8-byte checksum
//! slot (CRC-32C of the payload, zero-extended to u64) followed by
//! [`BLOCK_PAYLOAD`] payload bytes. Blocks are read and written in their
//! entirety (§6), and the checksum is verified on every read (§3).

use eider_resilience::checksum::crc32c;
use eider_vector::{EiderError, Result};

/// Fixed block size: 256 KiB, per §6 of the paper.
pub const BLOCK_SIZE: usize = 256 * 1024;

/// Bytes of payload per block (block size minus the checksum slot).
pub const BLOCK_PAYLOAD: usize = BLOCK_SIZE - 8;

/// Index of a block within the database file.
pub type BlockId = u64;

/// Sentinel for "no block" (e.g. end of a meta-block chain).
pub const INVALID_BLOCK: BlockId = u64::MAX;

/// Encode `payload` into a full block image: checksum header + payload,
/// zero-padded to [`BLOCK_SIZE`]. Panics if the payload is oversized
/// (caller bug, not data-dependent).
pub fn encode_block(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= BLOCK_PAYLOAD,
        "payload of {} bytes exceeds block payload capacity {}",
        payload.len(),
        BLOCK_PAYLOAD
    );
    let mut buf = vec![0u8; BLOCK_SIZE];
    buf[8..8 + payload.len()].copy_from_slice(payload);
    let crc = crc32c(&buf[8..]);
    buf[..8].copy_from_slice(&u64::from(crc).to_le_bytes());
    buf
}

/// Verify a full block image and return its payload ([`BLOCK_PAYLOAD`]
/// bytes including padding). Fails with a `Corruption` error on checksum
/// mismatch — the silent-error detection §3 requires.
pub fn decode_block(buf: &[u8], id: BlockId) -> Result<Vec<u8>> {
    if buf.len() != BLOCK_SIZE {
        return Err(EiderError::Corruption(format!(
            "block {id} has size {} instead of {BLOCK_SIZE}",
            buf.len()
        )));
    }
    let stored = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
    let actual = u64::from(crc32c(&buf[8..]));
    if stored != actual {
        return Err(EiderError::Corruption(format!(
            "checksum mismatch on block {id}: stored {stored:#x}, computed {actual:#x} — \
             persistent storage corrupted this block"
        )));
    }
    Ok(buf[8..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let payload = vec![7u8; 1000];
        let block = encode_block(&payload);
        assert_eq!(block.len(), BLOCK_SIZE);
        let decoded = decode_block(&block, 3).unwrap();
        assert_eq!(&decoded[..1000], payload.as_slice());
        assert!(decoded[1000..].iter().all(|&b| b == 0));
    }

    #[test]
    fn empty_payload_round_trips() {
        let block = encode_block(&[]);
        let decoded = decode_block(&block, 0).unwrap();
        assert_eq!(decoded.len(), BLOCK_PAYLOAD);
    }

    #[test]
    fn bit_flip_in_payload_detected() {
        let mut block = encode_block(&[1, 2, 3, 4]);
        block[100] ^= 0x10;
        let err = decode_block(&block, 9).unwrap_err();
        assert!(err.is_integrity_error());
        assert!(err.to_string().contains("block 9"));
    }

    #[test]
    fn bit_flip_in_checksum_slot_detected() {
        let mut block = encode_block(&[1, 2, 3, 4]);
        block[0] ^= 1;
        assert!(decode_block(&block, 0).is_err());
    }

    #[test]
    fn bit_flip_in_padding_detected() {
        // The checksum covers padding too: corruption anywhere in the
        // 256 KiB image is caught, not only in the logical payload.
        let mut block = encode_block(&[1, 2, 3, 4]);
        block[BLOCK_SIZE - 1] ^= 0x80;
        assert!(decode_block(&block, 0).is_err());
    }

    #[test]
    fn short_block_rejected() {
        assert!(decode_block(&[0u8; 100], 0).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds block payload")]
    fn oversized_payload_panics() {
        encode_block(&vec![0u8; BLOCK_PAYLOAD + 1]);
    }
}
