//! The write-ahead log.
//!
//! §6: "the WAL is written to a separate file until consumed by a
//! checkpoint." Records are length-prefixed and CRC-32C-checksummed; on
//! replay the log is read until EOF or the first invalid record, which is
//! treated as the torn tail of an interrupted write (everything after it
//! was never acknowledged as committed, so discarding it is correct).
//!
//! This layer is agnostic about record *contents* — eider-core defines the
//! logical record encoding (create table, append chunk, delete rows, ...)
//! on top of these raw bytes.

use eider_resilience::checksum::crc32c;
use eider_vector::Result;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Append-only, checksummed record log.
pub struct WriteAheadLog {
    path: PathBuf,
    writer: BufWriter<File>,
    bytes_written: u64,
}

impl WriteAheadLog {
    /// Open (or create) the log at `path`, appending to existing content.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes_written = file.metadata()?.len();
        Ok(WriteAheadLog { path, writer: BufWriter::new(file), bytes_written })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes in the log (used to decide when to checkpoint).
    pub fn size_bytes(&self) -> u64 {
        self.bytes_written
    }

    /// Append one record: `[len: u32][crc32c: u32][payload]`.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        self.writer.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32c(payload).to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.bytes_written += 8 + payload.len() as u64;
        Ok(())
    }

    /// Flush buffered records and fsync — the durability point of commit.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }

    /// Truncate the log after a successful checkpoint consumed it.
    pub fn reset(&mut self) -> Result<()> {
        self.writer.flush()?;
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(0)?;
        file.sync_all()?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        self.bytes_written = 0;
        Ok(())
    }

    /// Read all complete, valid records from a log file. Stops cleanly at
    /// a torn tail. Returns the records and whether a torn/corrupt tail
    /// was encountered (so the caller can log it).
    pub fn replay(path: impl AsRef<Path>) -> Result<(Vec<Vec<u8>>, bool)> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok((Vec::new(), false));
        }
        let mut reader = BufReader::new(File::open(path)?);
        let mut records = Vec::new();
        let mut torn = false;
        loop {
            let mut header = [0u8; 8];
            match reader.read_exact(&mut header) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
            let len = u32::from_le_bytes(header[..4].try_into().expect("4")) as usize;
            let crc = u32::from_le_bytes(header[4..].try_into().expect("4"));
            // An implausible length means the header itself is garbage.
            if len > (1 << 31) {
                torn = true;
                break;
            }
            let mut payload = vec![0u8; len];
            match reader.read_exact(&mut payload) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    torn = true;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
            if crc32c(&payload) != crc {
                torn = true;
                break;
            }
            records.push(payload);
        }
        Ok((records, torn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eider_wal_{}_{name}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_sync_replay() {
        let path = tmp("basic");
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second record").unwrap();
            wal.append(&[]).unwrap();
            wal.sync().unwrap();
        }
        let (records, torn) = WriteAheadLog::replay(&path).unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], b"first");
        assert_eq!(records[1], b"second record");
        assert!(records[2].is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let (records, torn) = WriteAheadLog::replay("/nonexistent/x.wal").unwrap();
        assert!(records.is_empty());
        assert!(!torn);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmp("torn");
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            wal.append(b"committed").unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: write a partial record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap(); // claims 100 bytes
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(b"only twenty bytes...").unwrap();
        }
        let (records, torn) = WriteAheadLog::replay(&path).unwrap();
        assert!(torn);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], b"committed");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_record_detected_by_checksum() {
        let path = tmp("corrupt");
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            wal.append(b"record one that is long enough to corrupt").unwrap();
            wal.append(b"record two").unwrap();
            wal.sync().unwrap();
        }
        // Flip a bit inside record one's payload.
        {
            let mut data = std::fs::read(&path).unwrap();
            data[8 + 5] ^= 0x08;
            std::fs::write(&path, &data).unwrap();
        }
        let (records, torn) = WriteAheadLog::replay(&path).unwrap();
        assert!(torn);
        assert!(records.is_empty(), "corruption invalidates the record and the tail");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_truncates() {
        let path = tmp("reset");
        let mut wal = WriteAheadLog::open(&path).unwrap();
        wal.append(b"to be checkpointed").unwrap();
        wal.sync().unwrap();
        assert!(wal.size_bytes() > 0);
        wal.reset().unwrap();
        assert_eq!(wal.size_bytes(), 0);
        let (records, _) = WriteAheadLog::replay(&path).unwrap();
        assert!(records.is_empty());
        // Appending after reset still works.
        wal.append(b"new era").unwrap();
        wal.sync().unwrap();
        let (records, _) = WriteAheadLog::replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = tmp("reopen");
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            wal.append(b"one").unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            assert!(wal.size_bytes() > 0);
            wal.append(b"two").unwrap();
            wal.sync().unwrap();
        }
        let (records, _) = WriteAheadLog::replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
