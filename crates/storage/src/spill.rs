//! Chunk spill files for out-of-core operators.
//!
//! §4's cooperation story requires operators that can trade memory for
//! disk: the external sort and the out-of-core merge join write runs of
//! chunks to temporary files through this module. Spilled chunks carry the
//! same CRC-32C protection as database blocks — intermediate results
//! written back to storage are part of the §3 failure-mode chain ("if a
//! query result is written back to storage, a wrong query result will also
//! compromise the persistent data's integrity").

use crate::serde::{read_chunk, write_chunk, BinReader, BinWriter};
use eider_resilience::checksum::crc32c;
use eider_vector::{DataChunk, EiderError, Result};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_spill_path() -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "eider_spill_{}_{}.tmp",
        std::process::id(),
        SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

/// A write-phase spill file. Call [`SpillFile::finish`] to flip to reading.
pub struct SpillFile {
    path: PathBuf,
    writer: BufWriter<File>,
    chunks: u64,
    rows: u64,
}

impl SpillFile {
    /// Create a spill file in the system temp directory.
    pub fn create() -> Result<Self> {
        let path = temp_spill_path();
        let file = OpenOptions::new().create_new(true).write(true).open(&path)?;
        Ok(SpillFile { path, writer: BufWriter::new(file), chunks: 0, rows: 0 })
    }

    pub fn chunks_written(&self) -> u64 {
        self.chunks
    }

    pub fn rows_written(&self) -> u64 {
        self.rows
    }

    /// Append one chunk: `[len: u32][crc: u32][serialized chunk]`.
    pub fn write_chunk(&mut self, chunk: &DataChunk) -> Result<()> {
        let mut w = BinWriter::with_capacity(chunk.size_bytes() + 64);
        write_chunk(&mut w, chunk);
        let payload = w.into_bytes();
        self.writer.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32c(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.chunks += 1;
        self.rows += chunk.len() as u64;
        Ok(())
    }

    /// Finish writing and open the file for sequential reads.
    pub fn finish(mut self) -> Result<SpillReader> {
        self.writer.flush()?;
        let file = File::open(&self.path)?;
        let reader = SpillReader {
            path: std::mem::take(&mut self.path),
            reader: BufReader::new(file),
            remaining: self.chunks,
        };
        // Prevent our Drop from deleting the file the reader now owns.
        std::mem::forget(self);
        Ok(reader)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Sequential reader over a finished spill file; deletes it on drop.
pub struct SpillReader {
    path: PathBuf,
    reader: BufReader<File>,
    remaining: u64,
}

impl SpillReader {
    pub fn remaining_chunks(&self) -> u64 {
        self.remaining
    }

    /// Read the next chunk, verifying its checksum; `None` at end.
    pub fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut header = [0u8; 8];
        self.reader.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().expect("4")) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4"));
        let mut payload = vec![0u8; len];
        self.reader.read_exact(&mut payload)?;
        if crc32c(&payload) != crc {
            return Err(EiderError::Corruption(
                "spill file chunk failed checksum verification; \
                 intermediate data corrupted on disk"
                    .into(),
            ));
        }
        self.remaining -= 1;
        let chunk = read_chunk(&mut BinReader::new(&payload))?;
        Ok(Some(chunk))
    }
}

impl Drop for SpillReader {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_vector::{LogicalType, Value};

    fn chunk(start: i32, n: usize) -> DataChunk {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Integer(start + i as i32), Value::Varchar(format!("r{i}"))])
            .collect();
        DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Varchar], &rows).unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let mut spill = SpillFile::create().unwrap();
        spill.write_chunk(&chunk(0, 100)).unwrap();
        spill.write_chunk(&chunk(100, 50)).unwrap();
        assert_eq!(spill.chunks_written(), 2);
        assert_eq!(spill.rows_written(), 150);
        let mut reader = spill.finish().unwrap();
        let a = reader.next_chunk().unwrap().unwrap();
        assert_eq!(a.len(), 100);
        assert_eq!(a.row_values(0)[0], Value::Integer(0));
        let b = reader.next_chunk().unwrap().unwrap();
        assert_eq!(b.len(), 50);
        assert_eq!(b.row_values(0)[0], Value::Integer(100));
        assert!(reader.next_chunk().unwrap().is_none());
    }

    #[test]
    fn encoded_chunks_spill_smaller_and_stay_encoded() {
        use eider_vector::{Encoding, Vector};
        // A dictionary-friendly chunk: 2048 rows over 8 distinct strings
        // plus a runny integer column.
        let mut names = Vector::new(LogicalType::Varchar);
        let mut vals = Vector::new(LogicalType::Integer);
        for i in 0..2048 {
            names.push_value(&Value::Varchar(format!("name_{}", i % 8))).unwrap();
            vals.push_value(&Value::Integer(i / 256)).unwrap();
        }
        let plain = DataChunk::from_vectors(vec![names.clone(), vals.clone()]).unwrap();
        let encoded = DataChunk::from_vectors(vec![
            names.encode_auto().unwrap(),
            vals.encode_auto().unwrap(),
        ])
        .unwrap();

        let mut plain_spill = SpillFile::create().unwrap();
        plain_spill.write_chunk(&plain).unwrap();
        let plain_path = plain_spill.path.clone();
        let _plain_reader = plain_spill.finish().unwrap();
        let plain_size = std::fs::metadata(&plain_path).unwrap().len();

        let mut enc_spill = SpillFile::create().unwrap();
        enc_spill.write_chunk(&encoded).unwrap();
        let enc_path = enc_spill.path.clone();
        let mut enc_reader = enc_spill.finish().unwrap();
        let enc_size = std::fs::metadata(&enc_path).unwrap().len();

        assert!(
            enc_size * 2 < plain_size,
            "encoded spill {enc_size}B should be well under half of plain {plain_size}B"
        );
        // Spilled columns come back encoded and value-identical.
        let back = enc_reader.next_chunk().unwrap().unwrap();
        assert_eq!(back.column(0).encoding(), Encoding::Dict);
        assert_eq!(back.column(1).encoding(), Encoding::Rle);
        assert_eq!(back.to_rows(), plain.to_rows());
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let path;
        {
            let spill = SpillFile::create().unwrap();
            path = spill.path.clone();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn reader_removes_file_on_drop() {
        let mut spill = SpillFile::create().unwrap();
        spill.write_chunk(&chunk(0, 10)).unwrap();
        let path = spill.path.clone();
        let reader = spill.finish().unwrap();
        assert!(path.exists());
        drop(reader);
        assert!(!path.exists());
    }

    #[test]
    fn corrupted_spill_detected() {
        let mut spill = SpillFile::create().unwrap();
        spill.write_chunk(&chunk(0, 64)).unwrap();
        let path = spill.path.clone();
        // Flush, then corrupt the file on disk behind the reader's back.
        let mut reader = spill.finish().unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x20;
        std::fs::write(&path, &data).unwrap();
        let err = reader.next_chunk().unwrap_err();
        assert!(err.is_integrity_error());
    }

    #[test]
    fn empty_spill() {
        let spill = SpillFile::create().unwrap();
        let mut reader = spill.finish().unwrap();
        assert!(reader.next_chunk().unwrap().is_none());
    }
}
