//! Block managers: the single-file store of §6 plus an in-memory variant
//! for tests and transient databases.
//!
//! File layout (all slots are [`BLOCK_SIZE`] bytes, each checksummed):
//!
//! ```text
//! slot 0: main header   — magic, format version
//! slot 1: db header A   — iteration, meta root, free-list root, block count
//! slot 2: db header B   — ditto (double buffer)
//! slot 3..: data blocks — BlockId 0 maps to slot 3
//! ```
//!
//! A checkpoint writes all new data into free blocks, then writes the new
//! database header into the *older* of the two header slots and fsyncs:
//! the root-pointer switch is atomic because a torn header write fails its
//! checksum and the previous header remains valid ("as a last step update
//! the root pointer and the free list in the header atomically", §6).

use crate::block::{decode_block, encode_block, BlockId, BLOCK_SIZE, INVALID_BLOCK};
use eider_resilience::health::{FaultCategory, HealthMonitor};
use eider_vector::{EiderError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"EIDERDB\0";
const FORMAT_VERSION: u64 = 1;
/// Number of file slots before data blocks (main header + two db headers).
const RESERVED_SLOTS: u64 = 3;

/// The database header: everything needed to find the current consistent
/// snapshot of the database inside the single file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatabaseHeader {
    /// Monotonically increasing checkpoint counter; the header with the
    /// highest valid iteration wins at open.
    pub iteration: u64,
    /// First block of the meta chain holding catalog + table data, or
    /// [`INVALID_BLOCK`] for an empty database.
    pub meta_root: BlockId,
    /// First block of the meta chain holding the free list, or
    /// [`INVALID_BLOCK`].
    pub free_root: BlockId,
    /// Total data blocks in the file at checkpoint time.
    pub block_count: u64,
}

impl DatabaseHeader {
    fn empty() -> Self {
        DatabaseHeader {
            iteration: 0,
            meta_root: INVALID_BLOCK,
            free_root: INVALID_BLOCK,
            block_count: 0,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        buf.extend_from_slice(&self.iteration.to_le_bytes());
        buf.extend_from_slice(&self.meta_root.to_le_bytes());
        buf.extend_from_slice(&self.free_root.to_le_bytes());
        buf.extend_from_slice(&self.block_count.to_le_bytes());
        buf
    }

    fn decode(payload: &[u8]) -> Result<Self> {
        if payload.len() < 32 {
            return Err(EiderError::Corruption("database header too short".into()));
        }
        let f = |i: usize| u64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().expect("8"));
        Ok(DatabaseHeader { iteration: f(0), meta_root: f(1), free_root: f(2), block_count: f(3) })
    }
}

/// Abstraction over block storage so the checkpointer, meta chains and
/// tests can run against a file or against memory.
pub trait BlockManager: Send + Sync {
    /// Read and checksum-verify a block, returning its payload.
    fn read_block(&self, id: BlockId) -> Result<Vec<u8>>;
    /// Write a block payload (checksummed, padded to the full block).
    fn write_block(&self, id: BlockId, payload: &[u8]) -> Result<()>;
    /// Allocate a block id (from the free list or by growing the file).
    fn allocate_block(&self) -> BlockId;
    /// Return a block to the free list.
    fn free_block(&self, id: BlockId);
    /// Total data blocks ever allocated (high-water mark).
    fn block_count(&self) -> u64;
    /// Currently free (reusable) blocks.
    fn free_list(&self) -> Vec<BlockId>;
    /// Replace the free list (used after reading it back at open).
    fn restore_free_list(&self, free: Vec<BlockId>, block_count: u64);
    /// Flush everything to durable storage.
    fn sync(&self) -> Result<()>;
}

#[derive(Debug, Default)]
struct AllocState {
    free: Vec<BlockId>,
    max_block: u64,
}

impl AllocState {
    fn allocate(&mut self) -> BlockId {
        if let Some(id) = self.free.pop() {
            id
        } else {
            let id = self.max_block;
            self.max_block += 1;
            id
        }
    }
}

/// The single-file block manager of §6.
pub struct SingleFileBlockManager {
    file: Mutex<File>,
    path: PathBuf,
    state: Mutex<AllocState>,
    /// Which header slot (1 or 2) holds the *current* header.
    active_header_slot: Mutex<u64>,
    current_header: Mutex<DatabaseHeader>,
    health: Arc<HealthMonitor>,
}

impl std::fmt::Debug for SingleFileBlockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleFileBlockManager")
            .field("path", &self.path)
            .field("header", &*self.current_header.lock())
            .finish_non_exhaustive()
    }
}

impl SingleFileBlockManager {
    /// Create a fresh database file (fails if it already contains data).
    pub fn create(path: impl AsRef<Path>, health: Arc<HealthMonitor>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        // Main header.
        let mut main = Vec::with_capacity(16);
        main.extend_from_slice(MAGIC);
        main.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file.write_all(&encode_block(&main))?;
        // Header A: iteration 1, empty database. Header B: iteration 0.
        let mut h = DatabaseHeader::empty();
        h.iteration = 1;
        file.write_all(&encode_block(&h.encode()))?;
        file.write_all(&encode_block(&DatabaseHeader::empty().encode()))?;
        file.sync_all()?;
        Ok(SingleFileBlockManager {
            file: Mutex::new(file),
            path,
            state: Mutex::new(AllocState::default()),
            active_header_slot: Mutex::new(1),
            current_header: Mutex::new(h),
            health,
        })
    }

    /// Open an existing database file, validating the main header and
    /// picking the newest valid database header.
    pub fn open(path: impl AsRef<Path>, health: Arc<HealthMonitor>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let main = Self::read_slot(&mut file, 0)?;
        if &main[..8] != MAGIC {
            return Err(EiderError::Corruption(format!(
                "{} is not an eider database (bad magic)",
                path.display()
            )));
        }
        let version = u64::from_le_bytes(main[8..16].try_into().expect("8"));
        if version != FORMAT_VERSION {
            return Err(EiderError::Storage(format!(
                "unsupported format version {version} (expected {FORMAT_VERSION})"
            )));
        }
        // Read both header slots; tolerate one being corrupt (torn write on
        // the previous checkpoint) but not both.
        let ha = Self::read_slot(&mut file, 1).and_then(|p| DatabaseHeader::decode(&p));
        let hb = Self::read_slot(&mut file, 2).and_then(|p| DatabaseHeader::decode(&p));
        let (slot, header) = match (ha, hb) {
            (Ok(a), Ok(b)) => {
                if a.iteration >= b.iteration {
                    (1, a)
                } else {
                    (2, b)
                }
            }
            (Ok(a), Err(_)) => (1, a),
            (Err(_), Ok(b)) => (2, b),
            (Err(e), Err(_)) => {
                health.record_fault(FaultCategory::DiskCorruption);
                return Err(EiderError::Corruption(format!(
                    "both database headers are corrupt ({e}); the file is unrecoverable"
                )));
            }
        };
        Ok(SingleFileBlockManager {
            file: Mutex::new(file),
            path,
            state: Mutex::new(AllocState { free: Vec::new(), max_block: header.block_count }),
            active_header_slot: Mutex::new(slot),
            current_header: Mutex::new(header),
            health,
        })
    }

    fn read_slot(file: &mut File, slot: u64) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        file.seek(SeekFrom::Start(slot * BLOCK_SIZE as u64))?;
        file.read_exact(&mut buf)?;
        decode_block(&buf, slot)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn current_header(&self) -> DatabaseHeader {
        *self.current_header.lock()
    }

    pub fn health(&self) -> &Arc<HealthMonitor> {
        &self.health
    }

    /// Atomically install a new database header: write it to the inactive
    /// slot, fsync, then flip the active slot. A crash at any point leaves
    /// a valid header (old or new) discoverable at next open.
    pub fn write_header(&self, mut header: DatabaseHeader) -> Result<()> {
        // Data blocks of the new checkpoint image must be durable *before*
        // the header that references them.
        self.sync()?;
        let mut slot_guard = self.active_header_slot.lock();
        let target = if *slot_guard == 1 { 2 } else { 1 };
        header.iteration = self.current_header.lock().iteration + 1;
        header.block_count = self.state.lock().max_block;
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(target * BLOCK_SIZE as u64))?;
            file.write_all(&encode_block(&header.encode()))?;
            file.sync_all()?;
        }
        *slot_guard = target;
        *self.current_header.lock() = header;
        Ok(())
    }
}

impl BlockManager for SingleFileBlockManager {
    fn read_block(&self, id: BlockId) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start((RESERVED_SLOTS + id) * BLOCK_SIZE as u64))?;
            file.read_exact(&mut buf)?;
        }
        decode_block(&buf, id).inspect_err(|_e| {
            // A checksum mismatch on read is exactly the silent disk error
            // §3 warns about: record it so checking escalates.
            self.health.record_fault(FaultCategory::DiskCorruption);
        })
    }

    fn write_block(&self, id: BlockId, payload: &[u8]) -> Result<()> {
        let block = encode_block(payload);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start((RESERVED_SLOTS + id) * BLOCK_SIZE as u64))?;
        file.write_all(&block)?;
        Ok(())
    }

    fn allocate_block(&self) -> BlockId {
        self.state.lock().allocate()
    }

    fn free_block(&self, id: BlockId) {
        self.state.lock().free.push(id);
    }

    fn block_count(&self) -> u64 {
        self.state.lock().max_block
    }

    fn free_list(&self) -> Vec<BlockId> {
        self.state.lock().free.clone()
    }

    fn restore_free_list(&self, free: Vec<BlockId>, block_count: u64) {
        let mut st = self.state.lock();
        st.free = free;
        st.max_block = block_count;
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_all()?;
        Ok(())
    }
}

/// In-memory block manager for transient (`:memory:`) databases and tests.
/// Supports deliberate corruption via [`InMemoryBlockManager::corrupt_block`]
/// so resilience tests can exercise the read-verify path.
#[derive(Default)]
pub struct InMemoryBlockManager {
    blocks: Mutex<HashMap<BlockId, Vec<u8>>>,
    state: Mutex<AllocState>,
    health: Arc<HealthMonitor>,
}

impl InMemoryBlockManager {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_health(health: Arc<HealthMonitor>) -> Self {
        InMemoryBlockManager { health, ..Default::default() }
    }

    /// Flip one bit inside a stored block image (test hook standing in for
    /// silent disk corruption).
    pub fn corrupt_block(&self, id: BlockId, bit: usize) {
        let mut blocks = self.blocks.lock();
        let block = blocks.get_mut(&id).expect("corrupting nonexistent block");
        block[bit / 8] ^= 1 << (bit % 8);
    }
}

impl BlockManager for InMemoryBlockManager {
    fn read_block(&self, id: BlockId) -> Result<Vec<u8>> {
        let blocks = self.blocks.lock();
        let buf = blocks
            .get(&id)
            .ok_or_else(|| EiderError::Storage(format!("block {id} does not exist")))?;
        decode_block(buf, id).inspect_err(|_e| {
            self.health.record_fault(FaultCategory::DiskCorruption);
        })
    }

    fn write_block(&self, id: BlockId, payload: &[u8]) -> Result<()> {
        self.blocks.lock().insert(id, encode_block(payload));
        Ok(())
    }

    fn allocate_block(&self) -> BlockId {
        self.state.lock().allocate()
    }

    fn free_block(&self, id: BlockId) {
        self.blocks.lock().remove(&id);
        self.state.lock().free.push(id);
    }

    fn block_count(&self) -> u64 {
        self.state.lock().max_block
    }

    fn free_list(&self) -> Vec<BlockId> {
        self.state.lock().free.clone()
    }

    fn restore_free_list(&self, free: Vec<BlockId>, block_count: u64) {
        let mut st = self.state.lock();
        st.free = free;
        st.max_block = block_count;
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eider_test_{}_{name}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn create_open_round_trip() {
        let path = tmp_path("create_open");
        let health = Arc::new(HealthMonitor::new());
        {
            let mgr = SingleFileBlockManager::create(&path, health.clone()).unwrap();
            let id = mgr.allocate_block();
            mgr.write_block(id, b"hello blocks").unwrap();
            let mut h = mgr.current_header();
            h.meta_root = id;
            mgr.write_header(h).unwrap();
        }
        {
            let mgr = SingleFileBlockManager::open(&path, health).unwrap();
            let h = mgr.current_header();
            assert_eq!(h.iteration, 2);
            assert_eq!(h.meta_root, 0);
            assert_eq!(h.block_count, 1);
            let payload = mgr.read_block(0).unwrap();
            assert_eq!(&payload[..12], b"hello blocks");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_switch_alternates_slots() {
        let path = tmp_path("header_switch");
        let health = Arc::new(HealthMonitor::new());
        let mgr = SingleFileBlockManager::create(&path, health).unwrap();
        for i in 0..5 {
            let h = mgr.current_header();
            mgr.write_header(h).unwrap();
            assert_eq!(mgr.current_header().iteration, 2 + i);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_header_write_recovers_previous_checkpoint() {
        let path = tmp_path("torn_header");
        let health = Arc::new(HealthMonitor::new());
        {
            let mgr = SingleFileBlockManager::create(&path, health.clone()).unwrap();
            let mut h = mgr.current_header();
            h.meta_root = 7;
            mgr.write_header(h).unwrap(); // iteration 2 in slot 2
        }
        // Simulate a torn write of the *next* header (slot 1): garbage bytes.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(BLOCK_SIZE as u64)).unwrap();
            f.write_all(&vec![0xAB; 512]).unwrap();
        }
        let mgr = SingleFileBlockManager::open(&path, health).unwrap();
        assert_eq!(mgr.current_header().iteration, 2);
        assert_eq!(mgr.current_header().meta_root, 7);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn both_headers_corrupt_is_fatal() {
        let path = tmp_path("both_corrupt");
        let health = Arc::new(HealthMonitor::new());
        drop(SingleFileBlockManager::create(&path, health.clone()).unwrap());
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            for slot in [1u64, 2] {
                f.seek(SeekFrom::Start(slot * BLOCK_SIZE as u64 + 100)).unwrap();
                f.write_all(&[0xFF; 64]).unwrap();
            }
        }
        let err = SingleFileBlockManager::open(&path, health.clone()).unwrap_err();
        assert!(err.is_integrity_error());
        assert!(health.total_faults() > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn silent_block_corruption_detected_on_read() {
        let path = tmp_path("silent_corruption");
        let health = Arc::new(HealthMonitor::new());
        let mgr = SingleFileBlockManager::create(&path, health.clone()).unwrap();
        let id = mgr.allocate_block();
        mgr.write_block(id, &vec![0x5Au8; 1000]).unwrap();
        mgr.sync().unwrap();
        // Flip one bit in the middle of the block, bypassing the manager —
        // this is the "silent error" of §3.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(RESERVED_SLOTS * BLOCK_SIZE as u64 + 500)).unwrap();
            let mut b = [0u8; 1];
            // read-modify-write one byte
            let mut rf = OpenOptions::new().read(true).open(&path).unwrap();
            rf.seek(SeekFrom::Start(RESERVED_SLOTS * BLOCK_SIZE as u64 + 500)).unwrap();
            rf.read_exact(&mut b).unwrap();
            f.write_all(&[b[0] ^ 0x04]).unwrap();
        }
        let err = mgr.read_block(id).unwrap_err();
        assert!(err.is_integrity_error(), "got {err}");
        assert_eq!(health.disk_faults(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn free_list_reuses_blocks() {
        let mgr = InMemoryBlockManager::new();
        let a = mgr.allocate_block();
        let b = mgr.allocate_block();
        assert_ne!(a, b);
        mgr.free_block(a);
        let c = mgr.allocate_block();
        assert_eq!(c, a);
        assert_eq!(mgr.block_count(), 2);
    }

    #[test]
    fn in_memory_corruption_detected() {
        let health = Arc::new(HealthMonitor::new());
        let mgr = InMemoryBlockManager::with_health(health.clone());
        let id = mgr.allocate_block();
        mgr.write_block(id, b"payload").unwrap();
        mgr.corrupt_block(id, 12345);
        assert!(mgr.read_block(id).is_err());
        assert_eq!(health.disk_faults(), 1);
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let health = Arc::new(HealthMonitor::new());
        let err = SingleFileBlockManager::open("/nonexistent/eider.db", health).unwrap_err();
        assert!(matches!(err, EiderError::Io(_)));
    }

    #[test]
    fn open_non_database_file_rejected() {
        let path = tmp_path("not_a_db");
        std::fs::write(&path, vec![0u8; BLOCK_SIZE * 3]).unwrap();
        let health = Arc::new(HealthMonitor::new());
        assert!(SingleFileBlockManager::open(&path, health).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
