//! Calendar conversions for the DATE and TIMESTAMP physical encodings.
//!
//! DATE is stored as days since 1970-01-01, TIMESTAMP as microseconds since
//! 1970-01-01 00:00:00. The civil-from-days / days-from-civil conversions
//! use Howard Hinnant's proleptic-Gregorian algorithms, which are exact for
//! the full i32 range.

use crate::error::{EiderError, Result};

pub const MICROS_PER_SEC: i64 = 1_000_000;
pub const SECS_PER_DAY: i64 = 86_400;
pub const MICROS_PER_DAY: i64 = MICROS_PER_SEC * SECS_PER_DAY;

/// Days since the Unix epoch for a proleptic Gregorian calendar date.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Parse `YYYY-MM-DD` into days since the epoch.
pub fn parse_date(s: &str) -> Result<i32> {
    let err = || EiderError::TypeMismatch(format!("'{s}' is not a valid DATE (YYYY-MM-DD)"));
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let mut parts = body.splitn(3, '-');
    let y: i32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    let y = if neg { -y } else { y };
    let m: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    let d: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return Err(err());
    }
    let days = days_from_civil(y, m, d);
    i32::try_from(days).map_err(|_| err())
}

/// Format days since epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(i64::from(days));
    format!("{y:04}-{m:02}-{d:02}")
}

/// Parse `YYYY-MM-DD[ HH:MM:SS[.ffffff]]` into microseconds since epoch.
pub fn parse_timestamp(s: &str) -> Result<i64> {
    let err = || {
        EiderError::TypeMismatch(format!("'{s}' is not a valid TIMESTAMP (YYYY-MM-DD HH:MM:SS)"))
    };
    let s = s.trim();
    let (date_part, time_part) = match s.find([' ', 'T']) {
        Some(idx) => (&s[..idx], Some(&s[idx + 1..])),
        None => (s, None),
    };
    let days = i64::from(parse_date(date_part)?);
    let mut micros = days * MICROS_PER_DAY;
    if let Some(t) = time_part {
        let (hms, frac) = match t.find('.') {
            Some(idx) => (&t[..idx], Some(&t[idx + 1..])),
            None => (t, None),
        };
        let mut it = hms.splitn(3, ':');
        let h: i64 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let mi: i64 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let sec: i64 = match it.next() {
            Some(v) => v.parse().map_err(|_| err())?,
            None => 0,
        };
        if h > 23 || mi > 59 || sec > 59 {
            return Err(err());
        }
        micros += (h * 3600 + mi * 60 + sec) * MICROS_PER_SEC;
        if let Some(frac) = frac {
            if frac.is_empty() || frac.len() > 6 || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err());
            }
            let mut v: i64 = frac.parse().map_err(|_| err())?;
            for _ in frac.len()..6 {
                v *= 10;
            }
            micros += v;
        }
    }
    Ok(micros)
}

/// Format microseconds since epoch as `YYYY-MM-DD HH:MM:SS[.ffffff]`.
pub fn format_timestamp(micros: i64) -> String {
    let days = micros.div_euclid(MICROS_PER_DAY);
    let in_day = micros.rem_euclid(MICROS_PER_DAY);
    let (y, m, d) = civil_from_days(days);
    let secs = in_day / MICROS_PER_SEC;
    let frac = in_day % MICROS_PER_SEC;
    let (h, mi, s) = (secs / 3600, (secs / 60) % 60, secs % 60);
    if frac == 0 {
        format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    } else {
        format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}.{frac:06}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        assert_eq!(parse_date("2020-01-12").unwrap(), 18273); // CIDR'20 start
        assert_eq!(format_date(18273), "2020-01-12");
        assert_eq!(parse_date("1969-12-31").unwrap(), -1);
        assert_eq!(format_date(-1), "1969-12-31");
    }

    #[test]
    fn leap_years() {
        assert!(parse_date("2020-02-29").is_ok());
        assert!(parse_date("2019-02-29").is_err());
        assert!(parse_date("2000-02-29").is_ok());
        assert!(parse_date("1900-02-29").is_err());
    }

    #[test]
    fn invalid_dates_rejected() {
        for s in ["2020-13-01", "2020-00-10", "2020-04-31", "x", "2020-1", ""] {
            assert!(parse_date(s).is_err(), "{s} should be invalid");
        }
    }

    #[test]
    fn round_trip_every_day_for_decades() {
        for days in -20000..40000 {
            let s = format_date(days);
            assert_eq!(parse_date(&s).unwrap(), days, "mismatch for {s}");
        }
    }

    #[test]
    fn timestamps_round_trip() {
        for s in [
            "2020-01-12 00:00:00",
            "2020-01-12 23:59:59",
            "1969-12-31 23:59:59.000001",
            "2038-01-19 03:14:07.999999",
        ] {
            let us = parse_timestamp(s).unwrap();
            assert_eq!(format_timestamp(us), s);
        }
        // Date-only timestamps parse as midnight.
        assert_eq!(parse_timestamp("2020-01-12").unwrap(), 18273 * MICROS_PER_DAY);
    }

    #[test]
    fn invalid_timestamps_rejected() {
        for s in ["2020-01-12 24:00:00", "2020-01-12 00:61:00", "2020-01-12 00:00:00.1234567"] {
            assert!(parse_timestamp(s).is_err(), "{s} should be invalid");
        }
    }

    #[test]
    fn negative_timestamp_formatting_uses_euclidean_split() {
        let us = parse_timestamp("1969-12-31 12:00:00").unwrap();
        assert!(us < 0);
        assert_eq!(format_timestamp(us), "1969-12-31 12:00:00");
    }
}
