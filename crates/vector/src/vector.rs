//! A `Vector` is one column slice: up to [`crate::VECTOR_SIZE`] values of a
//! single logical type plus a validity mask.
//!
//! Internally a vector may hold its data in a compressed representation
//! (dictionary, run-length or frame-of-reference; see [`crate::encoding`]).
//! Plain-path callers are unaffected: [`Vector::data`] lazily decodes (and
//! caches) a flat copy, while compression-aware kernels query
//! [`Vector::encoding`] and use the typed part accessors to stay in the
//! compressed domain.

use crate::encoding::{choose, DictRepr, Encoding, ForRepr, Repr, RleRepr, StrDict};
use crate::error::{EiderError, Result};
use crate::selection::SelectionVector;
use crate::types::LogicalType;
use crate::validity::ValidityMask;
use crate::value::Value;
use std::sync::{Arc, OnceLock};

/// Typed storage behind a [`Vector`].
///
/// Temporal types share integer physical storage (`Date` -> `I32`,
/// `Timestamp` -> `I64`); the logical type lives on the `Vector`.
#[derive(Debug, Clone, PartialEq)]
pub enum VectorData {
    Bool(Vec<bool>),
    I8(Vec<i8>),
    I16(Vec<i16>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str(Vec<String>),
}

/// Apply `$body` to the inner `Vec` of any variant, binding it as `$v`.
macro_rules! for_each_variant {
    ($data:expr, $v:ident => $body:expr) => {
        match $data {
            VectorData::Bool($v) => $body,
            VectorData::I8($v) => $body,
            VectorData::I16($v) => $body,
            VectorData::I32($v) => $body,
            VectorData::I64($v) => $body,
            VectorData::F64($v) => $body,
            VectorData::Str($v) => $body,
        }
    };
}

/// Apply `$body` to same-variant pairs, binding them as `$d`/`$s`; runs
/// `$err` on a physical type mismatch.
macro_rules! for_each_pair {
    ($dst:expr, $src:expr, $d:ident, $s:ident => $body:expr, $err:expr) => {
        match ($dst, $src) {
            (VectorData::Bool($d), VectorData::Bool($s)) => $body,
            (VectorData::I8($d), VectorData::I8($s)) => $body,
            (VectorData::I16($d), VectorData::I16($s)) => $body,
            (VectorData::I32($d), VectorData::I32($s)) => $body,
            (VectorData::I64($d), VectorData::I64($s)) => $body,
            (VectorData::F64($d), VectorData::F64($s)) => $body,
            (VectorData::Str($d), VectorData::Str($s)) => $body,
            _ => $err,
        }
    };
}

impl VectorData {
    pub(crate) fn new_for(ty: LogicalType, cap: usize) -> VectorData {
        match ty {
            LogicalType::Boolean => VectorData::Bool(Vec::with_capacity(cap)),
            LogicalType::TinyInt => VectorData::I8(Vec::with_capacity(cap)),
            LogicalType::SmallInt => VectorData::I16(Vec::with_capacity(cap)),
            LogicalType::Integer | LogicalType::Date => VectorData::I32(Vec::with_capacity(cap)),
            LogicalType::BigInt | LogicalType::Timestamp => {
                VectorData::I64(Vec::with_capacity(cap))
            }
            LogicalType::Double => VectorData::F64(Vec::with_capacity(cap)),
            LogicalType::Varchar => VectorData::Str(Vec::with_capacity(cap)),
        }
    }

    pub fn len(&self) -> usize {
        for_each_variant!(self, v => v.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append the default value (what a NULL slot stores).
    pub(crate) fn push_default(&mut self) {
        match self {
            VectorData::Bool(v) => v.push(false),
            VectorData::I8(v) => v.push(0),
            VectorData::I16(v) => v.push(0),
            VectorData::I32(v) => v.push(0),
            VectorData::I64(v) => v.push(0),
            VectorData::F64(v) => v.push(0.0),
            VectorData::Str(v) => v.push(String::new()),
        }
    }

    pub(crate) fn truncate(&mut self, new_len: usize) {
        for_each_variant!(self, v => v.truncate(new_len))
    }

    /// Copy of the rows `[offset, end)`.
    pub(crate) fn slice_range(&self, offset: usize, end: usize) -> VectorData {
        for_each_variant!(self, v => {
            let mut out = Vec::with_capacity(end - offset);
            out.extend_from_slice(&v[offset..end]);
            rewrap(self, out)
        })
    }

    /// Gather-copy of the rows named by `idx`.
    #[allow(clippy::clone_on_copy)] // macro is generic over String variants
    pub(crate) fn gather(&self, idx: &[u32]) -> VectorData {
        for_each_variant!(self, v => {
            rewrap(self, idx.iter().map(|&i| v[i as usize].clone()).collect())
        })
    }

    /// Append `other`'s rows `[offset, end)`; errors on physical mismatch.
    pub(crate) fn extend_range(
        &mut self,
        other: &VectorData,
        offset: usize,
        end: usize,
    ) -> Result<()> {
        for_each_pair!(self, other, d, s => {
            d.extend_from_slice(&s[offset..end]);
            Ok(())
        }, Err(EiderError::Internal("physical type mismatch in append_from".into())))
    }

    /// Append row `row` of `other`; errors on physical mismatch.
    #[allow(clippy::clone_on_copy)] // macro is generic over String variants
    pub(crate) fn push_row(&mut self, other: &VectorData, row: usize) -> Result<()> {
        for_each_pair!(self, other, d, s => {
            d.push(s[row].clone());
            Ok(())
        }, Err(EiderError::Internal("physical type mismatch in push_from".into())))
    }

    /// Gather-append `other`'s rows named by `idx`; errors on mismatch.
    #[allow(clippy::clone_on_copy)] // macro is generic over String variants
    pub(crate) fn gather_from(&mut self, other: &VectorData, idx: &[u32]) -> Result<()> {
        for_each_pair!(self, other, d, s => {
            d.extend(idx.iter().map(|&i| s[i as usize].clone()));
            Ok(())
        }, Err(EiderError::Internal("physical type mismatch in append_selected".into())))
    }

    /// Heap footprint in bytes (capacity-based, matching `Vec` accounting).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            VectorData::Bool(v) => v.capacity(),
            VectorData::I8(v) => v.capacity(),
            VectorData::I16(v) => v.capacity() * 2,
            VectorData::I32(v) => v.capacity() * 4,
            VectorData::I64(v) => v.capacity() * 8,
            VectorData::F64(v) => v.capacity() * 8,
            VectorData::Str(v) => {
                v.capacity() * std::mem::size_of::<String>()
                    + v.iter().map(|s| s.capacity()).sum::<usize>()
            }
        }
    }
}

/// Re-wrap a collected `Vec` in the same variant as `like`.
fn rewrap<T>(like: &VectorData, out: Vec<T>) -> VectorData
where
    Vec<T>: IntoVectorData,
{
    out.into_vector_data(like)
}

/// Helper trait so [`rewrap`] can stay generic over element types.
pub(crate) trait IntoVectorData {
    fn into_vector_data(self, like: &VectorData) -> VectorData;
}

macro_rules! impl_into_vector_data {
    ($t:ty, $variant:ident) => {
        impl IntoVectorData for Vec<$t> {
            fn into_vector_data(self, like: &VectorData) -> VectorData {
                debug_assert!(matches!(like, VectorData::$variant(_)));
                VectorData::$variant(self)
            }
        }
    };
}

impl_into_vector_data!(bool, Bool);
impl_into_vector_data!(i8, I8);
impl_into_vector_data!(i16, I16);
impl_into_vector_data!(i32, I32);
impl_into_vector_data!(i64, I64);
impl_into_vector_data!(f64, F64);
impl_into_vector_data!(String, Str);

/// One column slice with NULL tracking.
#[derive(Debug)]
pub struct Vector {
    ty: LogicalType,
    repr: Repr,
    validity: ValidityMask,
    /// Lazily decoded flat copy of an encoded `repr` (never set for
    /// [`Repr::Flat`]). Cleared on mutation; skipped by `Clone`.
    decoded: OnceLock<Box<VectorData>>,
}

impl Clone for Vector {
    fn clone(&self) -> Self {
        // The decode cache is deliberately not cloned: clones are cheap
        // handles to the encoded data and re-decode only if they need to.
        Vector {
            ty: self.ty,
            repr: self.repr.clone(),
            validity: self.validity.clone(),
            decoded: OnceLock::new(),
        }
    }
}

impl PartialEq for Vector {
    /// Equality is representation-independent: an encoded vector equals a
    /// plain vector holding the same rows (including NULL-slot storage,
    /// which encodings preserve bit-identically).
    fn eq(&self, other: &Self) -> bool {
        self.ty == other.ty && self.validity == other.validity && self.data() == other.data()
    }
}

macro_rules! typed_accessors {
    ($as_ref:ident, $as_mut:ident, $variant:ident, $t:ty) => {
        /// Borrow the typed data slice (decoding first if the vector is
        /// encoded). Panics if the physical type differs (an internal
        /// invariant violation, not a user error).
        pub fn $as_ref(&self) -> &[$t] {
            match self.data() {
                VectorData::$variant(v) => v,
                other => panic!(
                    concat!("vector is not ", stringify!($variant), ": {:?}"),
                    std::mem::discriminant(other)
                ),
            }
        }

        /// Mutable access to the typed data (flattens any encoding). The
        /// caller must keep `validity` in sync with any length change.
        pub fn $as_mut(&mut self) -> &mut Vec<$t> {
            match self.flat_mut() {
                VectorData::$variant(v) => v,
                _ => panic!(concat!("vector is not ", stringify!($variant))),
            }
        }
    };
}

impl Vector {
    pub fn new(ty: LogicalType) -> Self {
        Vector::with_capacity(ty, 0)
    }

    pub fn with_capacity(ty: LogicalType, cap: usize) -> Self {
        Vector {
            ty,
            repr: Repr::Flat(VectorData::new_for(ty, cap)),
            validity: ValidityMask::default(),
            decoded: OnceLock::new(),
        }
    }

    /// Build from raw parts; `validity.len()` must match the data length.
    pub fn from_parts(ty: LogicalType, data: VectorData, validity: ValidityMask) -> Result<Self> {
        if data.len() != validity.len() {
            return Err(EiderError::Internal(format!(
                "vector data length {} != validity length {}",
                data.len(),
                validity.len()
            )));
        }
        Ok(Vector { ty, repr: Repr::Flat(data), validity, decoded: OnceLock::new() })
    }

    /// Build a dictionary-coded varchar vector from a shared dictionary
    /// and per-row codes.
    pub fn from_dict(
        ty: LogicalType,
        dict: Arc<StrDict>,
        codes: Vec<u32>,
        validity: ValidityMask,
    ) -> Result<Self> {
        if ty != LogicalType::Varchar {
            return Err(EiderError::Internal(format!("dictionary vector of type {ty}")));
        }
        if codes.len() != validity.len() {
            return Err(EiderError::Internal("dict codes length != validity length".into()));
        }
        if codes.iter().any(|&c| c as usize >= dict.len()) {
            return Err(EiderError::Corruption("dictionary code out of range".into()));
        }
        Ok(Vector {
            ty,
            repr: Repr::Dict(DictRepr { dict, codes }),
            validity,
            decoded: OnceLock::new(),
        })
    }

    /// Build a run-length-encoded vector: `values[i]` repeats over rows
    /// `starts[i] .. starts[i+1]` (last run ends at `len`).
    pub fn from_rle(
        ty: LogicalType,
        values: VectorData,
        starts: Vec<u32>,
        len: usize,
        validity: ValidityMask,
    ) -> Result<Self> {
        if validity.len() != len {
            return Err(EiderError::Internal("rle length != validity length".into()));
        }
        if values.len() != starts.len() {
            return Err(EiderError::Corruption("rle run values / starts mismatch".into()));
        }
        if len > 0 {
            let ascending = starts.windows(2).all(|w| w[0] < w[1]);
            if starts.first() != Some(&0)
                || !ascending
                || starts.last().is_some_and(|&s| s as usize >= len)
            {
                return Err(EiderError::Corruption("rle run starts malformed".into()));
            }
        } else if !starts.is_empty() {
            return Err(EiderError::Corruption("rle runs in empty vector".into()));
        }
        Ok(Vector {
            ty,
            repr: Repr::Rle(RleRepr { values: Box::new(values), starts, len }),
            validity,
            decoded: OnceLock::new(),
        })
    }

    /// Build a frame-of-reference vector: `row[i] = frame + deltas[i]`
    /// (physical I64).
    pub fn from_for(
        ty: LogicalType,
        frame: i64,
        deltas: Vec<u32>,
        validity: ValidityMask,
    ) -> Result<Self> {
        if !matches!(ty, LogicalType::BigInt | LogicalType::Timestamp) {
            return Err(EiderError::Internal(format!("frame-of-reference vector of type {ty}")));
        }
        if deltas.len() != validity.len() {
            return Err(EiderError::Internal("for deltas length != validity length".into()));
        }
        Ok(Vector {
            ty,
            repr: Repr::For(ForRepr { frame, deltas }),
            validity,
            decoded: OnceLock::new(),
        })
    }

    /// Build a vector from `Value`s, casting each to `ty`.
    pub fn from_values(ty: LogicalType, values: &[Value]) -> Result<Self> {
        let mut v = Vector::with_capacity(ty, values.len());
        for val in values {
            v.push_value(val)?;
        }
        Ok(v)
    }

    /// A vector holding `count` copies of `value`.
    pub fn constant(ty: LogicalType, value: &Value, count: usize) -> Result<Self> {
        let mut v = Vector::with_capacity(ty, count);
        for _ in 0..count {
            v.push_value(value)?;
        }
        Ok(v)
    }

    pub fn logical_type(&self) -> LogicalType {
        self.ty
    }

    pub fn len(&self) -> usize {
        self.repr.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn validity(&self) -> &ValidityMask {
        &self.validity
    }

    pub fn validity_mut(&mut self) -> &mut ValidityMask {
        &mut self.validity
    }

    /// The flat typed data. For an encoded vector this decodes once and
    /// caches the flat copy, so plain-path callers keep working unchanged.
    pub fn data(&self) -> &VectorData {
        match &self.repr {
            Repr::Flat(d) => d,
            repr => self.decoded.get_or_init(|| Box::new(repr.decode())),
        }
    }

    /// Which representation this vector currently uses.
    pub fn encoding(&self) -> Encoding {
        match &self.repr {
            Repr::Flat(_) => Encoding::Plain,
            Repr::Dict(_) => Encoding::Dict,
            Repr::Rle(_) => Encoding::Rle,
            Repr::For(_) => Encoding::For,
        }
    }

    pub fn is_encoded(&self) -> bool {
        !matches!(self.repr, Repr::Flat(_))
    }

    /// Dictionary parts `(dict, codes)` when dictionary-coded.
    pub fn dict_parts(&self) -> Option<(&Arc<StrDict>, &[u32])> {
        match &self.repr {
            Repr::Dict(d) => Some((&d.dict, &d.codes)),
            _ => None,
        }
    }

    /// RLE parts `(run_values, run_starts)` when run-length-encoded. Run
    /// `i` covers rows `starts[i] .. starts[i+1]` (last run ends at
    /// `self.len()`).
    pub fn rle_parts(&self) -> Option<(&VectorData, &[u32])> {
        match &self.repr {
            Repr::Rle(r) => Some((&r.values, &r.starts)),
            _ => None,
        }
    }

    /// FOR parts `(frame, deltas)` when frame-of-reference-encoded.
    pub fn for_parts(&self) -> Option<(i64, &[u32])> {
        match &self.repr {
            Repr::For(f) => Some((f.frame, &f.deltas)),
            _ => None,
        }
    }

    /// Distinct-count estimate from encoding metadata, free to read: the
    /// dictionary size for dict vectors (exact) and the run count for RLE
    /// (an upper bound). Plain and FOR vectors carry no such evidence.
    pub fn distinct_estimate(&self) -> Option<u64> {
        match &self.repr {
            Repr::Dict(d) => Some(d.dict.len() as u64),
            Repr::Rle(r) => Some(r.starts.len() as u64),
            _ => None,
        }
    }

    /// Run the stats-driven encoding chooser over this vector's data and
    /// return an encoded copy when an encoding pays, `None` when plain
    /// wins (see [`crate::encoding`] for the decision rules).
    pub fn encode_auto(&self) -> Option<Vector> {
        if self.is_encoded() {
            return None;
        }
        let repr = choose(self.data())?;
        Some(Vector {
            ty: self.ty,
            repr,
            validity: self.validity.clone(),
            decoded: OnceLock::new(),
        })
    }

    /// Flatten in place: decode any encoding so the vector is plain.
    pub fn flatten(&mut self) {
        if let Repr::Flat(_) = self.repr {
            return;
        }
        let data = match self.decoded.take() {
            Some(cached) => *cached,
            None => self.repr.decode(),
        };
        self.repr = Repr::Flat(data);
    }

    /// Mutable flat data, flattening and invalidating the decode cache.
    fn flat_mut(&mut self) -> &mut VectorData {
        self.flatten();
        match &mut self.repr {
            Repr::Flat(d) => d,
            _ => unreachable!("flatten left vector encoded"),
        }
    }

    pub fn is_null(&self, row: usize) -> bool {
        !self.validity.is_valid(row)
    }

    typed_accessors!(as_bool, as_bool_mut, Bool, bool);
    typed_accessors!(as_i8, as_i8_mut, I8, i8);
    typed_accessors!(as_i16, as_i16_mut, I16, i16);
    typed_accessors!(as_i32, as_i32_mut, I32, i32);
    typed_accessors!(as_i64, as_i64_mut, I64, i64);
    typed_accessors!(as_f64, as_f64_mut, F64, f64);
    typed_accessors!(as_str, as_str_mut, Str, String);

    /// Append one `Value`, casting it to this vector's type.
    pub fn push_value(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let ty = self.ty;
        let value =
            if value.logical_type() == Some(ty) { value.clone() } else { value.cast_to(ty)? };
        match (self.flat_mut(), value) {
            (VectorData::Bool(v), Value::Boolean(x)) => v.push(x),
            (VectorData::I8(v), Value::TinyInt(x)) => v.push(x),
            (VectorData::I16(v), Value::SmallInt(x)) => v.push(x),
            (VectorData::I32(v), Value::Integer(x)) => v.push(x),
            (VectorData::I32(v), Value::Date(x)) => v.push(x),
            (VectorData::I64(v), Value::BigInt(x)) => v.push(x),
            (VectorData::I64(v), Value::Timestamp(x)) => v.push(x),
            (VectorData::F64(v), Value::Double(x)) => v.push(x),
            (VectorData::Str(v), Value::Varchar(x)) => v.push(x),
            (_, v) => {
                return Err(EiderError::Internal(format!(
                    "cast produced {v:?} for vector of type {ty}"
                )))
            }
        }
        self.validity.push(true);
        Ok(())
    }

    /// Append a NULL (a default value occupies the data slot).
    pub fn push_null(&mut self) {
        self.flat_mut().push_default();
        self.validity.push(false);
    }

    /// Read one row out as a `Value` (slow path; kernels use typed slices).
    /// Encoded vectors answer without materializing.
    pub fn get_value(&self, row: usize) -> Value {
        if self.is_null(row) {
            return Value::Null;
        }
        match &self.repr {
            Repr::Flat(d) => value_at(d, self.ty, row),
            Repr::Dict(d) => Value::Varchar(d.dict.get(d.codes[row]).to_string()),
            Repr::Rle(r) => value_at(&r.values, self.ty, r.run_of(row)),
            Repr::For(f) => {
                let v = f.frame + f.deltas[row] as i64;
                if self.ty == LogicalType::Timestamp {
                    Value::Timestamp(v)
                } else {
                    Value::BigInt(v)
                }
            }
        }
    }

    /// Overwrite one row (used by in-place MVCC updates, §6). Flattens any
    /// encoding: point mutation invalidates shared compressed state.
    pub fn set_value(&mut self, row: usize, value: &Value) -> Result<()> {
        if value.is_null() {
            self.flatten();
            self.validity.set_invalid(row);
            return Ok(());
        }
        let ty = self.ty;
        let value = value.cast_to(ty)?;
        match (self.flat_mut(), value) {
            (VectorData::Bool(v), Value::Boolean(x)) => v[row] = x,
            (VectorData::I8(v), Value::TinyInt(x)) => v[row] = x,
            (VectorData::I16(v), Value::SmallInt(x)) => v[row] = x,
            (VectorData::I32(v), Value::Integer(x)) => v[row] = x,
            (VectorData::I32(v), Value::Date(x)) => v[row] = x,
            (VectorData::I64(v), Value::BigInt(x)) => v[row] = x,
            (VectorData::I64(v), Value::Timestamp(x)) => v[row] = x,
            (VectorData::F64(v), Value::Double(x)) => v[row] = x,
            (VectorData::Str(v), Value::Varchar(x)) => v[row] = x,
            (_, v) => {
                return Err(EiderError::Internal(format!(
                    "cast produced {v:?} for vector of type {ty}"
                )))
            }
        }
        self.validity.set_valid(row);
        Ok(())
    }

    /// Append `count` rows of `other` starting at `offset`. Types must
    /// match. Dictionary sources append in the compressed domain when the
    /// destination shares (or can adopt) the same dictionary.
    pub fn append_from(&mut self, other: &Vector, offset: usize, count: usize) -> Result<()> {
        if other.ty != self.ty {
            return Err(EiderError::TypeMismatch(format!(
                "cannot append {} vector to {} vector",
                other.ty, self.ty
            )));
        }
        let end = offset + count;
        if end > other.len() {
            return Err(EiderError::Internal("append_from range out of bounds".into()));
        }
        // An empty destination adopts the source's encoding wholesale.
        if self.is_empty() && other.is_encoded() {
            let sliced = other.slice(offset, count);
            *self = sliced;
            return Ok(());
        }
        if let (Repr::Dict(dst), Repr::Dict(src)) = (&mut self.repr, &other.repr) {
            if Arc::ptr_eq(&dst.dict, &src.dict) {
                dst.codes.extend_from_slice(&src.codes[offset..end]);
                self.decoded = OnceLock::new();
                self.validity.extend_from(&other.validity, offset, count);
                return Ok(());
            }
        }
        self.flat_mut().extend_range(other.data(), offset, end)?;
        self.validity.extend_from(&other.validity, offset, count);
        Ok(())
    }

    /// Append row `row` of `other` (same physical type) without routing
    /// through `Value` — the join's build-row gather path. Strings clone
    /// their bytes; everything else is a plain copy.
    pub fn push_from(&mut self, other: &Vector, row: usize) -> Result<()> {
        if let (Repr::Dict(dst), Repr::Dict(src)) = (&mut self.repr, &other.repr) {
            if Arc::ptr_eq(&dst.dict, &src.dict) {
                dst.codes.push(src.codes[row]);
                self.decoded = OnceLock::new();
                self.validity.push(other.validity.is_valid(row));
                return Ok(());
            }
        }
        self.flat_mut().push_row(other.data(), row)?;
        self.validity.push(other.validity.is_valid(row));
        Ok(())
    }

    /// Gather-append: push the rows of `other` named by `indexes` (types
    /// must match). Unlike [`Vector::select`] this appends to an existing
    /// vector, letting operators batch-materialize outputs.
    pub fn append_selected(&mut self, other: &Vector, indexes: &[u32]) -> Result<()> {
        if other.ty != self.ty {
            return Err(EiderError::TypeMismatch(format!(
                "cannot gather {} rows into {} vector",
                other.ty, self.ty
            )));
        }
        if self.is_empty() && other.is_encoded() {
            *self = other.select(&SelectionVector::from_indexes(indexes.to_vec()));
            return Ok(());
        }
        if let (Repr::Dict(dst), Repr::Dict(src)) = (&mut self.repr, &other.repr) {
            if Arc::ptr_eq(&dst.dict, &src.dict) {
                dst.codes.extend(indexes.iter().map(|&i| src.codes[i as usize]));
                self.decoded = OnceLock::new();
                self.push_selected_validity(other, indexes);
                return Ok(());
            }
        }
        self.flat_mut().gather_from(other.data(), indexes)?;
        self.push_selected_validity(other, indexes);
        Ok(())
    }

    fn push_selected_validity(&mut self, other: &Vector, indexes: &[u32]) {
        if other.validity.all_valid() {
            for _ in indexes {
                self.validity.push(true);
            }
        } else {
            for &i in indexes {
                self.validity.push(other.validity.is_valid(i as usize));
            }
        }
    }

    /// Materialize the rows chosen by `sel` into a new vector. Dictionary
    /// and FOR vectors gather codes/deltas and keep their encoding.
    pub fn select(&self, sel: &SelectionVector) -> Vector {
        let idx = sel.as_slice();
        let (repr, validity) = match &self.repr {
            Repr::Flat(d) => (Repr::Flat(d.gather(idx)), self.validity.select(idx)),
            Repr::Dict(d) => (
                Repr::Dict(DictRepr {
                    dict: Arc::clone(&d.dict),
                    codes: idx.iter().map(|&i| d.codes[i as usize]).collect(),
                }),
                self.validity.select(idx),
            ),
            Repr::For(f) => (
                Repr::For(ForRepr {
                    frame: f.frame,
                    deltas: idx.iter().map(|&i| f.deltas[i as usize]).collect(),
                }),
                self.validity.select(idx),
            ),
            // Arbitrary selections break runs; materialize.
            Repr::Rle(_) => (Repr::Flat(self.data().gather(idx)), self.validity.select(idx)),
        };
        Vector { ty: self.ty, repr, validity, decoded: OnceLock::new() }
    }

    /// A contiguous sub-slice `[offset, offset+count)` as a new vector.
    /// Encoded vectors slice in the compressed domain (RLE re-windows its
    /// runs), which is what keeps table scans compressed end to end.
    pub fn slice(&self, offset: usize, count: usize) -> Vector {
        let end = offset + count;
        assert!(end <= self.len(), "slice out of bounds");
        let mut validity = ValidityMask::default();
        validity.extend_from(&self.validity, offset, count);
        let repr = match &self.repr {
            Repr::Flat(d) => Repr::Flat(d.slice_range(offset, end)),
            Repr::Dict(d) => Repr::Dict(DictRepr {
                dict: Arc::clone(&d.dict),
                codes: d.codes[offset..end].to_vec(),
            }),
            Repr::For(f) => {
                Repr::For(ForRepr { frame: f.frame, deltas: f.deltas[offset..end].to_vec() })
            }
            Repr::Rle(r) => {
                if count == 0 {
                    Repr::Flat(VectorData::new_for(self.ty, 0))
                } else {
                    let first = r.run_of(offset);
                    let last = r.run_of(end - 1);
                    let starts = (first..=last)
                        .map(|i| (r.starts[i] as usize).max(offset) as u32 - offset as u32)
                        .collect();
                    Repr::Rle(RleRepr {
                        values: Box::new(r.values.slice_range(first, last + 1)),
                        starts,
                        len: count,
                    })
                }
            }
        };
        Vector { ty: self.ty, repr, validity, decoded: OnceLock::new() }
    }

    /// Cast every row to `ty`, erroring on the first failure.
    ///
    /// Infallible numeric widenings (e.g. `INTEGER → BIGINT`,
    /// `INTEGER → DOUBLE`) run as typed loops; everything that can fail
    /// or has value-level semantics (narrowing, strings, `DATE`/
    /// `TIMESTAMP` conversions, which rescale) takes the per-row path.
    /// A same-type cast is a clone and preserves any encoding.
    pub fn cast(&self, ty: LogicalType) -> Result<Vector> {
        if ty == self.ty {
            return Ok(self.clone());
        }
        if !matches!(self.ty, LogicalType::Date | LogicalType::Timestamp)
            && !matches!(ty, LogicalType::Date | LogicalType::Timestamp)
        {
            macro_rules! widen {
                ($v:expr, $variant:ident, $t:ty) => {
                    Some(VectorData::$variant($v.iter().map(|&x| x as $t).collect()))
                };
            }
            let data = match (self.data(), ty) {
                (VectorData::I8(v), LogicalType::SmallInt) => widen!(v, I16, i16),
                (VectorData::I8(v), LogicalType::Integer) => widen!(v, I32, i32),
                (VectorData::I8(v), LogicalType::BigInt) => widen!(v, I64, i64),
                (VectorData::I8(v), LogicalType::Double) => widen!(v, F64, f64),
                (VectorData::I16(v), LogicalType::Integer) => widen!(v, I32, i32),
                (VectorData::I16(v), LogicalType::BigInt) => widen!(v, I64, i64),
                (VectorData::I16(v), LogicalType::Double) => widen!(v, F64, f64),
                (VectorData::I32(v), LogicalType::BigInt) => widen!(v, I64, i64),
                (VectorData::I32(v), LogicalType::Double) => widen!(v, F64, f64),
                (VectorData::I64(v), LogicalType::Double) => widen!(v, F64, f64),
                _ => None,
            };
            if let Some(data) = data {
                return Vector::from_parts(ty, data, self.validity.clone());
            }
        }
        let mut out = Vector::with_capacity(ty, self.len());
        for row in 0..self.len() {
            out.push_value(&self.get_value(row))?;
        }
        Ok(out)
    }

    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len() {
            return;
        }
        match &mut self.repr {
            Repr::Flat(d) => d.truncate(new_len),
            Repr::Dict(d) => d.codes.truncate(new_len),
            Repr::For(f) => f.deltas.truncate(new_len),
            Repr::Rle(_) => {
                self.flatten();
                if let Repr::Flat(d) = &mut self.repr {
                    d.truncate(new_len);
                }
            }
        }
        self.decoded = OnceLock::new();
        self.validity.truncate(new_len);
    }

    pub fn clear(&mut self) {
        self.repr = Repr::Flat(VectorData::new_for(self.ty, 0));
        self.decoded = OnceLock::new();
        self.validity.clear();
    }

    /// Approximate heap footprint in bytes, for memory accounting (§4).
    /// Encoded vectors report their compressed footprint (dictionary bytes
    /// included, even when the dictionary is shared).
    pub fn size_bytes(&self) -> usize {
        let data = match &self.repr {
            Repr::Flat(d) => d.heap_bytes(),
            Repr::Dict(d) => d.codes.capacity() * 4 + d.dict.size_bytes(),
            Repr::Rle(r) => r.values.heap_bytes() + r.starts.capacity() * 4,
            Repr::For(f) => f.deltas.capacity() * 4 + 8,
        };
        data + self.len().div_ceil(8)
    }

    /// Min and max over valid rows, or `None` if all rows are NULL. This
    /// powers the per-row-group zone maps used for scan skipping (§6:
    /// "skip irrelevant blocks of rows during a scan").
    pub fn min_max(&self) -> Option<(Value, Value)> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for row in 0..self.len() {
            if self.is_null(row) {
                continue;
            }
            let v = self.get_value(row);
            match &min {
                None => {
                    min = Some(v.clone());
                    max = Some(v);
                }
                Some(_) => {
                    if v.total_cmp(min.as_ref().unwrap()) == std::cmp::Ordering::Less {
                        min = Some(v.clone());
                    }
                    if v.total_cmp(max.as_ref().unwrap()) == std::cmp::Ordering::Greater {
                        max = Some(v);
                    }
                }
            }
        }
        min.zip(max)
    }

    /// Collect all rows as values (testing / display convenience).
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.get_value(i)).collect()
    }
}

/// Read row `row` of flat data as a `Value` under logical type `ty`.
/// Public so compressed-domain kernels (e.g. per-run predicate
/// evaluation over [`Vector::rle_parts`]) can lift run values without
/// materializing the whole vector.
pub fn value_at(data: &VectorData, ty: LogicalType, row: usize) -> Value {
    match (data, ty) {
        (VectorData::Bool(v), _) => Value::Boolean(v[row]),
        (VectorData::I8(v), _) => Value::TinyInt(v[row]),
        (VectorData::I16(v), _) => Value::SmallInt(v[row]),
        (VectorData::I32(v), LogicalType::Date) => Value::Date(v[row]),
        (VectorData::I32(v), _) => Value::Integer(v[row]),
        (VectorData::I64(v), LogicalType::Timestamp) => Value::Timestamp(v[row]),
        (VectorData::I64(v), _) => Value::BigInt(v[row]),
        (VectorData::F64(v), _) => Value::Double(v[row]),
        (VectorData::Str(v), _) => Value::Varchar(v[row].clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip_all_types() {
        let cases: Vec<(LogicalType, Value)> = vec![
            (LogicalType::Boolean, Value::Boolean(true)),
            (LogicalType::TinyInt, Value::TinyInt(-3)),
            (LogicalType::SmallInt, Value::SmallInt(300)),
            (LogicalType::Integer, Value::Integer(-70000)),
            (LogicalType::BigInt, Value::BigInt(1 << 40)),
            (LogicalType::Double, Value::Double(2.5)),
            (LogicalType::Varchar, Value::Varchar("duck".into())),
            (LogicalType::Date, Value::Date(18273)),
            (LogicalType::Timestamp, Value::Timestamp(1_600_000_000_000_000)),
        ];
        for (ty, val) in cases {
            let mut v = Vector::new(ty);
            v.push_value(&val).unwrap();
            v.push_null();
            assert_eq!(v.get_value(0), val, "{ty}");
            assert!(v.get_value(1).is_null());
            assert_eq!(v.len(), 2);
        }
    }

    #[test]
    fn push_value_casts() {
        let mut v = Vector::new(LogicalType::BigInt);
        v.push_value(&Value::Integer(7)).unwrap();
        assert_eq!(v.get_value(0), Value::BigInt(7));
        let mut v = Vector::new(LogicalType::TinyInt);
        assert!(v.push_value(&Value::Integer(1000)).is_err());
    }

    #[test]
    fn select_materializes_subset() {
        let v = Vector::from_values(
            LogicalType::Integer,
            &[Value::Integer(10), Value::Null, Value::Integer(30), Value::Integer(40)],
        )
        .unwrap();
        let sel = SelectionVector::from_indexes(vec![3, 1, 0]);
        let out = v.select(&sel);
        assert_eq!(out.to_values(), vec![Value::Integer(40), Value::Null, Value::Integer(10)]);
    }

    #[test]
    fn append_from_preserves_validity() {
        let src = Vector::from_values(
            LogicalType::Varchar,
            &[Value::Varchar("a".into()), Value::Null, Value::Varchar("c".into())],
        )
        .unwrap();
        let mut dst = Vector::new(LogicalType::Varchar);
        dst.append_from(&src, 1, 2).unwrap();
        assert_eq!(dst.len(), 2);
        assert!(dst.get_value(0).is_null());
        assert_eq!(dst.get_value(1), Value::Varchar("c".into()));
    }

    #[test]
    fn append_type_mismatch_errors() {
        let src = Vector::new(LogicalType::Integer);
        let mut dst = Vector::new(LogicalType::BigInt);
        assert!(dst.append_from(&src, 0, 0).is_err());
    }

    #[test]
    fn set_value_in_place() {
        let mut v =
            Vector::from_values(LogicalType::Integer, &[Value::Integer(1), Value::Integer(2)])
                .unwrap();
        v.set_value(0, &Value::Integer(-999)).unwrap();
        v.set_value(1, &Value::Null).unwrap();
        assert_eq!(v.get_value(0), Value::Integer(-999));
        assert!(v.get_value(1).is_null());
        // Un-NULL a row again.
        v.set_value(1, &Value::Integer(5)).unwrap();
        assert_eq!(v.get_value(1), Value::Integer(5));
    }

    #[test]
    fn min_max_ignores_nulls() {
        let v = Vector::from_values(
            LogicalType::Integer,
            &[Value::Null, Value::Integer(5), Value::Integer(-2), Value::Null],
        )
        .unwrap();
        let (min, max) = v.min_max().unwrap();
        assert_eq!(min, Value::Integer(-2));
        assert_eq!(max, Value::Integer(5));
        let all_null = Vector::from_values(LogicalType::Integer, &[Value::Null]).unwrap();
        assert!(all_null.min_max().is_none());
    }

    #[test]
    fn widening_casts_match_value_casts() {
        // The typed widening kernels must agree with the per-row
        // Value::cast_to path, including NULL slots.
        let cases: Vec<(LogicalType, Vec<Value>, Vec<LogicalType>)> = vec![
            (
                LogicalType::TinyInt,
                vec![Value::TinyInt(-3), Value::Null, Value::TinyInt(7)],
                vec![
                    LogicalType::SmallInt,
                    LogicalType::Integer,
                    LogicalType::BigInt,
                    LogicalType::Double,
                ],
            ),
            (
                LogicalType::Integer,
                vec![Value::Integer(i32::MIN), Value::Null, Value::Integer(i32::MAX)],
                vec![LogicalType::BigInt, LogicalType::Double],
            ),
            (
                LogicalType::BigInt,
                vec![Value::BigInt(1 << 40), Value::Null],
                vec![LogicalType::Double],
            ),
        ];
        for (from, vals, targets) in cases {
            let v = Vector::from_values(from, &vals).unwrap();
            for to in targets {
                let fast = v.cast(to).unwrap();
                let slow: Vec<Value> = vals.iter().map(|x| x.cast_to(to).unwrap()).collect();
                assert_eq!(fast.to_values(), slow, "{from} -> {to}");
            }
        }
        // Date/Timestamp conversions rescale and must NOT take the
        // widening kernel.
        let d = Vector::from_values(LogicalType::Date, &[Value::Date(2)]).unwrap();
        let ts = d.cast(LogicalType::Timestamp).unwrap();
        assert_eq!(ts.get_value(0), Value::Date(2).cast_to(LogicalType::Timestamp).unwrap());
    }

    #[test]
    fn cast_vector() {
        let v = Vector::from_values(
            LogicalType::Integer,
            &[Value::Integer(1), Value::Null, Value::Integer(3)],
        )
        .unwrap();
        let c = v.cast(LogicalType::Varchar).unwrap();
        assert_eq!(c.get_value(0), Value::Varchar("1".into()));
        assert!(c.get_value(1).is_null());
    }

    #[test]
    fn slice_is_contiguous_copy() {
        let v = Vector::from_values(
            LogicalType::Integer,
            (0..10).map(Value::Integer).collect::<Vec<_>>().as_slice(),
        )
        .unwrap();
        let s = v.slice(4, 3);
        assert_eq!(s.to_values(), vec![Value::Integer(4), Value::Integer(5), Value::Integer(6)]);
    }

    #[test]
    fn constant_vector() {
        let v = Vector::constant(LogicalType::Integer, &Value::Integer(7), 5).unwrap();
        assert_eq!(v.len(), 5);
        assert!(v.to_values().iter().all(|x| *x == Value::Integer(7)));
        let n = Vector::constant(LogicalType::Integer, &Value::Null, 3).unwrap();
        assert_eq!(n.validity().count_invalid(), 3);
    }

    // ---------------- encoded representations ----------------

    fn varchar(vals: &[&str]) -> Vector {
        Vector::from_values(
            LogicalType::Varchar,
            &vals.iter().map(|s| Value::Varchar(s.to_string())).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    /// A low-cardinality varchar column long enough to dictionary-encode.
    fn dict_fixture() -> (Vector, Vector) {
        let vals: Vec<String> = (0..256).map(|i| format!("name_{}", i % 7)).collect();
        let plain = Vector::from_values(
            LogicalType::Varchar,
            &vals.iter().map(|s| Value::Varchar(s.clone())).collect::<Vec<_>>(),
        )
        .unwrap();
        let encoded = plain.encode_auto().expect("low cardinality must dictionary-encode");
        (plain, encoded)
    }

    #[test]
    fn chooser_adapts_to_cardinality() {
        // Low-cardinality: 7 distinct over 256 rows -> dictionary.
        let (_, encoded) = dict_fixture();
        assert_eq!(encoded.encoding(), Encoding::Dict);
        assert_eq!(encoded.dict_parts().unwrap().0.len(), 7);
        // High-cardinality: all distinct -> stays plain.
        let vals: Vec<Value> = (0..256).map(|i| Value::Varchar(format!("unique_{i}"))).collect();
        let high = Vector::from_values(LogicalType::Varchar, &vals).unwrap();
        assert!(high.encode_auto().is_none(), "high-cardinality varchar must stay plain");
        // Short vectors never encode.
        let short = varchar(&["a"; 8]);
        assert!(short.encode_auto().is_none());
    }

    #[test]
    fn chooser_picks_rle_for_runny_ints() {
        let vals: Vec<Value> = (0..512).map(|i| Value::Integer(i / 128)).collect();
        let v = Vector::from_values(LogicalType::Integer, &vals).unwrap();
        let e = v.encode_auto().unwrap();
        assert_eq!(e.encoding(), Encoding::Rle);
        let (runs, starts) = e.rle_parts().unwrap();
        assert_eq!(runs.len(), 4);
        assert_eq!(starts, &[0, 128, 256, 384]);
        assert_eq!(e.data(), v.data());
        // High-churn ints stay plain.
        let vals: Vec<Value> = (0..512).map(Value::Integer).collect();
        let v = Vector::from_values(LogicalType::Integer, &vals).unwrap();
        assert!(v.encode_auto().is_none());
    }

    #[test]
    fn chooser_picks_for_when_range_fits() {
        let base = 1_600_000_000_000_000i64;
        let vals: Vec<Value> = (0..256).map(|i| Value::BigInt(base + (i * 37) % 1000)).collect();
        let v = Vector::from_values(LogicalType::BigInt, &vals).unwrap();
        let e = v.encode_auto().unwrap();
        assert_eq!(e.encoding(), Encoding::For);
        let (frame, deltas) = e.for_parts().unwrap();
        assert_eq!(frame, base);
        assert_eq!(deltas.len(), 256);
        assert_eq!(e.data(), v.data());
        // A range wider than u32 stays plain.
        let wide = Vector::from_values(
            LogicalType::BigInt,
            &(0..128).map(|i| Value::BigInt(i * (1i64 << 33))).collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(wide.encode_auto().is_none());
    }

    #[test]
    fn encoded_vectors_equal_plain_and_round_trip() {
        let (plain, encoded) = dict_fixture();
        assert_eq!(plain, encoded, "encoded vector must equal its plain source");
        assert_eq!(encoded.to_values(), plain.to_values());
        assert_eq!(encoded.data(), plain.data());
        // Flatten restores a plain representation with identical rows.
        let mut flat = encoded.clone();
        flat.flatten();
        assert_eq!(flat.encoding(), Encoding::Plain);
        assert_eq!(flat, plain);
    }

    #[test]
    fn encoded_slice_and_select_stay_compressed() {
        let (plain, encoded) = dict_fixture();
        let s = encoded.slice(10, 100);
        assert_eq!(s.encoding(), Encoding::Dict);
        assert_eq!(s.to_values(), plain.slice(10, 100).to_values());
        let sel = SelectionVector::from_indexes((0..256).step_by(3).collect());
        let g = encoded.select(&sel);
        assert_eq!(g.encoding(), Encoding::Dict);
        assert_eq!(g.to_values(), plain.select(&sel).to_values());
    }

    #[test]
    fn rle_slice_rewindows_runs() {
        let vals: Vec<Value> = (0..512).map(|i| Value::Integer(i / 100)).collect();
        let plain = Vector::from_values(LogicalType::Integer, &vals).unwrap();
        let e = plain.encode_auto().unwrap();
        assert_eq!(e.encoding(), Encoding::Rle);
        // A window crossing run boundaries re-windows without decoding.
        let s = e.slice(150, 200);
        assert_eq!(s.encoding(), Encoding::Rle);
        assert_eq!(s.to_values(), plain.slice(150, 200).to_values());
        let (_, starts) = s.rle_parts().unwrap();
        assert_eq!(starts[0], 0);
        // A window inside one run is a single run.
        let inner = e.slice(110, 50);
        assert_eq!(inner.rle_parts().unwrap().1.len(), 1);
        assert_eq!(inner.to_values(), plain.slice(110, 50).to_values());
    }

    #[test]
    fn encoded_append_paths() {
        let (plain, encoded) = dict_fixture();
        // Empty destination adopts the dictionary.
        let mut dst = Vector::new(LogicalType::Varchar);
        dst.append_from(&encoded, 0, 128).unwrap();
        assert_eq!(dst.encoding(), Encoding::Dict);
        // Same-dictionary appends stay in the compressed domain.
        dst.append_from(&encoded, 128, 128).unwrap();
        assert_eq!(dst.encoding(), Encoding::Dict);
        assert_eq!(dst.to_values(), plain.to_values());
        // push_from with a shared dictionary pushes a code.
        dst.push_from(&encoded, 0).unwrap();
        assert_eq!(dst.encoding(), Encoding::Dict);
        assert_eq!(dst.get_value(256), plain.get_value(0));
        // Appending to a non-empty plain vector flattens the source rows.
        let mut mixed = varchar(&["x"]);
        mixed.append_from(&encoded, 0, 4).unwrap();
        assert_eq!(mixed.encoding(), Encoding::Plain);
        assert_eq!(mixed.len(), 5);
    }

    #[test]
    fn mutation_flattens_encoded_vectors() {
        let (_, encoded) = dict_fixture();
        let mut v = encoded.clone();
        v.set_value(0, &Value::Varchar("patched".into())).unwrap();
        assert_eq!(v.encoding(), Encoding::Plain);
        assert_eq!(v.get_value(0), Value::Varchar("patched".into()));
        let mut v = encoded.clone();
        v.push_value(&Value::Varchar("tail".into())).unwrap();
        assert_eq!(v.encoding(), Encoding::Plain);
        assert_eq!(v.len(), 257);
        // Truncate keeps the dictionary encoding (codes shrink).
        let mut v = encoded.clone();
        v.truncate(10);
        assert_eq!(v.encoding(), Encoding::Dict);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn encoding_preserves_null_slots() {
        let mut vals = Vec::new();
        for i in 0..256 {
            if i % 5 == 0 {
                vals.push(Value::Null);
            } else {
                vals.push(Value::Varchar(format!("v{}", i % 3)));
            }
        }
        let plain = Vector::from_values(LogicalType::Varchar, &vals).unwrap();
        let e = plain.encode_auto().unwrap();
        assert_eq!(e.encoding(), Encoding::Dict);
        assert_eq!(e, plain);
        assert_eq!(e.validity().count_invalid(), plain.validity().count_invalid());
    }

    #[test]
    fn encoded_size_is_smaller() {
        let (plain, encoded) = dict_fixture();
        assert!(
            encoded.size_bytes() < plain.size_bytes(),
            "dict {} must be under plain {}",
            encoded.size_bytes(),
            plain.size_bytes()
        );
    }
}
