//! A `Vector` is one column slice: up to [`crate::VECTOR_SIZE`] values of a
//! single logical type plus a validity mask.

use crate::error::{EiderError, Result};
use crate::selection::SelectionVector;
use crate::types::LogicalType;
use crate::validity::ValidityMask;
use crate::value::Value;

/// Typed storage behind a [`Vector`].
///
/// Temporal types share integer physical storage (`Date` -> `I32`,
/// `Timestamp` -> `I64`); the logical type lives on the `Vector`.
#[derive(Debug, Clone, PartialEq)]
pub enum VectorData {
    Bool(Vec<bool>),
    I8(Vec<i8>),
    I16(Vec<i16>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str(Vec<String>),
}

impl VectorData {
    fn new_for(ty: LogicalType, cap: usize) -> VectorData {
        match ty {
            LogicalType::Boolean => VectorData::Bool(Vec::with_capacity(cap)),
            LogicalType::TinyInt => VectorData::I8(Vec::with_capacity(cap)),
            LogicalType::SmallInt => VectorData::I16(Vec::with_capacity(cap)),
            LogicalType::Integer | LogicalType::Date => VectorData::I32(Vec::with_capacity(cap)),
            LogicalType::BigInt | LogicalType::Timestamp => {
                VectorData::I64(Vec::with_capacity(cap))
            }
            LogicalType::Double => VectorData::F64(Vec::with_capacity(cap)),
            LogicalType::Varchar => VectorData::Str(Vec::with_capacity(cap)),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            VectorData::Bool(v) => v.len(),
            VectorData::I8(v) => v.len(),
            VectorData::I16(v) => v.len(),
            VectorData::I32(v) => v.len(),
            VectorData::I64(v) => v.len(),
            VectorData::F64(v) => v.len(),
            VectorData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One column slice with NULL tracking.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    ty: LogicalType,
    data: VectorData,
    validity: ValidityMask,
}

macro_rules! typed_accessors {
    ($as_ref:ident, $as_mut:ident, $variant:ident, $t:ty) => {
        /// Borrow the typed data slice. Panics if the physical type differs
        /// (an internal invariant violation, not a user error).
        pub fn $as_ref(&self) -> &[$t] {
            match &self.data {
                VectorData::$variant(v) => v,
                other => panic!(
                    concat!("vector is not ", stringify!($variant), ": {:?}"),
                    std::mem::discriminant(other)
                ),
            }
        }

        /// Mutable access to the typed data. The caller must keep `validity`
        /// in sync with any length change.
        pub fn $as_mut(&mut self) -> &mut Vec<$t> {
            match &mut self.data {
                VectorData::$variant(v) => v,
                _ => panic!(concat!("vector is not ", stringify!($variant))),
            }
        }
    };
}

impl Vector {
    pub fn new(ty: LogicalType) -> Self {
        Vector::with_capacity(ty, 0)
    }

    pub fn with_capacity(ty: LogicalType, cap: usize) -> Self {
        Vector { ty, data: VectorData::new_for(ty, cap), validity: ValidityMask::default() }
    }

    /// Build from raw parts; `validity.len()` must match the data length.
    pub fn from_parts(ty: LogicalType, data: VectorData, validity: ValidityMask) -> Result<Self> {
        if data.len() != validity.len() {
            return Err(EiderError::Internal(format!(
                "vector data length {} != validity length {}",
                data.len(),
                validity.len()
            )));
        }
        Ok(Vector { ty, data, validity })
    }

    /// Build a vector from `Value`s, casting each to `ty`.
    pub fn from_values(ty: LogicalType, values: &[Value]) -> Result<Self> {
        let mut v = Vector::with_capacity(ty, values.len());
        for val in values {
            v.push_value(val)?;
        }
        Ok(v)
    }

    /// A vector holding `count` copies of `value`.
    pub fn constant(ty: LogicalType, value: &Value, count: usize) -> Result<Self> {
        let mut v = Vector::with_capacity(ty, count);
        for _ in 0..count {
            v.push_value(value)?;
        }
        Ok(v)
    }

    pub fn logical_type(&self) -> LogicalType {
        self.ty
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn validity(&self) -> &ValidityMask {
        &self.validity
    }

    pub fn validity_mut(&mut self) -> &mut ValidityMask {
        &mut self.validity
    }

    pub fn data(&self) -> &VectorData {
        &self.data
    }

    pub fn is_null(&self, row: usize) -> bool {
        !self.validity.is_valid(row)
    }

    typed_accessors!(as_bool, as_bool_mut, Bool, bool);
    typed_accessors!(as_i8, as_i8_mut, I8, i8);
    typed_accessors!(as_i16, as_i16_mut, I16, i16);
    typed_accessors!(as_i32, as_i32_mut, I32, i32);
    typed_accessors!(as_i64, as_i64_mut, I64, i64);
    typed_accessors!(as_f64, as_f64_mut, F64, f64);
    typed_accessors!(as_str, as_str_mut, Str, String);

    /// Append one `Value`, casting it to this vector's type.
    pub fn push_value(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let value = if value.logical_type() == Some(self.ty) {
            value.clone()
        } else {
            value.cast_to(self.ty)?
        };
        match (&mut self.data, value) {
            (VectorData::Bool(v), Value::Boolean(x)) => v.push(x),
            (VectorData::I8(v), Value::TinyInt(x)) => v.push(x),
            (VectorData::I16(v), Value::SmallInt(x)) => v.push(x),
            (VectorData::I32(v), Value::Integer(x)) => v.push(x),
            (VectorData::I32(v), Value::Date(x)) => v.push(x),
            (VectorData::I64(v), Value::BigInt(x)) => v.push(x),
            (VectorData::I64(v), Value::Timestamp(x)) => v.push(x),
            (VectorData::F64(v), Value::Double(x)) => v.push(x),
            (VectorData::Str(v), Value::Varchar(x)) => v.push(x),
            (_, v) => {
                return Err(EiderError::Internal(format!(
                    "cast produced {v:?} for vector of type {}",
                    self.ty
                )))
            }
        }
        self.validity.push(true);
        Ok(())
    }

    /// Append a NULL (a default value occupies the data slot).
    pub fn push_null(&mut self) {
        match &mut self.data {
            VectorData::Bool(v) => v.push(false),
            VectorData::I8(v) => v.push(0),
            VectorData::I16(v) => v.push(0),
            VectorData::I32(v) => v.push(0),
            VectorData::I64(v) => v.push(0),
            VectorData::F64(v) => v.push(0.0),
            VectorData::Str(v) => v.push(String::new()),
        }
        self.validity.push(false);
    }

    /// Read one row out as a `Value` (slow path; kernels use typed slices).
    pub fn get_value(&self, row: usize) -> Value {
        if self.is_null(row) {
            return Value::Null;
        }
        match (&self.data, self.ty) {
            (VectorData::Bool(v), _) => Value::Boolean(v[row]),
            (VectorData::I8(v), _) => Value::TinyInt(v[row]),
            (VectorData::I16(v), _) => Value::SmallInt(v[row]),
            (VectorData::I32(v), LogicalType::Date) => Value::Date(v[row]),
            (VectorData::I32(v), _) => Value::Integer(v[row]),
            (VectorData::I64(v), LogicalType::Timestamp) => Value::Timestamp(v[row]),
            (VectorData::I64(v), _) => Value::BigInt(v[row]),
            (VectorData::F64(v), _) => Value::Double(v[row]),
            (VectorData::Str(v), _) => Value::Varchar(v[row].clone()),
        }
    }

    /// Overwrite one row (used by in-place MVCC updates, §6).
    pub fn set_value(&mut self, row: usize, value: &Value) -> Result<()> {
        if value.is_null() {
            self.validity.set_invalid(row);
            return Ok(());
        }
        let value = value.cast_to(self.ty)?;
        match (&mut self.data, value) {
            (VectorData::Bool(v), Value::Boolean(x)) => v[row] = x,
            (VectorData::I8(v), Value::TinyInt(x)) => v[row] = x,
            (VectorData::I16(v), Value::SmallInt(x)) => v[row] = x,
            (VectorData::I32(v), Value::Integer(x)) => v[row] = x,
            (VectorData::I32(v), Value::Date(x)) => v[row] = x,
            (VectorData::I64(v), Value::BigInt(x)) => v[row] = x,
            (VectorData::I64(v), Value::Timestamp(x)) => v[row] = x,
            (VectorData::F64(v), Value::Double(x)) => v[row] = x,
            (VectorData::Str(v), Value::Varchar(x)) => v[row] = x,
            (_, v) => {
                return Err(EiderError::Internal(format!(
                    "cast produced {v:?} for vector of type {}",
                    self.ty
                )))
            }
        }
        self.validity.set_valid(row);
        Ok(())
    }

    /// Append `count` rows of `other` starting at `offset`. Types must match.
    pub fn append_from(&mut self, other: &Vector, offset: usize, count: usize) -> Result<()> {
        if other.ty != self.ty {
            return Err(EiderError::TypeMismatch(format!(
                "cannot append {} vector to {} vector",
                other.ty, self.ty
            )));
        }
        let end = offset + count;
        match (&mut self.data, &other.data) {
            (VectorData::Bool(d), VectorData::Bool(s)) => d.extend_from_slice(&s[offset..end]),
            (VectorData::I8(d), VectorData::I8(s)) => d.extend_from_slice(&s[offset..end]),
            (VectorData::I16(d), VectorData::I16(s)) => d.extend_from_slice(&s[offset..end]),
            (VectorData::I32(d), VectorData::I32(s)) => d.extend_from_slice(&s[offset..end]),
            (VectorData::I64(d), VectorData::I64(s)) => d.extend_from_slice(&s[offset..end]),
            (VectorData::F64(d), VectorData::F64(s)) => d.extend_from_slice(&s[offset..end]),
            (VectorData::Str(d), VectorData::Str(s)) => d.extend_from_slice(&s[offset..end]),
            _ => return Err(EiderError::Internal("physical type mismatch in append_from".into())),
        }
        self.validity.extend_from(&other.validity, offset, count);
        Ok(())
    }

    /// Append row `row` of `other` (same physical type) without routing
    /// through `Value` — the join's build-row gather path. Strings clone
    /// their bytes; everything else is a plain copy.
    pub fn push_from(&mut self, other: &Vector, row: usize) -> Result<()> {
        match (&mut self.data, &other.data) {
            (VectorData::Bool(d), VectorData::Bool(s)) => d.push(s[row]),
            (VectorData::I8(d), VectorData::I8(s)) => d.push(s[row]),
            (VectorData::I16(d), VectorData::I16(s)) => d.push(s[row]),
            (VectorData::I32(d), VectorData::I32(s)) => d.push(s[row]),
            (VectorData::I64(d), VectorData::I64(s)) => d.push(s[row]),
            (VectorData::F64(d), VectorData::F64(s)) => d.push(s[row]),
            (VectorData::Str(d), VectorData::Str(s)) => d.push(s[row].clone()),
            _ => return Err(EiderError::Internal("physical type mismatch in push_from".into())),
        }
        self.validity.push(other.validity.is_valid(row));
        Ok(())
    }

    /// Gather-append: push the rows of `other` named by `indexes` (types
    /// must match). Unlike [`Vector::select`] this appends to an existing
    /// vector, letting operators batch-materialize outputs.
    pub fn append_selected(&mut self, other: &Vector, indexes: &[u32]) -> Result<()> {
        if other.ty != self.ty {
            return Err(EiderError::TypeMismatch(format!(
                "cannot gather {} rows into {} vector",
                other.ty, self.ty
            )));
        }
        macro_rules! gather {
            ($d:expr, $s:expr) => {
                $d.extend(indexes.iter().map(|&i| $s[i as usize].clone()))
            };
        }
        match (&mut self.data, &other.data) {
            (VectorData::Bool(d), VectorData::Bool(s)) => gather!(d, s),
            (VectorData::I8(d), VectorData::I8(s)) => gather!(d, s),
            (VectorData::I16(d), VectorData::I16(s)) => gather!(d, s),
            (VectorData::I32(d), VectorData::I32(s)) => gather!(d, s),
            (VectorData::I64(d), VectorData::I64(s)) => gather!(d, s),
            (VectorData::F64(d), VectorData::F64(s)) => gather!(d, s),
            (VectorData::Str(d), VectorData::Str(s)) => gather!(d, s),
            _ => {
                return Err(EiderError::Internal(
                    "physical type mismatch in append_selected".into(),
                ))
            }
        }
        if other.validity.all_valid() {
            for _ in indexes {
                self.validity.push(true);
            }
        } else {
            for &i in indexes {
                self.validity.push(other.validity.is_valid(i as usize));
            }
        }
        Ok(())
    }

    /// Materialize the rows chosen by `sel` into a new vector.
    pub fn select(&self, sel: &SelectionVector) -> Vector {
        let idx = sel.as_slice();
        let data = match &self.data {
            VectorData::Bool(v) => VectorData::Bool(idx.iter().map(|&i| v[i as usize]).collect()),
            VectorData::I8(v) => VectorData::I8(idx.iter().map(|&i| v[i as usize]).collect()),
            VectorData::I16(v) => VectorData::I16(idx.iter().map(|&i| v[i as usize]).collect()),
            VectorData::I32(v) => VectorData::I32(idx.iter().map(|&i| v[i as usize]).collect()),
            VectorData::I64(v) => VectorData::I64(idx.iter().map(|&i| v[i as usize]).collect()),
            VectorData::F64(v) => VectorData::F64(idx.iter().map(|&i| v[i as usize]).collect()),
            VectorData::Str(v) => {
                VectorData::Str(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Vector { ty: self.ty, data, validity: self.validity.select(idx) }
    }

    /// A contiguous sub-slice `[offset, offset+count)` as a new vector.
    pub fn slice(&self, offset: usize, count: usize) -> Vector {
        let mut out = Vector::with_capacity(self.ty, count);
        out.append_from(self, offset, count).expect("same type");
        out
    }

    /// Cast every row to `ty`, erroring on the first failure.
    ///
    /// Infallible numeric widenings (e.g. `INTEGER → BIGINT`,
    /// `INTEGER → DOUBLE`) run as typed loops; everything that can fail
    /// or has value-level semantics (narrowing, strings, `DATE`/
    /// `TIMESTAMP` conversions, which rescale) takes the per-row path.
    pub fn cast(&self, ty: LogicalType) -> Result<Vector> {
        if ty == self.ty {
            return Ok(self.clone());
        }
        if !matches!(self.ty, LogicalType::Date | LogicalType::Timestamp)
            && !matches!(ty, LogicalType::Date | LogicalType::Timestamp)
        {
            macro_rules! widen {
                ($v:expr, $variant:ident, $t:ty) => {
                    Some(VectorData::$variant($v.iter().map(|&x| x as $t).collect()))
                };
            }
            let data = match (&self.data, ty) {
                (VectorData::I8(v), LogicalType::SmallInt) => widen!(v, I16, i16),
                (VectorData::I8(v), LogicalType::Integer) => widen!(v, I32, i32),
                (VectorData::I8(v), LogicalType::BigInt) => widen!(v, I64, i64),
                (VectorData::I8(v), LogicalType::Double) => widen!(v, F64, f64),
                (VectorData::I16(v), LogicalType::Integer) => widen!(v, I32, i32),
                (VectorData::I16(v), LogicalType::BigInt) => widen!(v, I64, i64),
                (VectorData::I16(v), LogicalType::Double) => widen!(v, F64, f64),
                (VectorData::I32(v), LogicalType::BigInt) => widen!(v, I64, i64),
                (VectorData::I32(v), LogicalType::Double) => widen!(v, F64, f64),
                (VectorData::I64(v), LogicalType::Double) => widen!(v, F64, f64),
                _ => None,
            };
            if let Some(data) = data {
                return Vector::from_parts(ty, data, self.validity.clone());
            }
        }
        let mut out = Vector::with_capacity(ty, self.len());
        for row in 0..self.len() {
            out.push_value(&self.get_value(row))?;
        }
        Ok(out)
    }

    pub fn truncate(&mut self, new_len: usize) {
        match &mut self.data {
            VectorData::Bool(v) => v.truncate(new_len),
            VectorData::I8(v) => v.truncate(new_len),
            VectorData::I16(v) => v.truncate(new_len),
            VectorData::I32(v) => v.truncate(new_len),
            VectorData::I64(v) => v.truncate(new_len),
            VectorData::F64(v) => v.truncate(new_len),
            VectorData::Str(v) => v.truncate(new_len),
        }
        self.validity.truncate(new_len);
    }

    pub fn clear(&mut self) {
        self.truncate(0);
        self.validity.clear();
    }

    /// Approximate heap footprint in bytes, for memory accounting (§4).
    pub fn size_bytes(&self) -> usize {
        let data = match &self.data {
            VectorData::Bool(v) => v.capacity(),
            VectorData::I8(v) => v.capacity(),
            VectorData::I16(v) => v.capacity() * 2,
            VectorData::I32(v) => v.capacity() * 4,
            VectorData::I64(v) => v.capacity() * 8,
            VectorData::F64(v) => v.capacity() * 8,
            VectorData::Str(v) => {
                v.capacity() * std::mem::size_of::<String>()
                    + v.iter().map(|s| s.capacity()).sum::<usize>()
            }
        };
        data + self.len().div_ceil(8)
    }

    /// Min and max over valid rows, or `None` if all rows are NULL. This
    /// powers the per-row-group zone maps used for scan skipping (§6:
    /// "skip irrelevant blocks of rows during a scan").
    pub fn min_max(&self) -> Option<(Value, Value)> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for row in 0..self.len() {
            if self.is_null(row) {
                continue;
            }
            let v = self.get_value(row);
            match &min {
                None => {
                    min = Some(v.clone());
                    max = Some(v);
                }
                Some(_) => {
                    if v.total_cmp(min.as_ref().unwrap()) == std::cmp::Ordering::Less {
                        min = Some(v.clone());
                    }
                    if v.total_cmp(max.as_ref().unwrap()) == std::cmp::Ordering::Greater {
                        max = Some(v);
                    }
                }
            }
        }
        min.zip(max)
    }

    /// Collect all rows as values (testing / display convenience).
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.get_value(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip_all_types() {
        let cases: Vec<(LogicalType, Value)> = vec![
            (LogicalType::Boolean, Value::Boolean(true)),
            (LogicalType::TinyInt, Value::TinyInt(-3)),
            (LogicalType::SmallInt, Value::SmallInt(300)),
            (LogicalType::Integer, Value::Integer(-70000)),
            (LogicalType::BigInt, Value::BigInt(1 << 40)),
            (LogicalType::Double, Value::Double(2.5)),
            (LogicalType::Varchar, Value::Varchar("duck".into())),
            (LogicalType::Date, Value::Date(18273)),
            (LogicalType::Timestamp, Value::Timestamp(1_600_000_000_000_000)),
        ];
        for (ty, val) in cases {
            let mut v = Vector::new(ty);
            v.push_value(&val).unwrap();
            v.push_null();
            assert_eq!(v.get_value(0), val, "{ty}");
            assert!(v.get_value(1).is_null());
            assert_eq!(v.len(), 2);
        }
    }

    #[test]
    fn push_value_casts() {
        let mut v = Vector::new(LogicalType::BigInt);
        v.push_value(&Value::Integer(7)).unwrap();
        assert_eq!(v.get_value(0), Value::BigInt(7));
        let mut v = Vector::new(LogicalType::TinyInt);
        assert!(v.push_value(&Value::Integer(1000)).is_err());
    }

    #[test]
    fn select_materializes_subset() {
        let v = Vector::from_values(
            LogicalType::Integer,
            &[Value::Integer(10), Value::Null, Value::Integer(30), Value::Integer(40)],
        )
        .unwrap();
        let sel = SelectionVector::from_indexes(vec![3, 1, 0]);
        let out = v.select(&sel);
        assert_eq!(out.to_values(), vec![Value::Integer(40), Value::Null, Value::Integer(10)]);
    }

    #[test]
    fn append_from_preserves_validity() {
        let src = Vector::from_values(
            LogicalType::Varchar,
            &[Value::Varchar("a".into()), Value::Null, Value::Varchar("c".into())],
        )
        .unwrap();
        let mut dst = Vector::new(LogicalType::Varchar);
        dst.append_from(&src, 1, 2).unwrap();
        assert_eq!(dst.len(), 2);
        assert!(dst.get_value(0).is_null());
        assert_eq!(dst.get_value(1), Value::Varchar("c".into()));
    }

    #[test]
    fn append_type_mismatch_errors() {
        let src = Vector::new(LogicalType::Integer);
        let mut dst = Vector::new(LogicalType::BigInt);
        assert!(dst.append_from(&src, 0, 0).is_err());
    }

    #[test]
    fn set_value_in_place() {
        let mut v =
            Vector::from_values(LogicalType::Integer, &[Value::Integer(1), Value::Integer(2)])
                .unwrap();
        v.set_value(0, &Value::Integer(-999)).unwrap();
        v.set_value(1, &Value::Null).unwrap();
        assert_eq!(v.get_value(0), Value::Integer(-999));
        assert!(v.get_value(1).is_null());
        // Un-NULL a row again.
        v.set_value(1, &Value::Integer(5)).unwrap();
        assert_eq!(v.get_value(1), Value::Integer(5));
    }

    #[test]
    fn min_max_ignores_nulls() {
        let v = Vector::from_values(
            LogicalType::Integer,
            &[Value::Null, Value::Integer(5), Value::Integer(-2), Value::Null],
        )
        .unwrap();
        let (min, max) = v.min_max().unwrap();
        assert_eq!(min, Value::Integer(-2));
        assert_eq!(max, Value::Integer(5));
        let all_null = Vector::from_values(LogicalType::Integer, &[Value::Null]).unwrap();
        assert!(all_null.min_max().is_none());
    }

    #[test]
    fn widening_casts_match_value_casts() {
        // The typed widening kernels must agree with the per-row
        // Value::cast_to path, including NULL slots.
        let cases: Vec<(LogicalType, Vec<Value>, Vec<LogicalType>)> = vec![
            (
                LogicalType::TinyInt,
                vec![Value::TinyInt(-3), Value::Null, Value::TinyInt(7)],
                vec![
                    LogicalType::SmallInt,
                    LogicalType::Integer,
                    LogicalType::BigInt,
                    LogicalType::Double,
                ],
            ),
            (
                LogicalType::Integer,
                vec![Value::Integer(i32::MIN), Value::Null, Value::Integer(i32::MAX)],
                vec![LogicalType::BigInt, LogicalType::Double],
            ),
            (
                LogicalType::BigInt,
                vec![Value::BigInt(1 << 40), Value::Null],
                vec![LogicalType::Double],
            ),
        ];
        for (from, vals, targets) in cases {
            let v = Vector::from_values(from, &vals).unwrap();
            for to in targets {
                let fast = v.cast(to).unwrap();
                let slow: Vec<Value> = vals.iter().map(|x| x.cast_to(to).unwrap()).collect();
                assert_eq!(fast.to_values(), slow, "{from} -> {to}");
            }
        }
        // Date/Timestamp conversions rescale and must NOT take the
        // widening kernel.
        let d = Vector::from_values(LogicalType::Date, &[Value::Date(2)]).unwrap();
        let ts = d.cast(LogicalType::Timestamp).unwrap();
        assert_eq!(ts.get_value(0), Value::Date(2).cast_to(LogicalType::Timestamp).unwrap());
    }

    #[test]
    fn cast_vector() {
        let v = Vector::from_values(
            LogicalType::Integer,
            &[Value::Integer(1), Value::Null, Value::Integer(3)],
        )
        .unwrap();
        let c = v.cast(LogicalType::Varchar).unwrap();
        assert_eq!(c.get_value(0), Value::Varchar("1".into()));
        assert!(c.get_value(1).is_null());
    }

    #[test]
    fn slice_is_contiguous_copy() {
        let v = Vector::from_values(
            LogicalType::Integer,
            (0..10).map(Value::Integer).collect::<Vec<_>>().as_slice(),
        )
        .unwrap();
        let s = v.slice(4, 3);
        assert_eq!(s.to_values(), vec![Value::Integer(4), Value::Integer(5), Value::Integer(6)]);
    }

    #[test]
    fn constant_vector() {
        let v = Vector::constant(LogicalType::Integer, &Value::Integer(7), 5).unwrap();
        assert_eq!(v.len(), 5);
        assert!(v.to_values().iter().all(|x| *x == Value::Integer(7)));
        let n = Vector::constant(LogicalType::Integer, &Value::Null, 3).unwrap();
        assert_eq!(n.validity().count_invalid(), 3);
    }
}
