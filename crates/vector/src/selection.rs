//! Selection vectors: indirection used by filters to avoid copying data.
//!
//! A filter in the vectorized engine does not materialize the surviving
//! rows; it produces a list of qualifying row indexes that downstream
//! kernels iterate over. Materialization happens once, at the next
//! pipeline breaker.

/// A list of selected row indexes into a vector of at most
/// [`crate::VECTOR_SIZE`] rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectionVector {
    indexes: Vec<u32>,
}

impl SelectionVector {
    pub fn new() -> Self {
        SelectionVector { indexes: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        SelectionVector { indexes: Vec::with_capacity(cap) }
    }

    /// The identity selection `0..count`.
    pub fn identity(count: usize) -> Self {
        SelectionVector { indexes: (0..count as u32).collect() }
    }

    pub fn from_indexes(indexes: Vec<u32>) -> Self {
        SelectionVector { indexes }
    }

    pub fn push(&mut self, idx: u32) {
        self.indexes.push(idx);
    }

    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    pub fn get(&self, i: usize) -> u32 {
        self.indexes[i]
    }

    pub fn as_slice(&self) -> &[u32] {
        &self.indexes
    }

    pub fn clear(&mut self) {
        self.indexes.clear();
    }

    pub fn iter(&self) -> std::slice::Iter<'_, u32> {
        self.indexes.iter()
    }

    /// Compose: keep only the entries of `self` selected by `inner`
    /// (`result[i] = self[inner[i]]`). Used when a second filter refines
    /// the output of a first one.
    pub fn compose(&self, inner: &SelectionVector) -> SelectionVector {
        SelectionVector {
            indexes: inner.indexes.iter().map(|&i| self.indexes[i as usize]).collect(),
        }
    }
}

impl FromIterator<u32> for SelectionVector {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        SelectionVector { indexes: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a SelectionVector {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;
    fn into_iter(self) -> Self::IntoIter {
        self.indexes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_covers_range() {
        let s = SelectionVector::identity(4);
        assert_eq!(s.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn compose_refines() {
        let first = SelectionVector::from_indexes(vec![1, 3, 5, 7]);
        let second = SelectionVector::from_indexes(vec![0, 2]);
        assert_eq!(first.compose(&second).as_slice(), &[1, 5]);
    }

    #[test]
    fn collects_from_iterator() {
        let s: SelectionVector = (0..3u32).filter(|x| x % 2 == 0).collect();
        assert_eq!(s.as_slice(), &[0, 2]);
    }
}
