//! The error type shared by every eider subsystem.

use std::fmt;

/// Convenience alias used across all eider crates.
pub type Result<T> = std::result::Result<T, EiderError>;

/// Errors produced anywhere in the system.
///
/// The variants mirror the subsystem boundaries of the paper: parse/bind
/// errors from the SQL frontend, execution errors from the vectorized
/// engine, transaction conflicts from MVCC (§6), storage/corruption errors
/// from the checksummed block store (§3), and resource errors from the
/// cooperation layer (§4).
#[derive(Debug)]
pub enum EiderError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// A name or type could not be resolved during binding.
    Bind(String),
    /// Catalog-level failure (duplicate table, unknown schema, ...).
    Catalog(String),
    /// Runtime failure inside an operator or expression.
    Execution(String),
    /// A value could not be converted between logical types.
    TypeMismatch(String),
    /// Constraint violation (NOT NULL, ...).
    Constraint(String),
    /// Failure in the block store, WAL or buffer manager.
    Storage(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Checksum mismatch or otherwise detected data corruption. The paper's
    /// resilience requirement (§3) demands these are surfaced loudly rather
    /// than propagating silently.
    Corruption(String),
    /// Detected faulty hardware (failed memory test, repeated checksum
    /// failures). Operation must cease rather than risk silent corruption.
    HardwareFault(String),
    /// Transaction-level failure other than a conflict (e.g. using a
    /// finished transaction).
    Transaction(String),
    /// Write-write or serializability conflict; the transaction aborted.
    Conflict(String),
    /// A configured resource limit (memory, ...) was exceeded.
    OutOfMemory(String),
    /// Valid SQL that eider does not (yet) support.
    NotImplemented(String),
    /// Invariant violation: a bug in eider itself.
    Internal(String),
}

impl EiderError {
    /// True if the failure indicates (possibly silent) data corruption or
    /// a hardware fault, i.e. the class of errors §3 of the paper is about.
    pub fn is_integrity_error(&self) -> bool {
        matches!(self, EiderError::Corruption(_) | EiderError::HardwareFault(_))
    }

    /// True if retrying the transaction could succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, EiderError::Conflict(_))
    }
}

impl fmt::Display for EiderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EiderError::Parse(m) => write!(f, "Parser Error: {m}"),
            EiderError::Bind(m) => write!(f, "Binder Error: {m}"),
            EiderError::Catalog(m) => write!(f, "Catalog Error: {m}"),
            EiderError::Execution(m) => write!(f, "Execution Error: {m}"),
            EiderError::TypeMismatch(m) => write!(f, "Type Error: {m}"),
            EiderError::Constraint(m) => write!(f, "Constraint Error: {m}"),
            EiderError::Storage(m) => write!(f, "Storage Error: {m}"),
            EiderError::Io(e) => write!(f, "IO Error: {e}"),
            EiderError::Corruption(m) => write!(f, "Corruption Error: {m}"),
            EiderError::HardwareFault(m) => write!(f, "Hardware Fault: {m}"),
            EiderError::Transaction(m) => write!(f, "Transaction Error: {m}"),
            EiderError::Conflict(m) => write!(f, "Conflict: {m}"),
            EiderError::OutOfMemory(m) => write!(f, "Out of Memory: {m}"),
            EiderError::NotImplemented(m) => write!(f, "Not Implemented: {m}"),
            EiderError::Internal(m) => write!(f, "Internal Error: {m}"),
        }
    }
}

impl std::error::Error for EiderError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EiderError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EiderError {
    fn from(e: std::io::Error) -> Self {
        EiderError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_subsystem_prefix() {
        let e = EiderError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "Parser Error: unexpected token");
        let e = EiderError::Corruption("checksum mismatch block 3".into());
        assert!(e.to_string().starts_with("Corruption Error:"));
    }

    #[test]
    fn integrity_classification() {
        assert!(EiderError::Corruption("x".into()).is_integrity_error());
        assert!(EiderError::HardwareFault("x".into()).is_integrity_error());
        assert!(!EiderError::Parse("x".into()).is_integrity_error());
        assert!(EiderError::Conflict("x".into()).is_transient());
        assert!(!EiderError::Storage("x".into()).is_transient());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: EiderError = io.into();
        assert!(matches!(e, EiderError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
