//! A single (possibly NULL) SQL value.
//!
//! `Value` is the *slow path* of the system: the vectorized kernels operate
//! on typed slices, and `Value` exists for constants, catalog defaults, the
//! value-at-a-time client API baseline (§5 of the paper shows why that API
//! is slow) and tests.

use crate::date::{format_date, format_timestamp, parse_date, parse_timestamp};
use crate::error::{EiderError, Result};
use crate::types::LogicalType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Boolean(bool),
    TinyInt(i8),
    SmallInt(i16),
    Integer(i32),
    BigInt(i64),
    Double(f64),
    Varchar(String),
    /// Days since 1970-01-01.
    Date(i32),
    /// Microseconds since 1970-01-01 00:00:00.
    Timestamp(i64),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The logical type of this value; NULL has no type and returns `None`.
    pub fn logical_type(&self) -> Option<LogicalType> {
        Some(match self {
            Value::Null => return None,
            Value::Boolean(_) => LogicalType::Boolean,
            Value::TinyInt(_) => LogicalType::TinyInt,
            Value::SmallInt(_) => LogicalType::SmallInt,
            Value::Integer(_) => LogicalType::Integer,
            Value::BigInt(_) => LogicalType::BigInt,
            Value::Double(_) => LogicalType::Double,
            Value::Varchar(_) => LogicalType::Varchar,
            Value::Date(_) => LogicalType::Date,
            Value::Timestamp(_) => LogicalType::Timestamp,
        })
    }

    /// Interpret as i64 if integral (including temporal types).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::TinyInt(v) => Some(i64::from(*v)),
            Value::SmallInt(v) => Some(i64::from(*v)),
            Value::Integer(v) => Some(i64::from(*v)),
            Value::BigInt(v) => Some(*v),
            Value::Date(v) => Some(i64::from(*v)),
            Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            _ => self.as_i64().map(|v| v as f64),
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s),
            _ => None,
        }
    }

    /// Parse a string into a value of logical type `ty` (used by the CSV
    /// reader and by VARCHAR casts).
    pub fn parse_as(s: &str, ty: LogicalType) -> Result<Value> {
        let conv = |e: &str| EiderError::TypeMismatch(format!("could not cast '{s}' to {ty}: {e}"));
        Ok(match ty {
            LogicalType::Boolean => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "1" | "yes" => Value::Boolean(true),
                "false" | "f" | "0" | "no" => Value::Boolean(false),
                _ => return Err(conv("not a boolean")),
            },
            LogicalType::TinyInt => {
                Value::TinyInt(s.trim().parse().map_err(|_| conv("not a TINYINT"))?)
            }
            LogicalType::SmallInt => {
                Value::SmallInt(s.trim().parse().map_err(|_| conv("not a SMALLINT"))?)
            }
            LogicalType::Integer => {
                Value::Integer(s.trim().parse().map_err(|_| conv("not an INTEGER"))?)
            }
            LogicalType::BigInt => {
                Value::BigInt(s.trim().parse().map_err(|_| conv("not a BIGINT"))?)
            }
            LogicalType::Double => {
                Value::Double(s.trim().parse().map_err(|_| conv("not a DOUBLE"))?)
            }
            LogicalType::Varchar => Value::Varchar(s.to_string()),
            LogicalType::Date => Value::Date(parse_date(s)?),
            LogicalType::Timestamp => Value::Timestamp(parse_timestamp(s)?),
        })
    }

    /// Cast to `ty`, erroring on narrowing overflow (SQL CAST semantics).
    /// NULL casts to NULL.
    pub fn cast_to(&self, ty: LogicalType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        if self.logical_type() == Some(ty) {
            return Ok(self.clone());
        }
        let overflow = |v: &dyn fmt::Display| {
            EiderError::TypeMismatch(format!("value {v} out of range for {ty}"))
        };
        match (self, ty) {
            (Value::Varchar(s), _) => Value::parse_as(s, ty),
            (_, LogicalType::Varchar) => Ok(Value::Varchar(self.to_string())),
            (Value::Boolean(b), t) if t.is_numeric() => Value::BigInt(i64::from(*b)).cast_to(t),
            (_, LogicalType::Boolean) => match self.as_i64() {
                Some(v) => Ok(Value::Boolean(v != 0)),
                None => match self {
                    Value::Double(d) => Ok(Value::Boolean(*d != 0.0)),
                    _ => Err(EiderError::TypeMismatch(format!("cannot cast {self} to BOOLEAN"))),
                },
            },
            (Value::Date(d), LogicalType::Timestamp) => {
                Ok(Value::Timestamp(i64::from(*d) * crate::date::MICROS_PER_DAY))
            }
            (Value::Timestamp(us), LogicalType::Date) => {
                Ok(Value::Date(us.div_euclid(crate::date::MICROS_PER_DAY) as i32))
            }
            (Value::Double(f), t) if t.is_integral() => {
                let r = f.round();
                if !r.is_finite() || r < i64::MIN as f64 || r > i64::MAX as f64 {
                    return Err(overflow(f));
                }
                Value::BigInt(r as i64).cast_to(t)
            }
            (_, LogicalType::Double) => self
                .as_f64()
                .map(Value::Double)
                .ok_or_else(|| EiderError::TypeMismatch(format!("cannot cast {self} to DOUBLE"))),
            (_, t) if t.is_integral() => {
                let v = self.as_i64().ok_or_else(|| {
                    EiderError::TypeMismatch(format!("cannot cast {self} to {t}"))
                })?;
                Ok(match t {
                    LogicalType::TinyInt => {
                        Value::TinyInt(i8::try_from(v).map_err(|_| overflow(&v))?)
                    }
                    LogicalType::SmallInt => {
                        Value::SmallInt(i16::try_from(v).map_err(|_| overflow(&v))?)
                    }
                    LogicalType::Integer => {
                        Value::Integer(i32::try_from(v).map_err(|_| overflow(&v))?)
                    }
                    LogicalType::BigInt => Value::BigInt(v),
                    LogicalType::Date => Value::Date(i32::try_from(v).map_err(|_| overflow(&v))?),
                    LogicalType::Timestamp => Value::Timestamp(v),
                    _ => unreachable!(),
                })
            }
            _ => Err(EiderError::TypeMismatch(format!("cannot cast {self} to {ty}"))),
        }
    }

    /// SQL comparison: returns `None` if either side is NULL, otherwise the
    /// ordering under numeric promotion (strings compare lexicographically).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Varchar(a), Value::Varchar(b)) => Some(a.cmp(b)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            (Value::Double(_), _) | (_, Value::Double(_)) => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b).or(Some(Ordering::Equal))
            }
            _ => Some(self.as_i64()?.cmp(&other.as_i64()?)),
        }
    }

    /// Rank of the comparison class: values within one class are mutually
    /// comparable via [`Value::sql_cmp`]; across classes the rank decides
    /// (keeping [`Value::total_cmp`] a true total order).
    fn class_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Boolean(_) => 1,
            // All numerics and temporals compare with each other.
            Value::TinyInt(_)
            | Value::SmallInt(_)
            | Value::Integer(_)
            | Value::BigInt(_)
            | Value::Double(_)
            | Value::Date(_)
            | Value::Timestamp(_) => 2,
            Value::Varchar(_) => 3,
        }
    }

    /// Total order used for sorting: NULLs sort LAST (the engine's default,
    /// matching `ORDER BY ... NULLS LAST`), NaN after all numbers, and
    /// mixed incomparable types order by class (bool < numeric < string).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => {
                self.sql_cmp(other).unwrap_or_else(|| self.class_rank().cmp(&other.class_rank()))
            }
        }
    }

    /// Approximate heap footprint, used by memory accounting (§4).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Varchar(s) => s.capacity(),
                _ => 0,
            }
    }
}

/// Equality matches `sql_cmp == Equal` and, unlike SQL, makes NULL == NULL
/// true; this is the *grouping* notion of equality (GROUP BY, DISTINCT and
/// hash join keys treat NULLs as one group), which is what the engine needs
/// from `Eq`.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Boolean(b) => {
                state.write_u8(1);
                state.write_u8(u8::from(*b));
            }
            Value::Double(f) => {
                state.write_u8(2);
                // Hash doubles through their integral value when exact so
                // that 1 (BIGINT) and 1.0 (DOUBLE) land in the same bucket.
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    state.write_i64(*f as i64);
                } else {
                    state.write_u64(f.to_bits());
                }
            }
            Value::Varchar(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
            v => {
                state.write_u8(2);
                state.write_i64(v.as_i64().expect("integral"));
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::TinyInt(v) => write!(f, "{v}"),
            Value::SmallInt(v) => write!(f, "{v}"),
            Value::Integer(v) => write!(f, "{v}"),
            Value::BigInt(v) => write!(f, "{v}"),
            Value::Double(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Varchar(s) => f.write_str(s),
            Value::Date(d) => f.write_str(&format_date(*d)),
            Value::Timestamp(us) => f.write_str(&format_timestamp(*us)),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}
impl From<i8> for Value {
    fn from(v: i8) -> Self {
        Value::TinyInt(v)
    }
}
impl From<i16> for Value {
    fn from(v: i16) -> Self {
        Value::SmallInt(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Integer(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::BigInt(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Value::Integer(5).sql_cmp(&Value::BigInt(5)), Some(Ordering::Equal));
        assert_eq!(Value::TinyInt(3).sql_cmp(&Value::Double(3.5)), Some(Ordering::Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Integer(1)), None);
    }

    #[test]
    fn total_order_puts_nulls_last() {
        let mut vals = [Value::Integer(2), Value::Null, Value::Integer(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Integer(1));
        assert_eq!(vals[1], Value::Integer(2));
        assert!(vals[2].is_null());
    }

    #[test]
    fn casts_widen_and_narrow() {
        assert_eq!(Value::Integer(42).cast_to(LogicalType::BigInt).unwrap(), Value::BigInt(42));
        assert_eq!(Value::BigInt(42).cast_to(LogicalType::TinyInt).unwrap(), Value::TinyInt(42));
        assert!(Value::BigInt(1000).cast_to(LogicalType::TinyInt).is_err());
        assert_eq!(Value::Double(2.6).cast_to(LogicalType::Integer).unwrap(), Value::Integer(3));
        assert_eq!(
            Value::Varchar("17".into()).cast_to(LogicalType::Integer).unwrap(),
            Value::Integer(17)
        );
        assert_eq!(Value::Null.cast_to(LogicalType::Integer).unwrap(), Value::Null);
    }

    #[test]
    fn temporal_casts() {
        let d = Value::parse_as("2020-01-12", LogicalType::Date).unwrap();
        let ts = d.cast_to(LogicalType::Timestamp).unwrap();
        assert_eq!(ts.to_string(), "2020-01-12 00:00:00");
        assert_eq!(ts.cast_to(LogicalType::Date).unwrap(), d);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Double(1.0).to_string(), "1.0");
        assert_eq!(Value::Double(1.5).to_string(), "1.5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(18273).to_string(), "2020-01-12");
    }

    #[test]
    fn grouping_equality_and_hash_agree_across_types() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(Value::Integer(7), Value::BigInt(7));
        assert_eq!(h(&Value::Integer(7)), h(&Value::BigInt(7)));
        assert_eq!(Value::Double(7.0), Value::BigInt(7));
        assert_eq!(h(&Value::Double(7.0)), h(&Value::BigInt(7)));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn boolean_parsing() {
        for (s, b) in [("true", true), ("T", true), ("0", false), ("No", false)] {
            assert_eq!(Value::parse_as(s, LogicalType::Boolean).unwrap(), Value::Boolean(b));
        }
        assert!(Value::parse_as("maybe", LogicalType::Boolean).is_err());
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Value::from(Some(3i32)), Value::Integer(3));
        assert!(Value::from(None::<i32>).is_null());
    }
}
