//! NULL tracking for vectors: a bitmask with one bit per row.

/// Validity (non-NULL) mask for up to `len` rows, one bit per row.
///
/// The common case — no NULLs at all — is represented without allocating:
/// `bits` stays empty and every row counts as valid. The mask materializes
/// lazily on the first `set_invalid`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidityMask {
    /// One bit per row, 1 = valid. Empty means "all valid".
    bits: Vec<u64>,
    len: usize,
}

impl ValidityMask {
    /// A mask of `len` rows, all valid.
    pub fn new_all_valid(len: usize) -> Self {
        ValidityMask { bits: Vec::new(), len }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if no row is NULL (fast path used by the kernels).
    pub fn all_valid(&self) -> bool {
        self.bits.is_empty() || self.count_valid() == self.len
    }

    fn materialize(&mut self) {
        if self.bits.is_empty() {
            self.bits = vec![u64::MAX; self.len.div_ceil(64)];
            self.mask_tail();
        }
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn is_valid(&self, row: usize) -> bool {
        debug_assert!(row < self.len);
        if self.bits.is_empty() {
            return true;
        }
        self.bits[row / 64] & (1 << (row % 64)) != 0
    }

    pub fn set_valid(&mut self, row: usize) {
        debug_assert!(row < self.len);
        if self.bits.is_empty() {
            return;
        }
        self.bits[row / 64] |= 1 << (row % 64);
    }

    pub fn set_invalid(&mut self, row: usize) {
        debug_assert!(row < self.len);
        self.materialize();
        self.bits[row / 64] &= !(1 << (row % 64));
    }

    pub fn set(&mut self, row: usize, valid: bool) {
        if valid {
            self.set_valid(row);
        } else {
            self.set_invalid(row);
        }
    }

    /// Append one row with the given validity.
    pub fn push(&mut self, valid: bool) {
        let row = self.len;
        self.len += 1;
        if !self.bits.is_empty() {
            if row.is_multiple_of(64) {
                self.bits.push(0);
            }
            if valid {
                self.set_valid(row);
            }
        } else if !valid {
            self.materialize();
            self.set_invalid(row);
        }
    }

    /// Number of valid (non-NULL) rows.
    pub fn count_valid(&self) -> usize {
        if self.bits.is_empty() {
            return self.len;
        }
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn count_invalid(&self) -> usize {
        self.len - self.count_valid()
    }

    /// Extend with `count` rows taken from `other` starting at `offset`.
    pub fn extend_from(&mut self, other: &ValidityMask, offset: usize, count: usize) {
        debug_assert!(offset + count <= other.len);
        if other.bits.is_empty() && self.bits.is_empty() {
            self.len += count;
            return;
        }
        for i in 0..count {
            self.push(other.is_valid(offset + i));
        }
    }

    /// Build the mask that selects `sel[i]` from `self`.
    pub fn select(&self, sel: &[u32]) -> ValidityMask {
        if self.bits.is_empty() {
            return ValidityMask::new_all_valid(sel.len());
        }
        let mut out = ValidityMask::new_all_valid(0);
        for &idx in sel {
            out.push(self.is_valid(idx as usize));
        }
        out
    }

    /// Intersect with another mask of the same length (row NULL if NULL in
    /// either input), the combine rule for binary expression kernels.
    pub fn combine(&mut self, other: &ValidityMask) {
        debug_assert_eq!(self.len, other.len);
        if other.bits.is_empty() {
            return;
        }
        self.materialize();
        for (w, o) in self.bits.iter_mut().zip(other.bits.iter()) {
            *w &= *o;
        }
    }

    /// Iterator over indexes of valid rows.
    pub fn valid_indexes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.is_valid(i))
    }

    /// Truncate to `new_len` rows.
    pub fn truncate(&mut self, new_len: usize) {
        assert!(new_len <= self.len);
        self.len = new_len;
        if !self.bits.is_empty() {
            self.bits.truncate(new_len.div_ceil(64));
            self.mask_tail();
        }
    }

    /// Reset to zero rows, all-valid representation.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_valid_without_allocation() {
        let m = ValidityMask::new_all_valid(1000);
        assert!(m.all_valid());
        assert_eq!(m.count_valid(), 1000);
        assert!(m.is_valid(0) && m.is_valid(999));
        assert_eq!(m.bits.len(), 0);
    }

    #[test]
    fn set_invalid_materializes() {
        let mut m = ValidityMask::new_all_valid(130);
        m.set_invalid(0);
        m.set_invalid(64);
        m.set_invalid(129);
        assert!(!m.is_valid(0));
        assert!(!m.is_valid(64));
        assert!(!m.is_valid(129));
        assert!(m.is_valid(1));
        assert_eq!(m.count_invalid(), 3);
        m.set_valid(64);
        assert_eq!(m.count_invalid(), 2);
    }

    #[test]
    fn push_mixed() {
        let mut m = ValidityMask::default();
        for i in 0..200 {
            m.push(i % 3 != 0);
        }
        assert_eq!(m.len(), 200);
        assert_eq!(m.count_invalid(), (0..200).filter(|i| i % 3 == 0).count());
        for i in 0..200 {
            assert_eq!(m.is_valid(i), i % 3 != 0);
        }
    }

    #[test]
    fn combine_is_intersection() {
        let mut a = ValidityMask::new_all_valid(100);
        let mut b = ValidityMask::new_all_valid(100);
        a.set_invalid(3);
        b.set_invalid(5);
        a.combine(&b);
        assert!(!a.is_valid(3));
        assert!(!a.is_valid(5));
        assert_eq!(a.count_invalid(), 2);
    }

    #[test]
    fn combine_with_all_valid_is_noop() {
        let mut a = ValidityMask::new_all_valid(10);
        a.set_invalid(1);
        let b = ValidityMask::new_all_valid(10);
        a.combine(&b);
        assert_eq!(a.count_invalid(), 1);
    }

    #[test]
    fn select_reorders() {
        let mut m = ValidityMask::new_all_valid(6);
        m.set_invalid(2);
        let s = m.select(&[2, 0, 2, 5]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_valid(0));
        assert!(s.is_valid(1));
        assert!(!s.is_valid(2));
        assert!(s.is_valid(3));
    }

    #[test]
    fn truncate_masks_tail_correctly() {
        let mut m = ValidityMask::new_all_valid(128);
        m.set_invalid(100);
        m.truncate(70);
        assert_eq!(m.len(), 70);
        assert_eq!(m.count_valid(), 70);
        // Growing again after truncation keeps consistent state.
        m.push(false);
        assert_eq!(m.len(), 71);
        assert!(!m.is_valid(70));
    }

    #[test]
    fn extend_from_offsets() {
        let mut src = ValidityMask::new_all_valid(10);
        src.set_invalid(4);
        let mut dst = ValidityMask::new_all_valid(2);
        dst.extend_from(&src, 3, 4); // rows 3,4,5,6 -> dst rows 2..6
        assert_eq!(dst.len(), 6);
        assert!(dst.is_valid(2));
        assert!(!dst.is_valid(3));
        assert!(dst.is_valid(4));
    }
}
