//! Logical SQL types and their physical storage mapping.

use crate::error::{EiderError, Result};
use std::fmt;

/// The SQL-level type of a column, value or expression.
///
/// Temporal types map onto integer physical storage: `DATE` is the number
/// of days since the Unix epoch in an `i32`, `TIMESTAMP` microseconds since
/// the epoch in an `i64` (the same convention DuckDB uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LogicalType {
    Boolean,
    TinyInt,
    SmallInt,
    Integer,
    BigInt,
    Double,
    Varchar,
    Date,
    Timestamp,
}

impl LogicalType {
    /// All concrete types, useful for exhaustive property tests.
    pub const ALL: [LogicalType; 9] = [
        LogicalType::Boolean,
        LogicalType::TinyInt,
        LogicalType::SmallInt,
        LogicalType::Integer,
        LogicalType::BigInt,
        LogicalType::Double,
        LogicalType::Varchar,
        LogicalType::Date,
        LogicalType::Timestamp,
    ];

    /// True for types stored as (signed) integers, including temporal ones.
    pub fn is_integral(self) -> bool {
        matches!(
            self,
            LogicalType::TinyInt
                | LogicalType::SmallInt
                | LogicalType::Integer
                | LogicalType::BigInt
                | LogicalType::Date
                | LogicalType::Timestamp
        )
    }

    /// True for types usable in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            LogicalType::TinyInt
                | LogicalType::SmallInt
                | LogicalType::Integer
                | LogicalType::BigInt
                | LogicalType::Double
        )
    }

    pub fn is_temporal(self) -> bool {
        matches!(self, LogicalType::Date | LogicalType::Timestamp)
    }

    /// Width in bytes of one value in its physical representation.
    /// `VARCHAR` is variable; this returns the size of the inline handle.
    pub fn physical_width(self) -> usize {
        match self {
            LogicalType::Boolean | LogicalType::TinyInt => 1,
            LogicalType::SmallInt => 2,
            LogicalType::Integer | LogicalType::Date => 4,
            LogicalType::BigInt | LogicalType::Timestamp | LogicalType::Double => 8,
            LogicalType::Varchar => std::mem::size_of::<String>(),
        }
    }

    /// The type a pair of numeric operands promotes to in arithmetic and
    /// comparison, following the usual widening lattice
    /// `TINYINT < SMALLINT < INTEGER < BIGINT < DOUBLE`.
    pub fn max_numeric(a: LogicalType, b: LogicalType) -> Result<LogicalType> {
        if !a.is_numeric() || !b.is_numeric() {
            return Err(EiderError::TypeMismatch(format!(
                "cannot combine {a} and {b} numerically"
            )));
        }
        Ok(a.max(b))
    }

    /// Whether a value of `self` can be implicitly cast to `target`.
    /// Widening numeric casts and casts from VARCHAR to anything (parsed at
    /// runtime) are implicit, as are DATE -> TIMESTAMP promotions.
    pub fn can_implicit_cast_to(self, target: LogicalType) -> bool {
        if self == target {
            return true;
        }
        match (self, target) {
            (a, b) if a.is_numeric() && b.is_numeric() => a <= b,
            (LogicalType::Date, LogicalType::Timestamp) => true,
            (LogicalType::Varchar, _) => true,
            (_, LogicalType::Varchar) => true,
            _ => false,
        }
    }

    /// Parse a SQL type name (as produced by the lexer, upper or lower case).
    pub fn parse_sql_name(name: &str) -> Result<LogicalType> {
        let up = name.to_ascii_uppercase();
        Ok(match up.as_str() {
            "BOOLEAN" | "BOOL" | "LOGICAL" => LogicalType::Boolean,
            "TINYINT" | "INT1" => LogicalType::TinyInt,
            "SMALLINT" | "INT2" | "SHORT" => LogicalType::SmallInt,
            "INTEGER" | "INT" | "INT4" | "SIGNED" => LogicalType::Integer,
            "BIGINT" | "INT8" | "LONG" => LogicalType::BigInt,
            // The paper's system stores FLOAT/REAL/DECIMAL as doubles; see
            // DESIGN.md "Non-goals".
            "DOUBLE" | "FLOAT" | "FLOAT4" | "FLOAT8" | "REAL" | "DECIMAL" | "NUMERIC" => {
                LogicalType::Double
            }
            "VARCHAR" | "TEXT" | "STRING" | "CHAR" | "BPCHAR" => LogicalType::Varchar,
            "DATE" => LogicalType::Date,
            "TIMESTAMP" | "DATETIME" => LogicalType::Timestamp,
            _ => {
                return Err(EiderError::Parse(format!("unknown type name '{name}'")));
            }
        })
    }
}

impl fmt::Display for LogicalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogicalType::Boolean => "BOOLEAN",
            LogicalType::TinyInt => "TINYINT",
            LogicalType::SmallInt => "SMALLINT",
            LogicalType::Integer => "INTEGER",
            LogicalType::BigInt => "BIGINT",
            LogicalType::Double => "DOUBLE",
            LogicalType::Varchar => "VARCHAR",
            LogicalType::Date => "DATE",
            LogicalType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_promotion_follows_lattice() {
        use LogicalType::*;
        assert_eq!(LogicalType::max_numeric(TinyInt, BigInt).unwrap(), BigInt);
        assert_eq!(LogicalType::max_numeric(Integer, Double).unwrap(), Double);
        assert_eq!(LogicalType::max_numeric(SmallInt, SmallInt).unwrap(), SmallInt);
        assert!(LogicalType::max_numeric(Varchar, Integer).is_err());
    }

    #[test]
    fn implicit_casts() {
        use LogicalType::*;
        assert!(Integer.can_implicit_cast_to(BigInt));
        assert!(!BigInt.can_implicit_cast_to(Integer));
        assert!(Date.can_implicit_cast_to(Timestamp));
        assert!(!Timestamp.can_implicit_cast_to(Date));
        assert!(Varchar.can_implicit_cast_to(Date));
        assert!(Integer.can_implicit_cast_to(Varchar));
        assert!(!Boolean.can_implicit_cast_to(Integer));
    }

    #[test]
    fn sql_names_round_trip() {
        for ty in LogicalType::ALL {
            assert_eq!(LogicalType::parse_sql_name(&ty.to_string()).unwrap(), ty);
        }
        assert_eq!(LogicalType::parse_sql_name("int").unwrap(), LogicalType::Integer);
        assert!(LogicalType::parse_sql_name("BLOB2").is_err());
    }

    #[test]
    fn physical_widths() {
        assert_eq!(LogicalType::TinyInt.physical_width(), 1);
        assert_eq!(LogicalType::Date.physical_width(), 4);
        assert_eq!(LogicalType::Timestamp.physical_width(), 8);
    }
}
