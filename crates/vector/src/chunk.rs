//! `DataChunk`: the unit of data flow in the Vector Volcano model (§6).
//!
//! "A chunk is a horizontal subset of a result set, query intermediate or
//! base table. The chunk consists of a set of column slices." Operators
//! pull chunks from their children; an empty chunk signals exhaustion.

use crate::error::{EiderError, Result};
use crate::selection::SelectionVector;
use crate::types::LogicalType;
use crate::value::Value;
use crate::vector::Vector;
use std::fmt;

/// A horizontal slice of rows across a set of typed column vectors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataChunk {
    columns: Vec<Vector>,
}

impl DataChunk {
    /// An empty chunk with the given column types.
    pub fn new(types: &[LogicalType]) -> Self {
        DataChunk {
            columns: types.iter().map(|&t| Vector::with_capacity(t, crate::VECTOR_SIZE)).collect(),
        }
    }

    /// Build from pre-filled vectors; all must have equal length.
    pub fn from_vectors(columns: Vec<Vector>) -> Result<Self> {
        if let Some(first) = columns.first() {
            let len = first.len();
            if columns.iter().any(|c| c.len() != len) {
                return Err(EiderError::Internal(
                    "columns of a DataChunk must have equal length".into(),
                ));
            }
        }
        Ok(DataChunk { columns })
    }

    /// Build a chunk from rows of values (test/ETL convenience).
    pub fn from_rows(types: &[LogicalType], rows: &[Vec<Value>]) -> Result<Self> {
        let mut chunk = DataChunk::new(types);
        for row in rows {
            chunk.append_row(row)?;
        }
        Ok(chunk)
    }

    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows (the chunk's cardinality).
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vector::len)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn column(&self, idx: usize) -> &Vector {
        &self.columns[idx]
    }

    pub fn column_mut(&mut self, idx: usize) -> &mut Vector {
        &mut self.columns[idx]
    }

    pub fn columns(&self) -> &[Vector] {
        &self.columns
    }

    pub fn into_columns(self) -> Vec<Vector> {
        self.columns
    }

    pub fn types(&self) -> Vec<LogicalType> {
        self.columns.iter().map(Vector::logical_type).collect()
    }

    /// Append one row of values, casting into column types.
    pub fn append_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(EiderError::Execution(format!(
                "row has {} values, chunk has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (col, val) in self.columns.iter_mut().zip(row) {
            col.push_value(val)?;
        }
        Ok(())
    }

    /// Read one row out as values (slow path).
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get_value(row)).collect()
    }

    /// Append `count` rows of `other` starting at `offset`.
    pub fn append_from(&mut self, other: &DataChunk, offset: usize, count: usize) -> Result<()> {
        if other.column_count() != self.column_count() {
            return Err(EiderError::Internal("appending chunk with different column count".into()));
        }
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.append_from(src, offset, count)?;
        }
        Ok(())
    }

    /// Materialize the rows chosen by `sel`.
    pub fn select(&self, sel: &SelectionVector) -> DataChunk {
        DataChunk { columns: self.columns.iter().map(|c| c.select(sel)).collect() }
    }

    /// A contiguous sub-slice as a new chunk.
    pub fn slice(&self, offset: usize, count: usize) -> DataChunk {
        DataChunk { columns: self.columns.iter().map(|c| c.slice(offset, count)).collect() }
    }

    /// Keep only the listed columns, in order (projection).
    pub fn project(&self, indexes: &[usize]) -> DataChunk {
        DataChunk { columns: indexes.iter().map(|&i| self.columns[i].clone()).collect() }
    }

    pub fn clear(&mut self) {
        for c in &mut self.columns {
            c.clear();
        }
    }

    pub fn truncate(&mut self, len: usize) {
        for c in &mut self.columns {
            c.truncate(len);
        }
    }

    /// Approximate heap footprint (memory accounting, §4).
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(Vector::size_bytes).sum()
    }

    /// Internal consistency check used by debug assertions and tests.
    pub fn verify(&self) -> Result<()> {
        let len = self.len();
        for (i, c) in self.columns.iter().enumerate() {
            if c.len() != len {
                return Err(EiderError::Internal(format!(
                    "column {i} has length {} != chunk cardinality {len}",
                    c.len()
                )));
            }
            if c.validity().len() != c.len() {
                return Err(EiderError::Internal(format!("column {i} validity length mismatch")));
            }
        }
        Ok(())
    }

    /// All rows as vectors of values (testing convenience).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len()).map(|r| self.row_values(r)).collect()
    }
}

impl fmt::Display for DataChunk {
    /// Render as a simple aligned text table (used by examples and the CLI
    /// surface of the client API).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = (0..self.len())
            .map(|r| self.row_values(r).iter().map(Value::to_string).collect())
            .collect();
        let mut widths = vec![0usize; self.column_count()];
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:>w$}", w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataChunk {
        DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Varchar],
            &[
                vec![Value::Integer(1), Value::Varchar("one".into())],
                vec![Value::Integer(2), Value::Null],
                vec![Value::Integer(3), Value::Varchar("three".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_round_trips() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert_eq!(c.column_count(), 2);
        assert_eq!(c.row_values(1), vec![Value::Integer(2), Value::Null]);
        c.verify().unwrap();
    }

    #[test]
    fn append_row_arity_checked() {
        let mut c = sample();
        assert!(c.append_row(&[Value::Integer(4)]).is_err());
        assert!(c.append_row(&[Value::Integer(4), Value::Varchar("four".into())]).is_ok());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn select_and_project() {
        let c = sample();
        let sel = SelectionVector::from_indexes(vec![2, 0]);
        let s = c.select(&sel);
        assert_eq!(s.row_values(0)[0], Value::Integer(3));
        assert_eq!(s.row_values(1)[0], Value::Integer(1));
        let p = c.project(&[1]);
        assert_eq!(p.column_count(), 1);
        assert_eq!(p.column(0).logical_type(), LogicalType::Varchar);
    }

    #[test]
    fn mismatched_vectors_rejected() {
        let a = Vector::from_values(LogicalType::Integer, &[Value::Integer(1)]).unwrap();
        let b = Vector::new(LogicalType::Integer);
        assert!(DataChunk::from_vectors(vec![a, b]).is_err());
    }

    #[test]
    fn display_renders_table() {
        let c = sample();
        let s = c.to_string();
        assert!(s.contains("one"));
        assert!(s.contains("NULL"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn slice_and_append_from() {
        let c = sample();
        let s = c.slice(1, 2);
        assert_eq!(s.len(), 2);
        let mut d = DataChunk::new(&c.types());
        d.append_from(&c, 0, 3).unwrap();
        assert_eq!(d.to_rows(), c.to_rows());
    }
}
