//! Core columnar data representation for the eider embedded analytical DBMS.
//!
//! This crate implements the data model of the paper's "Vector Volcano"
//! execution engine (§6): queries move *chunks* — horizontal slices of a
//! table or intermediate result — between operators. A [`DataChunk`] is a
//! collection of equal-length column slices ([`Vector`]s), each a typed
//! array of at most [`VECTOR_SIZE`] values with a validity bitmask for
//! SQL `NULL`s.
//!
//! It also hosts the crate-spanning error type [`EiderError`] so that every
//! subsystem (storage, transactions, execution, SQL) shares one `Result`.

pub mod chunk;
pub mod date;
pub mod encoding;
pub mod error;
pub mod selection;
pub mod types;
pub mod validity;
pub mod value;
#[allow(clippy::module_inception)]
pub mod vector;

pub use chunk::DataChunk;
pub use encoding::{Encoding, StrDict};
pub use error::{EiderError, Result};
pub use selection::SelectionVector;
pub use types::LogicalType;
pub use validity::ValidityMask;
pub use value::Value;
pub use vector::{value_at, Vector, VectorData};

/// The number of rows processed per vector, i.e. the chunk granularity of
/// the vectorized engine. 2048 matches DuckDB's `STANDARD_VECTOR_SIZE`:
/// large enough to amortize interpretation overhead across a cache-resident
/// batch, small enough that intermediates stay in L2.
pub const VECTOR_SIZE: usize = 2048;
