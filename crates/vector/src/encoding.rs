//! Encoded vector representations for compressed-domain execution.
//!
//! MonetDBLite and its successors win by keeping columns compact *through*
//! execution, not just at rest. This module provides three lightweight
//! encodings that stay queryable without materializing:
//!
//! * **Dictionary** — varchar columns store one `u32` code per row plus a
//!   shared [`StrDict`]. Kernels that need per-value work (hashing, sort-key
//!   encoding) do it once per distinct value via the dictionary's caches.
//! * **Run-length (RLE)** — integer columns with long runs store one value
//!   per run plus run start offsets; predicates evaluate per run.
//! * **Frame-of-reference (FOR)** — 64-bit integer columns whose value range
//!   fits in a `u32` store `frame + delta`, halving the bytes per row and
//!   letting aggregates work off the frame once per vector.
//!
//! The encodings are internal representations of [`crate::Vector`]: plain
//! callers observe identical behavior because `Vector::data()` lazily
//! decodes (and caches) a flat copy. The crate-private `choose` function is the
//! stats-driven per-column chooser: it inspects observed distinct counts,
//! run lengths and value ranges and only encodes when the encoding pays.

use crate::vector::VectorData;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Which physical representation a [`crate::Vector`] currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    Plain,
    Dict,
    Rle,
    For,
}

impl std::fmt::Display for Encoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Encoding::Plain => "plain",
            Encoding::Dict => "dict",
            Encoding::Rle => "rle",
            Encoding::For => "for",
        })
    }
}

/// A shared string dictionary: the distinct values of one or more
/// dictionary-coded vectors, in first-appearance order.
///
/// Besides the values themselves the dictionary owns two lazily-filled
/// caches keyed by dictionary slot: a hash per entry and an arbitrary byte
/// fragment per entry (the row-format sort/group key encoding). The caches
/// are filled by caller-supplied closures because the compute kernels live
/// upstream of this crate; whoever fills a cache first wins and later
/// callers get the cached slice. This is what turns per-row string work
/// into per-distinct-value work.
pub struct StrDict {
    values: Vec<String>,
    hash_cache: OnceLock<Vec<u64>>,
    key_cache: OnceLock<Vec<Vec<u8>>>,
}

impl std::fmt::Debug for StrDict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrDict").field("len", &self.values.len()).finish_non_exhaustive()
    }
}

impl PartialEq for StrDict {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

impl StrDict {
    pub fn new(values: Vec<String>) -> Self {
        StrDict { values, hash_cache: OnceLock::new(), key_cache: OnceLock::new() }
    }

    pub fn values(&self) -> &[String] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Per-entry hashes, computed at most once per dictionary. The closure
    /// receives the dictionary values and must return one hash per entry.
    pub fn hashes(&self, compute: impl FnOnce(&[String]) -> Vec<u64>) -> &[u64] {
        self.hash_cache.get_or_init(|| {
            let h = compute(&self.values);
            debug_assert_eq!(h.len(), self.values.len());
            h
        })
    }

    /// Per-entry byte fragments (e.g. pre-encoded sort keys), computed at
    /// most once per dictionary.
    pub fn key_fragments(&self, compute: impl FnOnce(&[String]) -> Vec<Vec<u8>>) -> &[Vec<u8>] {
        self.key_cache.get_or_init(|| {
            let k = compute(&self.values);
            debug_assert_eq!(k.len(), self.values.len());
            k
        })
    }

    /// Heap footprint of the dictionary values.
    pub fn size_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<String>()
            + self.values.iter().map(String::capacity).sum::<usize>()
    }
}

/// Dictionary-coded varchar: one code per row into a shared dictionary.
#[derive(Debug, Clone)]
pub(crate) struct DictRepr {
    pub dict: Arc<StrDict>,
    pub codes: Vec<u32>,
}

/// Run-length encoding: `values[i]` repeats over rows
/// `starts[i] .. starts[i + 1]` (the final run ends at `len`).
#[derive(Debug, Clone)]
pub(crate) struct RleRepr {
    pub values: Box<VectorData>,
    pub starts: Vec<u32>,
    pub len: usize,
}

impl RleRepr {
    /// Index of the run containing `row`.
    pub fn run_of(&self, row: usize) -> usize {
        debug_assert!(row < self.len);
        self.starts.partition_point(|&s| s as usize <= row) - 1
    }

    /// End row (exclusive) of run `i`.
    pub fn run_end(&self, i: usize) -> usize {
        self.starts.get(i + 1).map_or(self.len, |&s| s as usize)
    }
}

/// Frame-of-reference: `value[i] = frame + deltas[i]`, physical I64.
#[derive(Debug, Clone)]
pub(crate) struct ForRepr {
    pub frame: i64,
    pub deltas: Vec<u32>,
}

/// Internal representation of a [`crate::Vector`]'s data.
#[derive(Debug, Clone)]
pub(crate) enum Repr {
    Flat(VectorData),
    Dict(DictRepr),
    Rle(RleRepr),
    For(ForRepr),
}

impl Repr {
    pub fn len(&self) -> usize {
        match self {
            Repr::Flat(d) => d.len(),
            Repr::Dict(d) => d.codes.len(),
            Repr::Rle(r) => r.len,
            Repr::For(f) => f.deltas.len(),
        }
    }

    /// Materialize a flat copy of the encoded data (NULL slots decode to
    /// the value stored at encode time, preserving bit-identical layout).
    pub fn decode(&self) -> VectorData {
        match self {
            Repr::Flat(d) => d.clone(),
            Repr::Dict(d) => VectorData::Str(
                d.codes.iter().map(|&c| d.dict.values[c as usize].clone()).collect(),
            ),
            Repr::Rle(r) => decode_rle(r),
            Repr::For(f) => VectorData::I64(f.deltas.iter().map(|&d| f.frame + d as i64).collect()),
        }
    }
}

macro_rules! rle_decode_arm {
    ($r:expr, $vals:expr, $variant:ident) => {{
        let mut out = Vec::with_capacity($r.len);
        for (i, v) in $vals.iter().enumerate() {
            let n = $r.run_end(i) - $r.starts[i] as usize;
            out.extend(std::iter::repeat_n(v.clone(), n));
        }
        VectorData::$variant(out)
    }};
}

fn decode_rle(r: &RleRepr) -> VectorData {
    match r.values.as_ref() {
        VectorData::Bool(v) => rle_decode_arm!(r, v, Bool),
        VectorData::I8(v) => rle_decode_arm!(r, v, I8),
        VectorData::I16(v) => rle_decode_arm!(r, v, I16),
        VectorData::I32(v) => rle_decode_arm!(r, v, I32),
        VectorData::I64(v) => rle_decode_arm!(r, v, I64),
        VectorData::F64(v) => rle_decode_arm!(r, v, F64),
        VectorData::Str(v) => rle_decode_arm!(r, v, Str),
    }
}

/// Vectors shorter than this are never worth encoding: the per-vector
/// bookkeeping would dominate.
pub const MIN_ENCODE_LEN: usize = 64;
/// Dictionary-encode when `distinct * DICT_SELECTIVITY <= len`.
pub const DICT_SELECTIVITY: usize = 4;
/// Run-length-encode when `runs * RLE_SELECTIVITY <= len`.
pub const RLE_SELECTIVITY: usize = 8;

/// The per-column encoding chooser: inspect observed stats (distinct
/// count, run count, value range) in a single pass and pick an encoding
/// only when it demonstrably pays. Returns `None` when plain wins.
pub(crate) fn choose(data: &VectorData) -> Option<Repr> {
    let len = data.len();
    if len < MIN_ENCODE_LEN {
        return None;
    }
    match data {
        VectorData::Str(v) => try_dict(v),
        VectorData::I64(_) => try_rle(data).or_else(|| try_for(data)),
        VectorData::I8(_) | VectorData::I16(_) | VectorData::I32(_) => try_rle(data),
        VectorData::Bool(_) | VectorData::F64(_) => None,
    }
}

/// Optimistic single-pass dictionary build: abort as soon as the distinct
/// count proves the column too high-cardinality to pay.
fn try_dict(v: &[String]) -> Option<Repr> {
    let cap = v.len() / DICT_SELECTIVITY;
    let mut slots: HashMap<&str, u32> = HashMap::with_capacity(cap.min(1024));
    let mut codes = Vec::with_capacity(v.len());
    let mut values: Vec<String> = Vec::new();
    for s in v {
        let next = values.len() as u32;
        let code = match slots.entry(s.as_str()) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                if values.len() >= cap {
                    return None; // too many distinct values: stay plain
                }
                e.insert(next);
                next
            }
        };
        if code == next {
            values.push(s.clone());
        }
        codes.push(code);
    }
    Some(Repr::Dict(DictRepr { dict: Arc::new(StrDict::new(values)), codes }))
}

macro_rules! rle_build_arm {
    ($v:expr, $variant:ident) => {{
        let len = $v.len();
        let max_runs = len / RLE_SELECTIVITY;
        let mut run_values = Vec::new();
        let mut starts: Vec<u32> = Vec::new();
        for (i, x) in $v.iter().enumerate() {
            if i == 0 || run_values.last() != Some(x) {
                if run_values.len() >= max_runs {
                    return None; // too many runs: stay plain
                }
                run_values.push(x.clone());
                starts.push(i as u32);
            }
        }
        Some(Repr::Rle(RleRepr { values: Box::new(VectorData::$variant(run_values)), starts, len }))
    }};
}

fn try_rle(data: &VectorData) -> Option<Repr> {
    match data {
        VectorData::I8(v) => rle_build_arm!(v, I8),
        VectorData::I16(v) => rle_build_arm!(v, I16),
        VectorData::I32(v) => rle_build_arm!(v, I32),
        VectorData::I64(v) => rle_build_arm!(v, I64),
        _ => None,
    }
}

/// FOR-pack an I64 column when the observed value range fits in a `u32`
/// (halving 8 bytes/row to 4).
fn try_for(data: &VectorData) -> Option<Repr> {
    let VectorData::I64(v) = data else { return None };
    let (mut min, mut max) = (i64::MAX, i64::MIN);
    for &x in v {
        min = min.min(x);
        max = max.max(x);
    }
    if (max as i128 - min as i128) > u32::MAX as i128 {
        return None;
    }
    let deltas = v.iter().map(|&x| (x - min) as u32).collect();
    Some(Repr::For(ForRepr { frame: min, deltas }))
}
