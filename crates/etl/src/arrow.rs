//! Hand-rolled Arrow-IPC-style columnar file format: streaming writer,
//! footer-indexed reader, and a [`TableSource`] over record batches.
//!
//! The workspace builds offline, so this is a from-scratch implementation
//! of the IPC *ideas* for exactly the engine's type system — not a
//! flatbuffers-compatible Arrow file. What it keeps from Arrow: the
//! `ARROW1\0\0` magic frame, length-prefixed messages, 8-byte-aligned
//! body buffers, LSB-ordered validity bitmaps, i32-offsets-plus-bytes
//! varchar layout, dictionary batches with replacement semantics (a dict
//! message applies to every later record batch of its column until the
//! next one), and a trailing footer that indexes every message so readers
//! seek straight to the batches they need. What it adds: per-batch
//! per-column min/max statistics in the footer, giving scans the same
//! zone-map pruning table row groups enjoy. Golden-file tests pin the
//! byte format.
//!
//! Layout:
//!
//! ```text
//! file   := MAGIC message* footer footer_len:u32 MAGIC
//! message:= kind:u32 body_len:u32 body pad8          kind 1=dict 2=batch
//! dict   := col:u32 nvalues:u32 offsets:(n+1)*i32 pad8 bytes pad8
//! batch  := nrows:u32 column*                        (schema order)
//! column := enc:u8 pad8 validity:ceil(n/8) pad8 data pad8
//!           enc 0 plain (fixed width | offsets pad8 bytes), 1 dict codes:u32*
//! footer := ncols:u32 (tag:u8 name_len:u16 name)*
//!           ndicts:u32 (col:u32 offset:u64)*
//!           nbatches:u32 (offset:u64 nrows:u32 stats*)*
//! stats  := 0 | 1 min:value max:value                per column
//! value  := tag:u8 payload                           varchar: len:u32 bytes
//! ```
//!
//! Dictionary-coded varchar vectors ([`Vector::dict_parts`]) export their
//! codes without decoding, and import back as dict vectors sharing one
//! [`StrDict`] per dictionary message — the compressed-domain pipeline
//! (PR 8) keeps operating on codes end to end through a file round trip.

use crate::source::{SourcePartition, SourceReader, TableSource};
use eider_txn::TableFilter;
use eider_vector::{
    DataChunk, EiderError, LogicalType, Result, StrDict, ValidityMask, Value, Vector, VectorData,
};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const MAGIC: &[u8; 8] = b"ARROW1\0\0";
const MSG_DICT: u32 = 1;
const MSG_BATCH: u32 = 2;
const ENC_PLAIN: u8 = 0;
const ENC_DICT: u8 = 1;

fn type_tag(ty: LogicalType) -> u8 {
    match ty {
        LogicalType::Boolean => 1,
        LogicalType::TinyInt => 2,
        LogicalType::SmallInt => 3,
        LogicalType::Integer => 4,
        LogicalType::BigInt => 5,
        LogicalType::Double => 6,
        LogicalType::Varchar => 7,
        LogicalType::Date => 8,
        LogicalType::Timestamp => 9,
    }
}

fn tag_type(tag: u8) -> Result<LogicalType> {
    Ok(match tag {
        1 => LogicalType::Boolean,
        2 => LogicalType::TinyInt,
        3 => LogicalType::SmallInt,
        4 => LogicalType::Integer,
        5 => LogicalType::BigInt,
        6 => LogicalType::Double,
        7 => LogicalType::Varchar,
        8 => LogicalType::Date,
        9 => LogicalType::Timestamp,
        t => return Err(EiderError::Corruption(format!("arrow file: unknown type tag {t}"))),
    })
}

fn pad8(len: usize) -> usize {
    len.next_multiple_of(8) - len
}

// ---------------- little-endian byte building / parsing ----------------

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Boolean(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        Value::TinyInt(x) => {
            buf.push(2);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::SmallInt(x) => {
            buf.push(3);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Integer(x) => {
            buf.push(4);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::BigInt(x) => {
            buf.push(5);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Double(x) => {
            buf.push(6);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Varchar(s) => {
            buf.push(7);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Date(x) => {
            buf.push(8);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Timestamp(x) => {
            buf.push(9);
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Sequential parser over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(EiderError::Corruption("arrow file: truncated buffer".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn skip_pad8(&mut self) -> Result<()> {
        self.take(pad8(self.pos)).map(|_| ())
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("size")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("size")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("size")))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Boolean(self.u8()? != 0),
            2 => Value::TinyInt(self.take(1)?[0] as i8),
            3 => Value::SmallInt(i16::from_le_bytes(self.take(2)?.try_into().expect("size"))),
            4 => Value::Integer(i32::from_le_bytes(self.take(4)?.try_into().expect("size"))),
            5 => Value::BigInt(i64::from_le_bytes(self.take(8)?.try_into().expect("size"))),
            6 => Value::Double(f64::from_le_bytes(self.take(8)?.try_into().expect("size"))),
            7 => {
                let len = self.u32()? as usize;
                Value::Varchar(
                    String::from_utf8(self.take(len)?.to_vec())
                        .map_err(|_| EiderError::Corruption("arrow file: bad utf-8".into()))?,
                )
            }
            8 => Value::Date(i32::from_le_bytes(self.take(4)?.try_into().expect("size"))),
            9 => Value::Timestamp(i64::from_le_bytes(self.take(8)?.try_into().expect("size"))),
            t => return Err(EiderError::Corruption(format!("arrow file: bad value tag {t}"))),
        })
    }
}

// ---------------- writer ----------------

/// Footer bookkeeping for one written record batch.
struct BatchMeta {
    offset: u64,
    nrows: u32,
    /// Per column: min/max of the batch (`None` when all-NULL or unknown).
    stats: Vec<Option<(Value, Value)>>,
}

/// Streaming writer: needs only `Write` (offsets are counted, not
/// sought), so result cursors export straight into files, sockets or
/// in-memory buffers. Chunks become record batches one-to-one; the
/// footer lands in [`finish`](ArrowWriter::finish).
pub struct ArrowWriter<W: Write> {
    out: W,
    offset: u64,
    names: Vec<String>,
    types: Vec<LogicalType>,
    /// Last dictionary written per column (replacement semantics).
    current_dicts: Vec<Option<Arc<StrDict>>>,
    dict_index: Vec<(u32, u64)>,
    batches: Vec<BatchMeta>,
    rows_written: u64,
}

impl<W: Write> ArrowWriter<W> {
    pub fn new(mut out: W, names: Vec<String>, types: Vec<LogicalType>) -> Result<Self> {
        if names.len() != types.len() {
            return Err(EiderError::Internal("arrow writer: names/types mismatch".into()));
        }
        out.write_all(MAGIC)?;
        let ncols = types.len();
        Ok(ArrowWriter {
            out,
            offset: MAGIC.len() as u64,
            names,
            types,
            current_dicts: vec![None; ncols],
            dict_index: Vec::new(),
            batches: Vec::new(),
            rows_written: 0,
        })
    }

    pub fn rows_written(&self) -> u64 {
        self.rows_written
    }

    fn write_message(&mut self, kind: u32, body: &[u8]) -> Result<u64> {
        let offset = self.offset;
        self.out.write_all(&kind.to_le_bytes())?;
        self.out.write_all(&(body.len() as u32).to_le_bytes())?;
        self.out.write_all(body)?;
        let pad = pad8(body.len());
        self.out.write_all(&[0u8; 8][..pad])?;
        self.offset += 8 + body.len() as u64 + pad as u64;
        Ok(offset)
    }

    /// Append one chunk as a record batch, emitting dictionary batches
    /// first for any dict-coded varchar column whose dictionary changed.
    pub fn write_chunk(&mut self, chunk: &DataChunk) -> Result<()> {
        if chunk.types() != self.types {
            return Err(EiderError::Internal(format!(
                "arrow writer: chunk types {:?} != schema {:?}",
                chunk.types(),
                self.types
            )));
        }
        if chunk.is_empty() {
            return Ok(());
        }
        // Dictionary batches precede the record batch that references them.
        for (col, vector) in chunk.columns().iter().enumerate() {
            let Some((dict, _)) = vector.dict_parts() else { continue };
            let replace = match &self.current_dicts[col] {
                Some(cur) => !Arc::ptr_eq(cur, dict),
                None => true,
            };
            if replace {
                let dict = Arc::clone(dict);
                let mut body = Vec::new();
                body.extend_from_slice(&(col as u32).to_le_bytes());
                body.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                let mut off = 0i32;
                body.extend_from_slice(&off.to_le_bytes());
                for v in dict.values() {
                    off += v.len() as i32;
                    body.extend_from_slice(&off.to_le_bytes());
                }
                body.extend(std::iter::repeat_n(0u8, pad8(body.len())));
                for v in dict.values() {
                    body.extend_from_slice(v.as_bytes());
                }
                let offset = self.write_message(MSG_DICT, &body)?;
                self.dict_index.push((col as u32, offset));
                self.current_dicts[col] = Some(dict);
            }
        }
        let nrows = chunk.len();
        let mut body = Vec::new();
        body.extend_from_slice(&(nrows as u32).to_le_bytes());
        let mut stats = Vec::with_capacity(self.types.len());
        for vector in chunk.columns() {
            stats.push(vector.min_max());
            let dict = vector.dict_parts();
            body.push(if dict.is_some() { ENC_DICT } else { ENC_PLAIN });
            body.extend(std::iter::repeat_n(0u8, pad8(body.len())));
            // Validity bitmap, LSB first.
            let validity = vector.validity();
            let mut bitmap = vec![0u8; nrows.div_ceil(8)];
            for row in 0..nrows {
                if validity.is_valid(row) {
                    bitmap[row / 8] |= 1 << (row % 8);
                }
            }
            body.extend_from_slice(&bitmap);
            body.extend(std::iter::repeat_n(0u8, pad8(body.len())));
            if let Some((_, codes)) = dict {
                for &c in codes {
                    body.extend_from_slice(&c.to_le_bytes());
                }
            } else {
                put_plain_data(&mut body, vector.data());
            }
            body.extend(std::iter::repeat_n(0u8, pad8(body.len())));
        }
        let offset = self.write_message(MSG_BATCH, &body)?;
        self.batches.push(BatchMeta { offset, nrows: nrows as u32, stats });
        self.rows_written += nrows as u64;
        Ok(())
    }

    /// Write the footer and trailing magic; returns rows written.
    pub fn finish(mut self) -> Result<u64> {
        let mut footer = Vec::new();
        footer.extend_from_slice(&(self.types.len() as u32).to_le_bytes());
        for (name, &ty) in self.names.iter().zip(&self.types) {
            footer.push(type_tag(ty));
            footer.extend_from_slice(&(name.len() as u16).to_le_bytes());
            footer.extend_from_slice(name.as_bytes());
        }
        footer.extend_from_slice(&(self.dict_index.len() as u32).to_le_bytes());
        for (col, offset) in &self.dict_index {
            footer.extend_from_slice(&col.to_le_bytes());
            footer.extend_from_slice(&offset.to_le_bytes());
        }
        footer.extend_from_slice(&(self.batches.len() as u32).to_le_bytes());
        for batch in &self.batches {
            footer.extend_from_slice(&batch.offset.to_le_bytes());
            footer.extend_from_slice(&batch.nrows.to_le_bytes());
            for s in &batch.stats {
                match s {
                    None => footer.push(0),
                    Some((min, max)) => {
                        footer.push(1);
                        put_value(&mut footer, min);
                        put_value(&mut footer, max);
                    }
                }
            }
        }
        self.out.write_all(&footer)?;
        self.out.write_all(&(footer.len() as u32).to_le_bytes())?;
        self.out.write_all(MAGIC)?;
        self.out.flush()?;
        Ok(self.rows_written)
    }
}

fn put_plain_data(body: &mut Vec<u8>, data: &VectorData) {
    match data {
        VectorData::Bool(v) => body.extend(v.iter().map(|&b| u8::from(b))),
        VectorData::I8(v) => body.extend(v.iter().map(|&x| x as u8)),
        VectorData::I16(v) => v.iter().for_each(|x| body.extend_from_slice(&x.to_le_bytes())),
        VectorData::I32(v) => v.iter().for_each(|x| body.extend_from_slice(&x.to_le_bytes())),
        VectorData::I64(v) => v.iter().for_each(|x| body.extend_from_slice(&x.to_le_bytes())),
        VectorData::F64(v) => v.iter().for_each(|x| body.extend_from_slice(&x.to_le_bytes())),
        VectorData::Str(v) => {
            let mut off = 0i32;
            body.extend_from_slice(&off.to_le_bytes());
            for s in v {
                off += s.len() as i32;
                body.extend_from_slice(&off.to_le_bytes());
            }
            body.extend(std::iter::repeat_n(0u8, pad8(body.len())));
            for s in v {
                body.extend_from_slice(s.as_bytes());
            }
        }
    }
}

// ---------------- reader / TableSource ----------------

/// Footer entry for one record batch, as read back.
#[derive(Debug, Clone)]
struct BatchEntry {
    offset: u64,
    nrows: u32,
    stats: Vec<Option<(Value, Value)>>,
}

/// The shared footer index of an open file: everything partition readers
/// need, behind one `Arc` so `Box<dyn SourceReader>` stays `'static`.
struct ArrowInner {
    path: PathBuf,
    names: Vec<String>,
    types: Vec<LogicalType>,
    /// `(column, message offset)` of every dictionary message, in file
    /// order — a batch's dictionary is the last entry for its column
    /// with an offset below the batch's.
    dicts: Vec<(u32, u64)>,
    batches: Vec<BatchEntry>,
    /// Dictionaries decoded so far, keyed by message offset.
    dict_cache: Mutex<HashMap<u64, Arc<StrDict>>>,
}

/// An Arrow IPC file behind the [`TableSource`] contract: the footer is
/// read once at open; each record batch is one partition, pruned by the
/// footer's per-column min/max exactly like table zone maps. Dictionary
/// messages are loaded lazily and shared (one [`StrDict`] per message)
/// across every partition reader of this source.
pub struct ArrowFileSource {
    inner: Arc<ArrowInner>,
}

impl ArrowFileSource {
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        let tail_len = (MAGIC.len() + 4) as u64;
        if file_len < MAGIC.len() as u64 * 2 + 4 {
            return Err(EiderError::Corruption("arrow file: too short".into()));
        }
        let mut head = [0u8; 8];
        file.read_exact(&mut head)?;
        if &head != MAGIC {
            return Err(EiderError::Corruption("arrow file: bad magic".into()));
        }
        file.seek(SeekFrom::Start(file_len - tail_len))?;
        let mut tail = vec![0u8; tail_len as usize];
        file.read_exact(&mut tail)?;
        if &tail[4..] != MAGIC {
            return Err(EiderError::Corruption("arrow file: bad trailing magic".into()));
        }
        let footer_len = u32::from_le_bytes(tail[..4].try_into().expect("size")) as u64;
        if footer_len + tail_len + MAGIC.len() as u64 > file_len {
            return Err(EiderError::Corruption("arrow file: footer length out of range".into()));
        }
        file.seek(SeekFrom::Start(file_len - tail_len - footer_len))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact(&mut footer)?;
        let mut c = Cursor::new(&footer);
        let ncols = c.u32()? as usize;
        let mut names = Vec::with_capacity(ncols);
        let mut types = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            types.push(tag_type(c.u8()?)?);
            let len = c.u16()? as usize;
            names.push(
                String::from_utf8(c.take(len)?.to_vec())
                    .map_err(|_| EiderError::Corruption("arrow file: bad column name".into()))?,
            );
        }
        let ndicts = c.u32()? as usize;
        let mut dicts = Vec::with_capacity(ndicts);
        for _ in 0..ndicts {
            let col = c.u32()?;
            let offset = c.u64()?;
            dicts.push((col, offset));
        }
        let nbatches = c.u32()? as usize;
        let mut batches = Vec::with_capacity(nbatches);
        for _ in 0..nbatches {
            let offset = c.u64()?;
            let nrows = c.u32()?;
            let mut stats = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                stats.push(match c.u8()? {
                    0 => None,
                    _ => Some((c.value()?, c.value()?)),
                });
            }
            batches.push(BatchEntry { offset, nrows, stats });
        }
        Ok(ArrowFileSource {
            inner: Arc::new(ArrowInner {
                path,
                names,
                types,
                dicts,
                batches,
                dict_cache: Mutex::new(HashMap::new()),
            }),
        })
    }

    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Number of record batches (= partitions) in the file.
    pub fn batch_count(&self) -> usize {
        self.inner.batches.len()
    }
}

impl ArrowInner {
    /// Offset of the dictionary message governing `col` at `batch_offset`.
    fn dict_offset_for(&self, col: u32, batch_offset: u64) -> Option<u64> {
        self.dicts
            .iter()
            .filter(|&&(c, off)| c == col && off < batch_offset)
            .map(|&(_, off)| off)
            .next_back()
    }

    /// Load (or fetch from cache) the dictionary message at `offset`.
    fn load_dict(&self, file: &mut File, offset: u64) -> Result<Arc<StrDict>> {
        if let Some(d) = self.dict_cache.lock().expect("poisoned").get(&offset) {
            return Ok(Arc::clone(d));
        }
        let body = read_message(file, offset, MSG_DICT)?;
        let mut c = Cursor::new(&body);
        let _col = c.u32()?;
        let nvalues = c.u32()? as usize;
        let mut offsets = Vec::with_capacity(nvalues + 1);
        for _ in 0..=nvalues {
            offsets.push(i32::from_le_bytes(c.take(4)?.try_into().expect("size")) as usize);
        }
        c.skip_pad8()?;
        let bytes = c.take(offsets.last().copied().unwrap_or(0))?;
        let mut values = Vec::with_capacity(nvalues);
        for w in offsets.windows(2) {
            values.push(
                String::from_utf8(bytes[w[0]..w[1]].to_vec())
                    .map_err(|_| EiderError::Corruption("arrow file: bad dict utf-8".into()))?,
            );
        }
        let dict = Arc::new(StrDict::new(values));
        self.dict_cache.lock().expect("poisoned").insert(offset, Arc::clone(&dict));
        Ok(dict)
    }

    /// Decode one record batch, materializing only `projection` columns
    /// (unprojected buffers are skipped over, not decoded).
    fn read_batch(
        &self,
        file: &mut File,
        batch: &BatchEntry,
        projection: &[usize],
    ) -> Result<DataChunk> {
        let body = read_message(file, batch.offset, MSG_BATCH)?;
        let mut c = Cursor::new(&body);
        let nrows = c.u32()? as usize;
        if nrows != batch.nrows as usize {
            return Err(EiderError::Corruption("arrow file: footer/batch row mismatch".into()));
        }
        let mut columns: Vec<Option<Vector>> = (0..self.types.len()).map(|_| None).collect();
        for (col, &ty) in self.types.iter().enumerate() {
            let wanted = projection.contains(&col);
            let enc = c.u8()?;
            c.skip_pad8()?;
            let bitmap = c.take(nrows.div_ceil(8))?;
            let validity = if wanted {
                let mut v = ValidityMask::new_all_valid(nrows);
                for row in 0..nrows {
                    if bitmap[row / 8] & (1 << (row % 8)) == 0 {
                        v.set_invalid(row);
                    }
                }
                Some(v)
            } else {
                None
            };
            c.skip_pad8()?;
            let vector = match enc {
                ENC_DICT => {
                    let raw = c.take(nrows * 4)?;
                    match validity {
                        Some(validity) => {
                            let codes: Vec<u32> = raw
                                .chunks_exact(4)
                                .map(|b| u32::from_le_bytes(b.try_into().expect("size")))
                                .collect();
                            let dict_offset = self
                                .dict_offset_for(col as u32, batch.offset)
                                .ok_or_else(|| {
                                    EiderError::Corruption(
                                        "arrow file: dict column without dict".into(),
                                    )
                                })?;
                            let dict = self.load_dict(file, dict_offset)?;
                            Some(Vector::from_dict(ty, dict, codes, validity)?)
                        }
                        None => None,
                    }
                }
                ENC_PLAIN => match (take_plain_data(&mut c, ty, nrows, wanted)?, validity) {
                    (Some(data), Some(validity)) => Some(Vector::from_parts(ty, data, validity)?),
                    _ => None,
                },
                e => {
                    return Err(EiderError::Corruption(format!(
                        "arrow file: unknown column encoding {e}"
                    )))
                }
            };
            c.skip_pad8()?;
            if wanted {
                columns[col] = vector;
            }
        }
        let vectors: Vec<Vector> = projection
            .iter()
            .map(|&col| {
                columns[col]
                    .take()
                    .ok_or_else(|| EiderError::Corruption("arrow file: missing column".into()))
            })
            .collect::<Result<_>>()?;
        DataChunk::from_vectors(vectors)
    }
}

fn read_message(file: &mut File, offset: u64, expect_kind: u32) -> Result<Vec<u8>> {
    file.seek(SeekFrom::Start(offset))?;
    let mut header = [0u8; 8];
    file.read_exact(&mut header)?;
    let kind = u32::from_le_bytes(header[..4].try_into().expect("size"));
    if kind != expect_kind {
        return Err(EiderError::Corruption(format!(
            "arrow file: expected message kind {expect_kind}, found {kind}"
        )));
    }
    let len = u32::from_le_bytes(header[4..].try_into().expect("size")) as usize;
    let mut body = vec![0u8; len];
    file.read_exact(&mut body)?;
    Ok(body)
}

/// Parse one plain column's data buffers. Always consumes the buffer
/// bytes (later columns need the cursor advanced); decodes into a
/// [`VectorData`] only when `wanted`.
fn take_plain_data(
    c: &mut Cursor<'_>,
    ty: LogicalType,
    nrows: usize,
    wanted: bool,
) -> Result<Option<VectorData>> {
    if !wanted {
        // Skip the exact byte span the decode below would consume.
        match ty {
            LogicalType::Boolean | LogicalType::TinyInt => c.take(nrows)?,
            LogicalType::SmallInt => c.take(nrows * 2)?,
            LogicalType::Integer | LogicalType::Date => c.take(nrows * 4)?,
            LogicalType::BigInt | LogicalType::Timestamp | LogicalType::Double => {
                c.take(nrows * 8)?
            }
            LogicalType::Varchar => {
                let offsets = c.take((nrows + 1) * 4)?;
                let last = offsets
                    .chunks_exact(4)
                    .next_back()
                    .map(|b| i32::from_le_bytes(b.try_into().expect("size")) as usize)
                    .unwrap_or(0);
                c.skip_pad8()?;
                c.take(last)?
            }
        };
        return Ok(None);
    }
    Ok(Some(match ty {
        LogicalType::Boolean => VectorData::Bool(c.take(nrows)?.iter().map(|&b| b != 0).collect()),
        LogicalType::TinyInt => VectorData::I8(c.take(nrows)?.iter().map(|&b| b as i8).collect()),
        LogicalType::SmallInt => VectorData::I16(
            c.take(nrows * 2)?
                .chunks_exact(2)
                .map(|b| i16::from_le_bytes(b.try_into().expect("size")))
                .collect(),
        ),
        LogicalType::Integer | LogicalType::Date => VectorData::I32(
            c.take(nrows * 4)?
                .chunks_exact(4)
                .map(|b| i32::from_le_bytes(b.try_into().expect("size")))
                .collect(),
        ),
        LogicalType::BigInt | LogicalType::Timestamp => VectorData::I64(
            c.take(nrows * 8)?
                .chunks_exact(8)
                .map(|b| i64::from_le_bytes(b.try_into().expect("size")))
                .collect(),
        ),
        LogicalType::Double => VectorData::F64(
            c.take(nrows * 8)?
                .chunks_exact(8)
                .map(|b| f64::from_le_bytes(b.try_into().expect("size")))
                .collect(),
        ),
        LogicalType::Varchar => {
            let offsets: Vec<usize> = c
                .take((nrows + 1) * 4)?
                .chunks_exact(4)
                .map(|b| i32::from_le_bytes(b.try_into().expect("size")) as usize)
                .collect();
            c.skip_pad8()?;
            let bytes = c.take(offsets.last().copied().unwrap_or(0))?;
            let mut values = Vec::with_capacity(nrows);
            for w in offsets.windows(2) {
                values.push(
                    String::from_utf8(bytes[w[0]..w[1]].to_vec()).map_err(|_| {
                        EiderError::Corruption("arrow file: bad varchar utf-8".into())
                    })?,
                );
            }
            VectorData::Str(values)
        }
    }))
}

impl TableSource for ArrowFileSource {
    fn name(&self) -> String {
        format!("read_arrow('{}')", self.inner.path.display())
    }

    fn column_names(&self) -> &[String] {
        &self.inner.names
    }

    fn column_types(&self) -> &[LogicalType] {
        &self.inner.types
    }

    /// One partition per record batch — the format's natural parallel
    /// unit, and the granularity its min/max statistics prune at.
    fn partitions(&self, _target: usize) -> Result<Vec<SourcePartition>> {
        Ok(self
            .inner
            .batches
            .iter()
            .enumerate()
            .map(|(seq, _)| SourcePartition { seq, begin: seq as u64, end: seq as u64 + 1 })
            .collect())
    }

    /// Footer min/max against the scan's pushed filters: exactly the
    /// zone-map check table row groups run, at record-batch granularity.
    fn prunable(&self, partition: &SourcePartition, filters: &[TableFilter]) -> bool {
        let Some(batch) = self.inner.batches.get(partition.begin as usize) else { return false };
        filters.iter().any(|f| match batch.stats.get(f.column).and_then(|s| s.as_ref()) {
            Some((min, max)) => !f.zone_may_match(min, max),
            None => false,
        })
    }

    fn open(
        &self,
        partition: &SourcePartition,
        projection: &[usize],
    ) -> Result<Box<dyn SourceReader>> {
        Ok(Box::new(ArrowPartReader {
            source: Arc::clone(&self.inner),
            file: File::open(&self.inner.path)?,
            next: partition.begin as usize,
            end: (partition.end as usize).min(self.inner.batches.len()),
            projection: projection.to_vec(),
        }))
    }

    fn estimated_rows(&self) -> Option<u64> {
        Some(self.inner.batches.iter().map(|b| b.nrows as u64).sum())
    }
}

/// Reader over a contiguous range of record batches, sharing the open
/// source's footer index and dictionary cache.
struct ArrowPartReader {
    source: Arc<ArrowInner>,
    file: File,
    next: usize,
    end: usize,
    projection: Vec<usize>,
}

impl SourceReader for ArrowPartReader {
    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        while self.next < self.end {
            let batch = &self.source.batches[self.next];
            self.next += 1;
            if batch.nrows == 0 {
                continue;
            }
            let chunk = self.source.read_batch(&mut self.file, batch, &self.projection)?;
            return Ok(Some(chunk));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_txn::CmpOp;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eider_arrow_{}_{name}.arrow", std::process::id()));
        p
    }

    fn sample_chunk() -> DataChunk {
        let types = [LogicalType::BigInt, LogicalType::Varchar, LogicalType::Double];
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| {
                vec![
                    if i == 3 { Value::Null } else { Value::BigInt(i) },
                    if i == 5 {
                        Value::Varchar(String::new()) // empty string, NOT null
                    } else if i == 7 {
                        Value::Null
                    } else {
                        Value::Varchar(format!("name_{}", i % 3))
                    },
                    Value::Double(i as f64 * 0.5),
                ]
            })
            .collect();
        DataChunk::from_rows(&types, &rows).unwrap()
    }

    fn scan_all(src: &ArrowFileSource) -> Vec<Vec<Value>> {
        let projection: Vec<usize> = (0..src.column_types().len()).collect();
        let mut rows = Vec::new();
        for part in &src.partitions(8).unwrap() {
            let mut r = src.open(part, &projection).unwrap();
            while let Some(chunk) = r.next_chunk().unwrap() {
                rows.extend(chunk.to_rows());
            }
        }
        rows
    }

    #[test]
    fn round_trip_with_nulls_and_empty_strings() {
        let path = tmp("round");
        let chunk = sample_chunk();
        {
            let file = File::create(&path).unwrap();
            let mut w = ArrowWriter::new(
                file,
                vec!["id".into(), "name".into(), "v".into()],
                chunk.types().to_vec(),
            )
            .unwrap();
            w.write_chunk(&chunk).unwrap();
            assert_eq!(w.finish().unwrap(), 10);
        }
        let src = ArrowFileSource::open(&path).unwrap();
        assert_eq!(src.column_names(), ["id", "name", "v"]);
        assert_eq!(src.estimated_rows(), Some(10));
        let rows = scan_all(&src);
        assert_eq!(rows, chunk.to_rows());
        // Empty string survived as a value, null as a null.
        assert_eq!(rows[5][1], Value::Varchar(String::new()));
        assert!(rows[7][1].is_null());
        std::fs::remove_file(&path).unwrap();
    }

    /// Dict-coded varchar exports codes + one dictionary message and
    /// imports back as a dict vector — no decode on either side.
    #[test]
    fn dict_columns_round_trip_without_decode() {
        let path = tmp("dict");
        let types = [LogicalType::Varchar];
        let rows: Vec<Vec<Value>> =
            (0..256).map(|i| vec![Value::Varchar(format!("city_{}", i % 4))]).collect();
        let chunk = DataChunk::from_rows(&types, &rows).unwrap();
        let encoded = DataChunk::from_vectors(
            chunk.into_columns().into_iter().map(|c| c.encode_auto().unwrap_or(c)).collect(),
        )
        .unwrap();
        assert!(encoded.column(0).dict_parts().is_some(), "fixture must dict-encode");
        {
            let file = File::create(&path).unwrap();
            let mut w =
                ArrowWriter::new(file, vec!["city".into()], encoded.types().to_vec()).unwrap();
            // Two batches sharing one dictionary: only one dict message.
            w.write_chunk(&encoded).unwrap();
            w.write_chunk(&encoded).unwrap();
            assert_eq!(w.dict_index.len(), 1);
            w.finish().unwrap();
        }
        let src = ArrowFileSource::open(&path).unwrap();
        let parts = src.partitions(8).unwrap();
        assert_eq!(parts.len(), 2);
        let mut r = src.open(&parts[0], &[0]).unwrap();
        let back = r.next_chunk().unwrap().unwrap();
        let (dict, codes) = back.column(0).dict_parts().expect("imported as dict vector");
        assert_eq!(dict.len(), 4);
        assert_eq!(codes.len(), 256);
        assert_eq!(back.to_rows(), encoded.to_rows());
        std::fs::remove_file(&path).unwrap();
    }

    /// Footer min/max stats prune record-batch partitions like zone maps.
    #[test]
    fn footer_stats_prune_partitions() {
        let path = tmp("prune");
        let types = [LogicalType::BigInt];
        {
            let file = File::create(&path).unwrap();
            let mut w = ArrowWriter::new(file, vec!["x".into()], types.to_vec()).unwrap();
            for base in [0i64, 1000, 2000] {
                let rows: Vec<Vec<Value>> =
                    (base..base + 100).map(|i| vec![Value::BigInt(i)]).collect();
                w.write_chunk(&DataChunk::from_rows(&types, &rows).unwrap()).unwrap();
            }
            w.finish().unwrap();
        }
        let src = ArrowFileSource::open(&path).unwrap();
        let parts = src.partitions(8).unwrap();
        assert_eq!(parts.len(), 3);
        let gt = [TableFilter::new(0, CmpOp::Gt, Value::BigInt(1500))];
        assert!(src.prunable(&parts[0], &gt), "batch 0..100 cannot match x > 1500");
        assert!(src.prunable(&parts[1], &gt), "batch 1000..1100 cannot match");
        assert!(!src.prunable(&parts[2], &gt), "batch 2000..2100 must scan");
        let eq = [TableFilter::new(0, CmpOp::Eq, Value::BigInt(1050))];
        assert!(src.prunable(&parts[0], &eq));
        assert!(!src.prunable(&parts[1], &eq));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn projection_reads_requested_columns_in_order() {
        let path = tmp("projection");
        let chunk = sample_chunk();
        {
            let file = File::create(&path).unwrap();
            let mut w = ArrowWriter::new(
                file,
                vec!["id".into(), "name".into(), "v".into()],
                chunk.types().to_vec(),
            )
            .unwrap();
            w.write_chunk(&chunk).unwrap();
            w.finish().unwrap();
        }
        let src = ArrowFileSource::open(&path).unwrap();
        let parts = src.partitions(1).unwrap();
        let mut r = src.open(&parts[0], &[2, 0]).unwrap();
        let got = r.next_chunk().unwrap().unwrap();
        assert_eq!(got.types(), &[LogicalType::Double, LogicalType::BigInt]);
        assert_eq!(got.row_values(1), vec![Value::Double(0.5), Value::BigInt(1)]);
        assert!(got.row_values(3)[1].is_null());
        std::fs::remove_file(&path).unwrap();
    }

    /// Golden file: the byte format is pinned — any layout change must be
    /// deliberate (and versioned), not accidental.
    #[test]
    fn golden_file_pins_the_byte_format() {
        let types = [LogicalType::Integer, LogicalType::Varchar];
        let rows = [
            vec![Value::Integer(1), Value::Varchar("ab".into())],
            vec![Value::Null, Value::Varchar(String::new())],
            vec![Value::Integer(3), Value::Null],
        ];
        let chunk = DataChunk::from_rows(&types, &rows).unwrap();
        let mut bytes = Vec::new();
        let mut w =
            ArrowWriter::new(&mut bytes, vec!["i".into(), "s".into()], types.to_vec()).unwrap();
        w.write_chunk(&chunk).unwrap();
        w.finish().unwrap();
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, GOLDEN_HEX, "arrow byte format changed");
    }

    const GOLDEN_HEX: &str = "4152524f5731000002000000480000000300000000000000050000000000000001000000000000000300000000000000000000000000000003000000000000000000000002000000020000000200000061620000000000000200000004010069070100730000000001000000080000000000000003000000010401000000040300000001070000000007020000006162380000004152524f57310000";
}
