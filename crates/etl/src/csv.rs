//! A from-scratch CSV reader/writer with schema sniffing.
//!
//! Quoting follows RFC 4180: fields containing the delimiter, quotes or
//! newlines are wrapped in double quotes; embedded quotes double. The
//! reader is streaming (buffered, chunk-at-a-time) and the sniffer infers
//! column types from a sample, falling back through
//! `BOOLEAN -> BIGINT -> DOUBLE -> DATE -> TIMESTAMP -> VARCHAR`.

use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value, VECTOR_SIZE};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Options for reading a CSV file.
#[derive(Debug, Clone)]
pub struct CsvReadOptions {
    pub header: bool,
    pub delimiter: char,
    /// Strings equal to this (e.g. `-999`, `NA`) become NULL; empty string
    /// always does.
    pub null_string: String,
    /// Rows sampled for type sniffing.
    pub sample_rows: usize,
}

impl Default for CsvReadOptions {
    fn default() -> Self {
        CsvReadOptions {
            header: true,
            delimiter: ',',
            null_string: String::new(),
            sample_rows: 1024,
        }
    }
}

/// Split one CSV record, honoring quotes. Returns an error on unterminated
/// quotes (corrupted file).
fn split_record(line: &str, delimiter: char) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if in_quotes {
        return Err(EiderError::Parse("unterminated quote in CSV record".into()));
    }
    fields.push(cur);
    Ok(fields)
}

fn could_be(s: &str, ty: LogicalType) -> bool {
    Value::parse_as(s, ty).is_ok()
}

/// Infer a column type from sampled strings.
fn infer_type(samples: &[&str]) -> LogicalType {
    let ladder = [
        LogicalType::Boolean,
        LogicalType::BigInt,
        LogicalType::Double,
        LogicalType::Date,
        LogicalType::Timestamp,
    ];
    'ladder: for ty in ladder {
        for s in samples {
            if !could_be(s, ty) {
                continue 'ladder;
            }
        }
        if !samples.is_empty() {
            return ty;
        }
    }
    LogicalType::Varchar
}

/// Sniff column names and types from the head of a CSV file.
pub fn sniff_csv_schema(
    path: impl AsRef<Path>,
    options: &CsvReadOptions,
) -> Result<Vec<(String, LogicalType)>> {
    let file = File::open(path.as_ref())?;
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut names: Vec<String> = Vec::new();
    let mut samples: Vec<Vec<String>> = Vec::new();
    let mut first = true;
    let mut sampled = 0usize;
    while sampled < options.sample_rows {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let fields = split_record(trimmed, options.delimiter)?;
        if first {
            first = false;
            if options.header {
                names = fields;
                samples.resize(names.len(), Vec::new());
                continue;
            }
            names = (0..fields.len()).map(|i| format!("column{i}")).collect();
            samples.resize(names.len(), Vec::new());
        }
        for (i, f) in fields.iter().enumerate() {
            if i < samples.len() && !f.is_empty() && *f != options.null_string {
                samples[i].push(f.clone());
            }
        }
        sampled += 1;
    }
    if names.is_empty() {
        return Err(EiderError::Parse("CSV file is empty".into()));
    }
    Ok(names
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let refs: Vec<&str> = samples[i].iter().map(String::as_str).collect();
            (n, infer_type(&refs))
        })
        .collect())
}

/// Streaming CSV reader producing [`DataChunk`]s of the given types.
pub struct CsvReader {
    reader: BufReader<File>,
    options: CsvReadOptions,
    types: Vec<LogicalType>,
    line: String,
    rows_read: u64,
    header_skipped: bool,
}

impl CsvReader {
    pub fn open(
        path: impl AsRef<Path>,
        types: Vec<LogicalType>,
        options: CsvReadOptions,
    ) -> Result<Self> {
        let file = File::open(path.as_ref())?;
        Ok(CsvReader {
            reader: BufReader::new(file),
            options,
            types,
            line: String::new(),
            rows_read: 0,
            header_skipped: false,
        })
    }

    pub fn rows_read(&self) -> u64 {
        self.rows_read
    }

    /// Read the next chunk of up to [`VECTOR_SIZE`] rows; `None` at EOF.
    pub fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        let mut chunk = DataChunk::new(&self.types);
        while chunk.len() < VECTOR_SIZE {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                break;
            }
            let trimmed = self.line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            if self.options.header && !self.header_skipped {
                self.header_skipped = true;
                continue;
            }
            self.header_skipped = true;
            let fields = split_record(trimmed, self.options.delimiter)?;
            if fields.len() != self.types.len() {
                return Err(EiderError::Parse(format!(
                    "CSV row {} has {} fields, expected {}",
                    self.rows_read + 1,
                    fields.len(),
                    self.types.len()
                )));
            }
            let row: Vec<Value> = fields
                .iter()
                .zip(&self.types)
                .map(|(f, &ty)| {
                    if f.is_empty() || *f == self.options.null_string {
                        Ok(Value::Null)
                    } else {
                        Value::parse_as(f, ty)
                    }
                })
                .collect::<Result<_>>()?;
            chunk.append_row(&row)?;
            self.rows_read += 1;
        }
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(chunk))
        }
    }
}

/// Buffered CSV writer.
pub struct CsvWriter {
    writer: BufWriter<File>,
    delimiter: char,
    rows_written: u64,
}

impl CsvWriter {
    pub fn create(
        path: impl AsRef<Path>,
        header: Option<&[String]>,
        delimiter: char,
    ) -> Result<Self> {
        let file = File::create(path.as_ref())?;
        let mut w = CsvWriter { writer: BufWriter::new(file), delimiter, rows_written: 0 };
        if let Some(names) = header {
            let line: Vec<String> = names.iter().map(|n| w.quote(n)).collect();
            writeln!(w.writer, "{}", line.join(&delimiter.to_string()))?;
        }
        Ok(w)
    }

    fn quote(&self, field: &str) -> String {
        if field.contains(self.delimiter)
            || field.contains('"')
            || field.contains('\n')
            || field.contains('\r')
        {
            format!("\"{}\"", field.replace('"', "\"\""))
        } else {
            field.to_string()
        }
    }

    pub fn write_chunk(&mut self, chunk: &DataChunk) -> Result<()> {
        let sep = self.delimiter.to_string();
        for row in 0..chunk.len() {
            let fields: Vec<String> = chunk
                .row_values(row)
                .iter()
                .map(|v| if v.is_null() { String::new() } else { self.quote(&v.to_string()) })
                .collect();
            writeln!(self.writer, "{}", fields.join(&sep))?;
            self.rows_written += 1;
        }
        Ok(())
    }

    pub fn rows_written(&self) -> u64 {
        self.rows_written
    }

    pub fn finish(mut self) -> Result<u64> {
        self.writer.flush()?;
        Ok(self.rows_written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eider_csv_{}_{name}.csv", std::process::id()));
        p
    }

    #[test]
    fn split_record_handles_quotes() {
        assert_eq!(split_record("a,b,c", ',').unwrap(), vec!["a", "b", "c"]);
        assert_eq!(
            split_record("\"a,b\",\"say \"\"hi\"\"\",", ',').unwrap(),
            vec!["a,b", "say \"hi\"", ""]
        );
        assert!(split_record("\"open", ',').is_err());
    }

    #[test]
    fn sniffing_infers_types() {
        let path = tmp("sniff");
        std::fs::write(
            &path,
            "id,price,flag,day,name\n1,2.5,true,2020-01-12,alpha\n2,3,false,2020-01-13,beta\n",
        )
        .unwrap();
        let schema = sniff_csv_schema(&path, &CsvReadOptions::default()).unwrap();
        assert_eq!(schema[0], ("id".to_string(), LogicalType::BigInt));
        assert_eq!(schema[1], ("price".to_string(), LogicalType::Double));
        assert_eq!(schema[2], ("flag".to_string(), LogicalType::Boolean));
        assert_eq!(schema[3], ("day".to_string(), LogicalType::Date));
        assert_eq!(schema[4], ("name".to_string(), LogicalType::Varchar));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_write_round_trip() {
        let path = tmp("round");
        {
            let mut w =
                CsvWriter::create(&path, Some(&["a".to_string(), "b".to_string()]), ',').unwrap();
            let chunk = DataChunk::from_rows(
                &[LogicalType::Integer, LogicalType::Varchar],
                &[
                    vec![Value::Integer(1), Value::Varchar("plain".into())],
                    vec![Value::Null, Value::Varchar("with,comma".into())],
                    vec![Value::Integer(3), Value::Varchar("say \"hi\"".into())],
                ],
            )
            .unwrap();
            w.write_chunk(&chunk).unwrap();
            assert_eq!(w.finish().unwrap(), 3);
        }
        let mut r = CsvReader::open(
            &path,
            vec![LogicalType::Integer, LogicalType::Varchar],
            CsvReadOptions::default(),
        )
        .unwrap();
        let chunk = r.next_chunk().unwrap().unwrap();
        assert_eq!(chunk.len(), 3);
        assert!(chunk.row_values(1)[0].is_null());
        assert_eq!(chunk.row_values(1)[1], Value::Varchar("with,comma".into()));
        assert_eq!(chunk.row_values(2)[1], Value::Varchar("say \"hi\"".into()));
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn null_string_option() {
        let path = tmp("nulls");
        std::fs::write(&path, "d\n-999\n5\n").unwrap();
        let opts = CsvReadOptions { null_string: "-999".into(), ..Default::default() };
        let mut r = CsvReader::open(&path, vec![LogicalType::Integer], opts).unwrap();
        let chunk = r.next_chunk().unwrap().unwrap();
        assert!(chunk.row_values(0)[0].is_null());
        assert_eq!(chunk.row_values(1)[0], Value::Integer(5));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn field_count_mismatch_errors() {
        let path = tmp("mismatch");
        std::fs::write(&path, "a,b\n1,2\n3\n").unwrap();
        let mut r = CsvReader::open(
            &path,
            vec![LogicalType::Integer, LogicalType::Integer],
            CsvReadOptions::default(),
        )
        .unwrap();
        assert!(r.next_chunk().is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn large_file_streams_in_chunks() {
        let path = tmp("large");
        let mut body = String::from("x\n");
        for i in 0..5000 {
            body.push_str(&format!("{i}\n"));
        }
        std::fs::write(&path, body).unwrap();
        let mut r =
            CsvReader::open(&path, vec![LogicalType::BigInt], CsvReadOptions::default()).unwrap();
        let mut total = 0;
        let mut chunks = 0;
        while let Some(c) = r.next_chunk().unwrap() {
            total += c.len();
            chunks += 1;
        }
        assert_eq!(total, 5000);
        assert!(chunks >= 3);
        std::fs::remove_file(&path).unwrap();
    }
}
