//! A from-scratch CSV reader/writer with schema sniffing and byte-range
//! partitioned parallel scans.
//!
//! Quoting follows RFC 4180: fields containing the delimiter, quotes or
//! newlines are wrapped in double quotes; embedded quotes double. The
//! reader is a streaming *byte-level* state machine — records may contain
//! quoted newlines, which line-based readers silently split — and the
//! sniffer infers column types from a sample, falling back through
//! `BOOLEAN -> BIGINT -> DOUBLE -> DATE -> TIMESTAMP -> VARCHAR`.
//!
//! [`CsvSource`] exposes a file as a [`TableSource`]: it splits the data
//! region into byte-range partitions whose boundaries are resolved to
//! *true record starts* by a single quote-state prescan of the file (a
//! nominal boundary landing inside a quoted field scans forward to the
//! first newline at quote depth zero), so partitioned parallel scans see
//! exactly the records a serial scan would — each record belongs to the
//! partition containing its first byte.

use crate::source::{SourcePartition, SourceReader, TableSource};
use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value, VECTOR_SIZE};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Options for reading a CSV file.
#[derive(Debug, Clone)]
pub struct CsvReadOptions {
    pub header: bool,
    pub delimiter: char,
    /// Strings equal to this (e.g. `-999`, `NA`) become NULL; empty string
    /// always does.
    pub null_string: String,
    /// Rows sampled for type sniffing.
    pub sample_rows: usize,
}

impl Default for CsvReadOptions {
    fn default() -> Self {
        CsvReadOptions {
            header: true,
            delimiter: ',',
            null_string: String::new(),
            sample_rows: 1024,
        }
    }
}

/// Buffered byte reader with one-byte lookahead and an absolute offset —
/// the substrate of the record scanner (std's `BufReader` hides the
/// offset bookkeeping the partition logic needs).
struct ByteReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    /// Absolute file offset of the next unconsumed byte.
    offset: u64,
}

const READ_BUF: usize = 64 * 1024;

impl<R: Read> ByteReader<R> {
    fn new(inner: R, offset: u64) -> Self {
        ByteReader { inner, buf: vec![0; READ_BUF], pos: 0, len: 0, offset }
    }

    fn fill(&mut self) -> Result<bool> {
        if self.pos < self.len {
            return Ok(true);
        }
        self.len = self.inner.read(&mut self.buf)?;
        self.pos = 0;
        Ok(self.len > 0)
    }

    fn next(&mut self) -> Result<Option<u8>> {
        if !self.fill()? {
            return Ok(None);
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        self.offset += 1;
        Ok(Some(b))
    }

    fn peek(&mut self) -> Result<Option<u8>> {
        if !self.fill()? {
            return Ok(None);
        }
        Ok(Some(self.buf[self.pos]))
    }
}

/// Streaming RFC 4180 record scanner: yields one record (its fields plus
/// whether any quoting was seen) per call, tracking the absolute byte
/// offset of the next record start. Quoted fields may span newlines.
struct RecordScanner<R: Read> {
    bytes: ByteReader<R>,
    delimiter: u8,
    fields: Vec<String>,
}

impl<R: Read> RecordScanner<R> {
    fn new(inner: R, offset: u64, delimiter: u8) -> Self {
        RecordScanner { bytes: ByteReader::new(inner, offset), delimiter, fields: Vec::new() }
    }

    /// Absolute byte offset of the next unconsumed byte — after a
    /// completed record, the start of the next one.
    fn offset(&self) -> u64 {
        self.bytes.offset
    }

    /// Parse one record into `self.fields`. Returns `Ok(false)` at EOF.
    /// The second flag of `Ok(true)` is whether the record used quotes
    /// (distinguishes a blank line from a quoted empty field).
    fn next_record(&mut self) -> Result<Option<bool>> {
        self.fields.clear();
        let mut cur: Vec<u8> = Vec::new();
        let mut in_quotes = false;
        let mut saw_quote = false;
        let mut saw_byte = false;
        loop {
            let Some(b) = self.bytes.next()? else {
                if in_quotes {
                    return Err(EiderError::Parse("unterminated quote in CSV record".into()));
                }
                if !saw_byte {
                    return Ok(None);
                }
                self.push_field(cur)?;
                return Ok(Some(saw_quote));
            };
            saw_byte = true;
            if in_quotes {
                if b == b'"' {
                    if self.bytes.peek()? == Some(b'"') {
                        self.bytes.next()?;
                        cur.push(b'"');
                    } else {
                        in_quotes = false;
                    }
                } else {
                    cur.push(b);
                }
            } else if b == b'"' {
                in_quotes = true;
                saw_quote = true;
            } else if b == self.delimiter {
                self.push_field(std::mem::take(&mut cur))?;
            } else if b == b'\n' {
                self.push_field(cur)?;
                return Ok(Some(saw_quote));
            } else if b == b'\r' && self.bytes.peek()? == Some(b'\n') {
                self.bytes.next()?;
                self.push_field(cur)?;
                return Ok(Some(saw_quote));
            } else {
                cur.push(b);
            }
        }
    }

    fn push_field(&mut self, bytes: Vec<u8>) -> Result<()> {
        let s = String::from_utf8(bytes)
            .map_err(|_| EiderError::Parse("CSV field is not valid UTF-8".into()))?;
        self.fields.push(s);
        Ok(())
    }

    /// Skip records until a non-blank one is parsed (a record with fields
    /// or quotes). Returns `false` at EOF.
    fn next_data_record(&mut self) -> Result<bool> {
        loop {
            match self.next_record()? {
                None => return Ok(false),
                Some(quoted) => {
                    let blank = !quoted && self.fields.len() == 1 && self.fields[0].is_empty();
                    if !blank {
                        return Ok(true);
                    }
                }
            }
        }
    }
}

/// Resolve nominal byte offsets to true record starts: one streaming
/// quote-state pass over `[start, end)` of the file. A record start is
/// the byte after a newline at quote depth zero (plus `start` itself);
/// each `nominal[i]` (ascending, all `>= start`) resolves to the smallest
/// record start `>=` it, or `end` when none exists — a boundary inside
/// the file's final record closes the last partition at EOF.
///
/// This is what keeps byte-range partitions record-aligned even when
/// quoted fields contain delimiters or newlines: the prescan carries the
/// exact quote state from `start`, so a `\n` inside `"a,b\nc"` is never
/// mistaken for a boundary.
fn resolve_record_starts(path: &Path, start: u64, end: u64, nominal: &[u64]) -> Result<Vec<u64>> {
    debug_assert!(nominal.windows(2).all(|w| w[0] <= w[1]));
    let mut resolved = vec![end; nominal.len()];
    let mut idx = nominal.partition_point(|&t| t <= start);
    resolved[..idx].iter_mut().for_each(|r| *r = start);
    if idx == nominal.len() {
        return Ok(resolved);
    }
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(start))?;
    let mut bytes = ByteReader::new(file.take(end.saturating_sub(start)), start);
    // Three-state machine: the "saw a quote while quoted" state decides
    // escaped-vs-closing on the *next* byte, so no lookahead is needed.
    #[derive(PartialEq)]
    enum S {
        Plain,
        Quoted,
        QuoteInQuoted,
    }
    let mut state = S::Plain;
    while let Some(b) = bytes.next()? {
        let record_start = match state {
            S::Plain => {
                if b == b'"' {
                    state = S::Quoted;
                }
                b == b'\n'
            }
            S::Quoted => {
                if b == b'"' {
                    state = S::QuoteInQuoted;
                }
                false
            }
            S::QuoteInQuoted => {
                // Previous quote closed the field unless doubled.
                state = if b == b'"' { S::Quoted } else { S::Plain };
                state == S::Plain && b == b'\n'
            }
        };
        if record_start {
            let c = bytes.offset; // byte after the newline
            while idx < nominal.len() && nominal[idx] <= c {
                resolved[idx] = c;
                idx += 1;
            }
            if idx == nominal.len() {
                break;
            }
        }
    }
    Ok(resolved)
}

fn could_be(s: &str, ty: LogicalType) -> bool {
    Value::parse_as(s, ty).is_ok()
}

/// Infer a column type from sampled strings.
fn infer_type(samples: &[&str]) -> LogicalType {
    let ladder = [
        LogicalType::Boolean,
        LogicalType::BigInt,
        LogicalType::Double,
        LogicalType::Date,
        LogicalType::Timestamp,
    ];
    'ladder: for ty in ladder {
        for s in samples {
            if !could_be(s, ty) {
                continue 'ladder;
            }
        }
        if !samples.is_empty() {
            return ty;
        }
    }
    LogicalType::Varchar
}

/// Sniffed schema plus the byte offset where data records begin (after
/// the header, when there is one).
struct SniffResult {
    schema: Vec<(String, LogicalType)>,
    data_start: u64,
}

fn sniff(path: &Path, options: &CsvReadOptions) -> Result<SniffResult> {
    let file = File::open(path)?;
    let mut scanner = RecordScanner::new(file, 0, options.delimiter as u8);
    let mut names: Vec<String> = Vec::new();
    let mut samples: Vec<Vec<String>> = Vec::new();
    let mut data_start = 0u64;
    let mut first = true;
    let mut sampled = 0usize;
    while sampled < options.sample_rows {
        if !scanner.next_data_record()? {
            break;
        }
        if first {
            first = false;
            if options.header {
                names = std::mem::take(&mut scanner.fields);
                samples.resize(names.len(), Vec::new());
                data_start = scanner.offset();
                continue;
            }
            names = (0..scanner.fields.len()).map(|i| format!("column{i}")).collect();
            samples.resize(names.len(), Vec::new());
        }
        for (i, f) in scanner.fields.iter().enumerate() {
            if i < samples.len() && !f.is_empty() && *f != options.null_string {
                samples[i].push(f.clone());
            }
        }
        sampled += 1;
    }
    if names.is_empty() {
        return Err(EiderError::Parse("CSV file is empty".into()));
    }
    let schema = names
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let refs: Vec<&str> = samples[i].iter().map(String::as_str).collect();
            (n, infer_type(&refs))
        })
        .collect();
    Ok(SniffResult { schema, data_start })
}

/// Sniff column names and types from the head of a CSV file. Quoted
/// fields may span newlines — the sniffer parses records, not lines.
pub fn sniff_csv_schema(
    path: impl AsRef<Path>,
    options: &CsvReadOptions,
) -> Result<Vec<(String, LogicalType)>> {
    Ok(sniff(path.as_ref(), options)?.schema)
}

/// Streaming CSV reader producing [`DataChunk`]s of the given types,
/// optionally bounded to a byte-range partition and projected to a
/// subset of columns.
pub struct CsvReader {
    scanner: RecordScanner<File>,
    null_string: String,
    /// Full-schema column types (records are validated against these).
    types: Vec<LogicalType>,
    /// Output columns: full-schema positions, in emission order.
    projection: Vec<usize>,
    out_types: Vec<LogicalType>,
    /// Records starting at or past this offset belong to the next
    /// partition.
    end: u64,
    rows_read: u64,
    skip_header: bool,
}

impl CsvReader {
    /// Open a whole file (the serial `COPY FROM` path).
    pub fn open(
        path: impl AsRef<Path>,
        types: Vec<LogicalType>,
        options: CsvReadOptions,
    ) -> Result<Self> {
        let projection: Vec<usize> = (0..types.len()).collect();
        Self::open_range(path, types, &options, 0, u64::MAX, projection, options.header)
    }

    /// Open one byte-range partition. `begin` must be a true record start
    /// (resolve with the source's partitioner); a record *starting*
    /// before `end` is read to completion even when it extends past it.
    pub fn open_range(
        path: impl AsRef<Path>,
        types: Vec<LogicalType>,
        options: &CsvReadOptions,
        begin: u64,
        end: u64,
        projection: Vec<usize>,
        skip_header: bool,
    ) -> Result<Self> {
        let mut file = File::open(path.as_ref())?;
        if begin > 0 {
            file.seek(SeekFrom::Start(begin))?;
        }
        let out_types = projection.iter().map(|&i| types[i]).collect();
        Ok(CsvReader {
            scanner: RecordScanner::new(file, begin, options.delimiter as u8),
            null_string: options.null_string.clone(),
            types,
            projection,
            out_types,
            end,
            rows_read: 0,
            skip_header,
        })
    }

    pub fn rows_read(&self) -> u64 {
        self.rows_read
    }

    /// Read the next chunk of up to [`VECTOR_SIZE`] rows; `None` when the
    /// range (or file) is exhausted.
    pub fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        let mut chunk = DataChunk::new(&self.out_types);
        let mut row: Vec<Value> = Vec::with_capacity(self.projection.len());
        while chunk.len() < VECTOR_SIZE {
            if self.scanner.offset() >= self.end {
                break;
            }
            if !self.scanner.next_data_record()? {
                break;
            }
            if self.skip_header {
                self.skip_header = false;
                continue;
            }
            let fields = &self.scanner.fields;
            if fields.len() != self.types.len() {
                return Err(EiderError::Parse(format!(
                    "CSV row {} has {} fields, expected {}",
                    self.rows_read + 1,
                    fields.len(),
                    self.types.len()
                )));
            }
            row.clear();
            for &col in &self.projection {
                let f = &fields[col];
                let v = if f.is_empty() || *f == self.null_string {
                    Value::Null
                } else {
                    Value::parse_as(f, self.types[col])?
                };
                row.push(v);
            }
            chunk.append_row(&row)?;
            self.rows_read += 1;
        }
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(chunk))
        }
    }
}

/// Smallest data region worth its own partition: below this, per-worker
/// dispatch overhead dominates the parse.
const MIN_PARTITION_BYTES: u64 = 16 * 1024;

/// A CSV file behind the [`TableSource`] contract: schema sniffed at
/// construction, byte-range partitions with quote-aware record-aligned
/// boundaries. CSV carries no min/max metadata, so no partition pruning.
pub struct CsvSource {
    path: PathBuf,
    options: CsvReadOptions,
    names: Vec<String>,
    types: Vec<LogicalType>,
    data_start: u64,
    file_len: u64,
}

impl CsvSource {
    /// Open and sniff. The schema (and the data-start offset past the
    /// header) is fixed here; partitioning happens per scan.
    pub fn open(path: impl AsRef<Path>, options: CsvReadOptions) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let sniffed = sniff(&path, &options)?;
        let file_len = std::fs::metadata(&path)?.len();
        let (names, types) = sniffed.schema.into_iter().unzip();
        Ok(CsvSource { path, options, names, types, data_start: sniffed.data_start, file_len })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replace the sniffed column types with a caller-declared schema
    /// (same arity). `COPY t FROM` uses this so fields parse directly as
    /// the table's declared types — a `VARCHAR` column keeps `"00123"`
    /// verbatim instead of round-tripping through an inferred integer.
    pub fn with_types(mut self, types: Vec<LogicalType>) -> Result<Self> {
        if types.len() != self.types.len() {
            return Err(EiderError::Bind(format!(
                "CSV file {} has {} columns, expected {}",
                self.path.display(),
                self.types.len(),
                types.len()
            )));
        }
        self.types = types;
        Ok(self)
    }
}

impl TableSource for CsvSource {
    fn name(&self) -> String {
        format!("read_csv('{}')", self.path.display())
    }

    fn column_names(&self) -> &[String] {
        &self.names
    }

    fn column_types(&self) -> &[LogicalType] {
        &self.types
    }

    /// Byte-range split of the data region. A pure function of the file
    /// and `target` — never of thread count — so partitioned results
    /// merge bit-identically at any parallelism.
    fn partitions(&self, target: usize) -> Result<Vec<SourcePartition>> {
        let bytes = self.file_len.saturating_sub(self.data_start);
        if bytes == 0 {
            return Ok(Vec::new());
        }
        let parts = (bytes / MIN_PARTITION_BYTES).clamp(1, target.max(1) as u64);
        if parts <= 1 {
            return Ok(vec![SourcePartition {
                seq: 0,
                begin: self.data_start,
                end: self.file_len,
            }]);
        }
        let nominal: Vec<u64> = (1..parts).map(|i| self.data_start + bytes * i / parts).collect();
        let starts = resolve_record_starts(&self.path, self.data_start, self.file_len, &nominal)?;
        let mut bounds = vec![self.data_start];
        for s in starts {
            // Two nominal boundaries inside one huge record resolve to
            // the same start; drop the empty partition between them.
            if s > *bounds.last().expect("non-empty") && s < self.file_len {
                bounds.push(s);
            }
        }
        bounds.push(self.file_len);
        Ok(bounds
            .windows(2)
            .enumerate()
            .map(|(seq, w)| SourcePartition { seq, begin: w[0], end: w[1] })
            .collect())
    }

    fn open(
        &self,
        partition: &SourcePartition,
        projection: &[usize],
    ) -> Result<Box<dyn SourceReader>> {
        let reader = CsvReader::open_range(
            &self.path,
            self.types.clone(),
            &self.options,
            partition.begin,
            partition.end,
            projection.to_vec(),
            false,
        )?;
        Ok(Box::new(reader))
    }
}

impl SourceReader for CsvReader {
    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        CsvReader::next_chunk(self)
    }
}

/// Buffered CSV writer.
pub struct CsvWriter {
    writer: BufWriter<File>,
    delimiter: char,
    rows_written: u64,
}

impl CsvWriter {
    pub fn create(
        path: impl AsRef<Path>,
        header: Option<&[String]>,
        delimiter: char,
    ) -> Result<Self> {
        let file = File::create(path.as_ref())?;
        let mut w = CsvWriter { writer: BufWriter::new(file), delimiter, rows_written: 0 };
        if let Some(names) = header {
            let line: Vec<String> = names.iter().map(|n| w.quote(n)).collect();
            writeln!(w.writer, "{}", line.join(&delimiter.to_string()))?;
        }
        Ok(w)
    }

    fn quote(&self, field: &str) -> String {
        if field.contains(self.delimiter)
            || field.contains('"')
            || field.contains('\n')
            || field.contains('\r')
        {
            format!("\"{}\"", field.replace('"', "\"\""))
        } else {
            field.to_string()
        }
    }

    pub fn write_chunk(&mut self, chunk: &DataChunk) -> Result<()> {
        let sep = self.delimiter.to_string();
        for row in 0..chunk.len() {
            let fields: Vec<String> = chunk
                .row_values(row)
                .iter()
                .map(|v| if v.is_null() { String::new() } else { self.quote(&v.to_string()) })
                .collect();
            writeln!(self.writer, "{}", fields.join(&sep))?;
            self.rows_written += 1;
        }
        Ok(())
    }

    pub fn rows_written(&self) -> u64 {
        self.rows_written
    }

    pub fn finish(mut self) -> Result<u64> {
        self.writer.flush()?;
        Ok(self.rows_written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eider_csv_{}_{name}.csv", std::process::id()));
        p
    }

    fn scan_one(line: &str, delimiter: char) -> Result<Vec<String>> {
        let mut s = RecordScanner::new(line.as_bytes(), 0, delimiter as u8);
        s.next_record()?;
        Ok(std::mem::take(&mut s.fields))
    }

    #[test]
    fn record_scanner_handles_quotes() {
        assert_eq!(scan_one("a,b,c", ',').unwrap(), vec!["a", "b", "c"]);
        assert_eq!(
            scan_one("\"a,b\",\"say \"\"hi\"\"\",", ',').unwrap(),
            vec!["a,b", "say \"hi\"", ""]
        );
        assert!(scan_one("\"open", ',').is_err());
    }

    #[test]
    fn quoted_newlines_stay_in_one_record() {
        let mut s = RecordScanner::new("a,\"x\ny\"\nb,z\n".as_bytes(), 0, b',');
        assert!(s.next_record().unwrap().is_some());
        assert_eq!(s.fields, vec!["a", "x\ny"]);
        assert!(s.next_record().unwrap().is_some());
        assert_eq!(s.fields, vec!["b", "z"]);
        assert!(s.next_record().unwrap().is_none());
    }

    #[test]
    fn sniffing_infers_types() {
        let path = tmp("sniff");
        std::fs::write(
            &path,
            "id,price,flag,day,name\n1,2.5,true,2020-01-12,alpha\n2,3,false,2020-01-13,beta\n",
        )
        .unwrap();
        let schema = sniff_csv_schema(&path, &CsvReadOptions::default()).unwrap();
        assert_eq!(schema[0], ("id".to_string(), LogicalType::BigInt));
        assert_eq!(schema[1], ("price".to_string(), LogicalType::Double));
        assert_eq!(schema[2], ("flag".to_string(), LogicalType::Boolean));
        assert_eq!(schema[3], ("day".to_string(), LogicalType::Date));
        assert_eq!(schema[4], ("name".to_string(), LogicalType::Varchar));
        std::fs::remove_file(&path).unwrap();
    }

    /// The regression `sniff_csv_schema` used to hit: a quoted field
    /// containing a newline made the line-based sampler read half a
    /// record and mis-infer every column after it.
    #[test]
    fn sniffing_survives_quoted_newlines_and_delimiters() {
        let path = tmp("sniff_embedded");
        std::fs::write(&path, "id,note,score\n1,\"line one\nline two\",2.5\n2,\"a,b,c\",3.5\n")
            .unwrap();
        let schema = sniff_csv_schema(&path, &CsvReadOptions::default()).unwrap();
        assert_eq!(
            schema,
            vec![
                ("id".to_string(), LogicalType::BigInt),
                ("note".to_string(), LogicalType::Varchar),
                ("score".to_string(), LogicalType::Double),
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_write_round_trip() {
        let path = tmp("round");
        {
            let mut w =
                CsvWriter::create(&path, Some(&["a".to_string(), "b".to_string()]), ',').unwrap();
            let chunk = DataChunk::from_rows(
                &[LogicalType::Integer, LogicalType::Varchar],
                &[
                    vec![Value::Integer(1), Value::Varchar("plain".into())],
                    vec![Value::Null, Value::Varchar("with,comma".into())],
                    vec![Value::Integer(3), Value::Varchar("say \"hi\"".into())],
                ],
            )
            .unwrap();
            w.write_chunk(&chunk).unwrap();
            assert_eq!(w.finish().unwrap(), 3);
        }
        let mut r = CsvReader::open(
            &path,
            vec![LogicalType::Integer, LogicalType::Varchar],
            CsvReadOptions::default(),
        )
        .unwrap();
        let chunk = r.next_chunk().unwrap().unwrap();
        assert_eq!(chunk.len(), 3);
        assert!(chunk.row_values(1)[0].is_null());
        assert_eq!(chunk.row_values(1)[1], Value::Varchar("with,comma".into()));
        assert_eq!(chunk.row_values(2)[1], Value::Varchar("say \"hi\"".into()));
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reader_round_trips_quoted_newlines() {
        let path = tmp("round_newline");
        {
            let mut w = CsvWriter::create(&path, Some(&["t".to_string()]), ',').unwrap();
            let chunk = DataChunk::from_rows(
                &[LogicalType::Varchar],
                &[
                    vec![Value::Varchar("first\nsecond".into())],
                    vec![Value::Varchar("plain".into())],
                ],
            )
            .unwrap();
            w.write_chunk(&chunk).unwrap();
            w.finish().unwrap();
        }
        let mut r =
            CsvReader::open(&path, vec![LogicalType::Varchar], CsvReadOptions::default()).unwrap();
        let chunk = r.next_chunk().unwrap().unwrap();
        assert_eq!(chunk.len(), 2);
        assert_eq!(chunk.row_values(0)[0], Value::Varchar("first\nsecond".into()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn null_string_option() {
        let path = tmp("nulls");
        std::fs::write(&path, "d\n-999\n5\n").unwrap();
        let opts = CsvReadOptions { null_string: "-999".into(), ..Default::default() };
        let mut r = CsvReader::open(&path, vec![LogicalType::Integer], opts).unwrap();
        let chunk = r.next_chunk().unwrap().unwrap();
        assert!(chunk.row_values(0)[0].is_null());
        assert_eq!(chunk.row_values(1)[0], Value::Integer(5));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn field_count_mismatch_errors() {
        let path = tmp("mismatch");
        std::fs::write(&path, "a,b\n1,2\n3\n").unwrap();
        let mut r = CsvReader::open(
            &path,
            vec![LogicalType::Integer, LogicalType::Integer],
            CsvReadOptions::default(),
        )
        .unwrap();
        assert!(r.next_chunk().is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn large_file_streams_in_chunks() {
        let path = tmp("large");
        let mut body = String::from("x\n");
        for i in 0..5000 {
            body.push_str(&format!("{i}\n"));
        }
        std::fs::write(&path, body).unwrap();
        let mut r =
            CsvReader::open(&path, vec![LogicalType::BigInt], CsvReadOptions::default()).unwrap();
        let mut total = 0;
        let mut chunks = 0;
        while let Some(c) = r.next_chunk().unwrap() {
            total += c.len();
            chunks += 1;
        }
        assert_eq!(total, 5000);
        assert!(chunks >= 3);
        std::fs::remove_file(&path).unwrap();
    }

    /// Collect all rows of a source scanned through `parts` partitions,
    /// concatenated in partition seq order.
    fn scan_partitioned(src: &CsvSource, target: usize) -> Vec<Vec<Value>> {
        let projection: Vec<usize> = (0..src.column_types().len()).collect();
        let mut rows = Vec::new();
        let parts = src.partitions(target).unwrap();
        for part in &parts {
            let mut reader = TableSource::open(src, part, &projection).unwrap();
            while let Some(chunk) = reader.next_chunk().unwrap() {
                rows.extend(chunk.to_rows());
            }
        }
        rows
    }

    /// The tentpole partitioning property: byte-range partitions tile the
    /// records exactly — even when quoted fields contain delimiters and
    /// newlines that a naive line splitter would trip over — and the
    /// decomposition is a pure function of the file, so any partition
    /// count yields the same rows in the same order.
    #[test]
    fn partitioned_scan_equals_serial_scan_with_embedded_newlines() {
        let path = tmp("partition_quotes");
        let mut body = String::from("id,note\n");
        for i in 0..6000 {
            // Every third record hides a delimiter and a newline inside
            // quotes; records are long enough that boundaries land inside
            // them for small partition counts.
            match i % 3 {
                0 => body.push_str(&format!("{i},\"padding padding padding {i}\"\n")),
                1 => body.push_str(&format!("{i},\"with,comma,{i},and more padding\"\n")),
                _ => body.push_str(&format!("{i},\"line one {i}\nline two {i}\"\n")),
            }
        }
        std::fs::write(&path, &body).unwrap();
        let src = CsvSource::open(&path, CsvReadOptions::default()).unwrap();
        let serial = scan_partitioned(&src, 1);
        assert_eq!(serial.len(), 6000);
        for target in [2, 4, 8, 16] {
            let parts = src.partitions(target).unwrap();
            assert!(parts.len() >= 2, "file is big enough to split at target {target}");
            assert_eq!(scan_partitioned(&src, target), serial, "target {target}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// A nominal boundary landing *inside* a quoted field must resolve
    /// forward to the next true record start, not to the quoted newline.
    #[test]
    fn boundary_resolution_skips_quoted_newlines() {
        let path = tmp("boundary");
        // One giant quoted record full of newlines, then normal records.
        let mut body = String::from("a,b\n");
        body.push_str(&format!("1,\"{}\"\n", "x\n".repeat(20_000)));
        for i in 0..2000 {
            body.push_str(&format!("{i},plain\n"));
        }
        std::fs::write(&path, &body).unwrap();
        let src = CsvSource::open(&path, CsvReadOptions::default()).unwrap();
        let serial = scan_partitioned(&src, 1);
        assert_eq!(serial.len(), 2001);
        for target in [2, 5, 9] {
            assert_eq!(scan_partitioned(&src, target), serial, "target {target}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn projection_pushdown_emits_selected_columns_only() {
        let path = tmp("projection");
        std::fs::write(&path, "a,b,c\n1,x,2.5\n3,y,4.5\n").unwrap();
        let src = CsvSource::open(&path, CsvReadOptions::default()).unwrap();
        let parts = src.partitions(4).unwrap();
        assert_eq!(parts.len(), 1, "tiny file stays a single partition");
        let mut reader = TableSource::open(&src, &parts[0], &[2, 0]).unwrap();
        let chunk = SourceReader::next_chunk(&mut *reader).unwrap().unwrap();
        assert_eq!(chunk.types(), &[LogicalType::Double, LogicalType::BigInt]);
        assert_eq!(chunk.row_values(0), vec![Value::Double(2.5), Value::BigInt(1)]);
        assert_eq!(chunk.row_values(1), vec![Value::Double(4.5), Value::BigInt(3)]);
        std::fs::remove_file(&path).unwrap();
    }
}
