//! ETL support: external table sources (CSV, Arrow IPC) behind the
//! [`TableSource`] scan API, plus CSV writing.
//!
//! §2: "the database can directly scan existing files (e.g. CSV), reshape
//! the result and then append it to a persistent table ... out-of-core
//! processing, parallelization and transactional behaviour is also highly
//! relevant in the ETL process." `COPY t FROM 'file.csv'`,
//! `SELECT ... FROM read_csv(...)` / `read_arrow(...)` and
//! `Appender::from_source` all land here. Sources stream chunk-at-a-time
//! so arbitrarily large files scan in bounded memory, and partition into
//! independent slices so the pipeline DAG scans them morsel-parallel.

pub mod arrow;
pub mod csv;
pub mod source;

pub use arrow::{ArrowFileSource, ArrowWriter};
pub use csv::{sniff_csv_schema, CsvReadOptions, CsvReader, CsvSource, CsvWriter};
pub use source::{for_each_chunk, SourcePartition, SourceReader, TableSource};
