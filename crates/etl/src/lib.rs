//! ETL support: CSV reading (with type sniffing) and writing.
//!
//! §2: "the database can directly scan existing files (e.g. CSV), reshape
//! the result and then append it to a persistent table ... out-of-core
//! processing, parallelization and transactional behaviour is also highly
//! relevant in the ETL process." `COPY t FROM 'file.csv'` lands here; the
//! reader streams chunk-at-a-time so arbitrarily large files load in
//! bounded memory, inside a transaction.

pub mod csv;

pub use csv::{sniff_csv_schema, CsvReadOptions, CsvReader, CsvWriter};
