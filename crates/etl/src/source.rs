//! The [`TableSource`] trait: a partitionable, schema-bearing,
//! projectable stream of [`DataChunk`]s.
//!
//! The paper's §3 pitch is that the engine lives *inside* the data-science
//! workflow — and that workflow lives in files, not in pre-ingested
//! tables. `TableSource` is the one columnar contract those files plug in
//! behind: the morsel dispenser
//! ([`MorselSource`](../../eider_exec/parallel/morsel/struct.MorselSource.html))
//! hands out source *partitions* exactly like table row-group slices, so a
//! CSV byte range or an Arrow record batch flows through the same
//! pipeline-DAG machinery as a `DataTable` scan — projection pushdown,
//! zone-map pruning and bit-identical merge order included.
//!
//! Implementations in this crate: [`CsvSource`](crate::csv::CsvSource)
//! (byte-range partitioned with quote-aware boundary resolution) and
//! [`ArrowFileSource`](crate::arrow::ArrowFileSource) (record-batch
//! partitioned with footer min/max pruning). The engine's own table scan
//! is the third implementation, living in `eider-exec` next to the
//! dispenser. Bulk ingest reuses the same contract from the other side:
//! `Appender::from_source` drains any `TableSource` into a table.

use eider_txn::TableFilter;
use eider_vector::{DataChunk, LogicalType, Result};

/// One independently scannable slice of a source.
///
/// `begin`/`end` are *source-defined units* — byte offsets for a CSV
/// range, record-batch indexes for an Arrow file, row offsets for a table
/// row group. Only the source that produced a partition interprets them;
/// the dispenser treats partitions as opaque claim tickets. `seq` is the
/// partition's position in the source's canonical order: results merged
/// in `seq` order are bit-identical no matter how many workers scanned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourcePartition {
    /// Position in the source's canonical (serial) scan order.
    pub seq: usize,
    /// First unit of the slice (inclusive), in source-defined units.
    pub begin: u64,
    /// One past the last unit of the slice, in source-defined units.
    pub end: u64,
}

/// A scanner over one partition: pulls chunks until the slice is drained.
pub trait SourceReader: Send {
    /// The next chunk of the partition, already projected to the columns
    /// the partition was opened with; `None` when the slice is exhausted.
    fn next_chunk(&mut self) -> Result<Option<DataChunk>>;
}

/// A partitionable, schema-bearing, projectable stream of chunks.
///
/// The contract the morsel dispenser needs and nothing more:
///
/// * **schema** — [`column_names`](TableSource::column_names) /
///   [`column_types`](TableSource::column_types) describe the full
///   source schema; filters and projections address these positions;
/// * **partitioning** — [`partitions`](TableSource::partitions) splits
///   the source into independent slices. The decomposition must depend
///   only on the data and the `target` hint, never on thread count, so a
///   fixed merge order yields bit-identical results at any parallelism;
/// * **pruning** — [`prunable`](TableSource::prunable) may skip a
///   partition when format-level min/max metadata proves no row can
///   match (conservative: `false` means "must scan");
/// * **projection** — [`open`](TableSource::open) yields a reader that
///   emits exactly the requested columns in the requested order.
pub trait TableSource: Send + Sync {
    /// Short human-readable name for plans and errors (e.g.
    /// `read_csv('data.csv')`).
    fn name(&self) -> String;

    /// Column names of the full source schema.
    fn column_names(&self) -> &[String];

    /// Column types of the full source schema.
    fn column_types(&self) -> &[LogicalType];

    /// Split the source into at most ~`target` independent partitions
    /// (fewer when the source is small or its format bounds the split).
    /// The decomposition must be a pure function of the source data and
    /// `target`.
    fn partitions(&self, target: usize) -> Result<Vec<SourcePartition>>;

    /// `true` when the source's metadata proves no row of `partition` can
    /// satisfy all `filters` (which address full-schema column
    /// positions). The default never prunes.
    fn prunable(&self, partition: &SourcePartition, filters: &[TableFilter]) -> bool {
        let _ = (partition, filters);
        false
    }

    /// Open one partition for scanning, projected to `projection`
    /// (full-schema column positions, emitted in the given order).
    fn open(
        &self,
        partition: &SourcePartition,
        projection: &[usize],
    ) -> Result<Box<dyn SourceReader>>;

    /// Total row estimate when the format knows it cheaply (Arrow footer
    /// row counts); `None` when rows are unknown before scanning (CSV).
    fn estimated_rows(&self) -> Option<u64> {
        None
    }
}

/// Drain an entire source serially in canonical partition order — the
/// shared bulk path behind `COPY FROM`, `Appender::from_source` and the
/// serial scan operator's fallbacks. `projection` selects and orders
/// columns; the callback receives each chunk in deterministic order.
pub fn for_each_chunk(
    source: &dyn TableSource,
    projection: &[usize],
    mut f: impl FnMut(DataChunk) -> Result<()>,
) -> Result<()> {
    let mut parts = source.partitions(1)?;
    parts.sort_by_key(|p| p.seq);
    for part in &parts {
        let mut reader = source.open(part, projection)?;
        while let Some(chunk) = reader.next_chunk()? {
            f(chunk)?;
        }
    }
    Ok(())
}
