//! Perf-regression gate over `BENCH_olap.json` summaries.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--threshold 0.30]
//! ```
//!
//! Compares the *mean* of every `olap/*` and `parallel/*` benchmark
//! present in both files and exits non-zero when any fresh mean exceeds
//! its baseline by more than the threshold (default +30%). Machine
//! classes matter: when a pair's recorded `host_cpus` differ (a 1-core
//! container baseline vs a 4-core runner), wall-clock means are not
//! directly comparable, so the pair gates with a *relaxed* threshold
//! (base + [`CROSS_CLASS_SLACK`]) — loose enough that 1-vs-4-core
//! scheduling differences never flap the gate, tight enough that an
//! order-of-magnitude regression still fails instead of passing
//! vacuously. Recorded snapshots (`baseline-pre-prN/...`) and other
//! bench families are informational history, not gated. `ci.sh bench-check` drives this with
//! the committed file as baseline and a fresh `bench-smoke` run as
//! candidate, so the perf trajectory is *enforced*, not just archived.
//!
//! The input is the criterion shim's line-per-entry JSON array; parsing is
//! deliberately hand-rolled so the gate works in this dependency-free
//! workspace.

use std::process::ExitCode;

/// One parsed summary entry.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    mean_ns: f64,
    /// Per-iteration minimum — the noise-robust statistic (a co-tenant
    /// burst inflates the mean but rarely the min).
    min_ns: Option<f64>,
    /// Core count of the machine that measured this entry (absent in
    /// summaries written before the field existed).
    host_cpus: Option<u32>,
}

/// Pull `"field":<number>` out of a JSON object line.
fn field_number(line: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Pull `"name":"<value>"` out of a JSON object line (bench names never
/// contain escaped quotes).
fn field_name(line: &str) -> Option<String> {
    let key = "\"name\":\"";
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn parse_summary(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"name\"") {
            continue;
        }
        let (Some(name), Some(mean_ns)) = (field_name(line), field_number(line, "mean_ns")) else {
            return Err(format!("{path}: malformed entry: {line}"));
        };
        let host_cpus = field_number(line, "host_cpus").map(|v| v as u32);
        let min_ns = field_number(line, "min_ns");
        entries.push(Entry { name, mean_ns, min_ns, host_cpus });
    }
    if entries.is_empty() {
        return Err(format!("{path}: no benchmark entries found"));
    }
    Ok(entries)
}

/// Only these families gate CI; recorded `baseline-pre-prN/*` history and
/// experimental families stay informational.
fn gated(name: &str) -> bool {
    name.starts_with("olap/") || name.starts_with("parallel/")
}

/// Extra tolerance added to the threshold when baseline and fresh entry
/// were measured on machines with different core counts: +200% absorbs
/// per-core speed and scheduling differences across classes while still
/// catching catastrophic regressions.
const CROSS_CLASS_SLACK: f64 = 2.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.30f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                eprintln!("--threshold requires a number (e.g. 0.30)");
                return ExitCode::FAILURE;
            };
            threshold = v;
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench_check <baseline.json> <fresh.json> [--threshold 0.30]");
        return ExitCode::FAILURE;
    };
    let (baseline, fresh) = match (parse_summary(baseline_path), parse_summary(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for base in baseline.iter().filter(|e| gated(&e.name)) {
        let Some(now) = fresh.iter().find(|e| e.name == base.name) else {
            println!("bench-check: WARNING {} missing from fresh run (not gated)", base.name);
            continue;
        };
        // Wall-clock means are only directly comparable within a machine
        // class; across classes the gate stays live but relaxed.
        // Bit-identical means are a tell that the "fresh" entry is the
        // merged-through baseline itself (bench crashed mid-run, or was
        // renamed): wall clocks never repeat to the nanosecond. Do not
        // let it count as a 0% pass.
        if now.mean_ns == base.mean_ns {
            println!(
                "bench-check: WARNING {} mean identical to baseline — looks unmeasured (not gated)",
                base.name
            );
            continue;
        }
        let cross_class = match (base.host_cpus, now.host_cpus) {
            (Some(b), Some(f)) => b != f,
            _ => false,
        };
        let limit = if cross_class { threshold + CROSS_CLASS_SLACK } else { threshold };
        compared += 1;
        let ratio = now.mean_ns / base.mean_ns.max(1.0);
        // A real regression shifts the whole distribution; a co-tenant
        // burst inflates only the mean. Require the *min* to regress too
        // (when both files record one) before failing the gate.
        let min_ratio = match (now.min_ns, base.min_ns) {
            (Some(n), Some(b)) => n / b.max(1.0),
            _ => ratio,
        };
        let regressed = ratio > 1.0 + limit && min_ratio > 1.0 + limit;
        let verdict = if regressed {
            "REGRESSION"
        } else if ratio > 1.0 + limit {
            "ok (mean spike, min within bounds — likely scheduler noise)"
        } else if cross_class {
            "ok (cross-class, relaxed gate)"
        } else {
            "ok"
        };
        println!(
            "bench-check: {:<44} {:>12.3}ms -> {:>12.3}ms  ({:+6.1}%)  {verdict}",
            base.name,
            base.mean_ns / 1e6,
            now.mean_ns / 1e6,
            (ratio - 1.0) * 100.0
        );
        if regressed {
            regressions.push((base.name.clone(), ratio));
        }
    }
    if compared == 0 {
        eprintln!(
            "bench-check: no gated (olap/*, parallel/*) benches in common — refusing to pass vacuously"
        );
        return ExitCode::FAILURE;
    }
    if regressions.is_empty() {
        println!(
            "bench-check: {compared} benches within +{:.0}% of the committed baselines",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-check: {} regression(s) beyond +{:.0}%:",
            regressions.len(),
            threshold * 100.0
        );
        for (name, ratio) in &regressions {
            eprintln!("  {name}: {:+.1}% vs baseline", (ratio - 1.0) * 100.0);
        }
        ExitCode::FAILURE
    }
}
