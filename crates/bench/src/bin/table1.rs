//! **Table 1** regenerator: 30-day consumer-hardware failure probabilities.
//!
//! Paper (from Nightingale et al., EuroSys'11):
//!
//! ```text
//! Failure          Pr[1st failure]   Pr[2nd fail | 1 fail]
//! CPU (MCE)        1 in 190          1 in 2.9
//! DRAM bit flip    1 in 1700         1 in 12
//! Disk failure     1 in 270          1 in 3.5
//! ```
//!
//! We simulate a fleet of consumer machines whose per-component hazard
//! rates are calibrated to the paper's first column and whose hazard jumps
//! after a first failure (latent defects). The simulated fleet must
//! reproduce both columns (see DESIGN.md substitution T1).

use eider_resilience::failure_model::{simulate_table1, ComponentKind, FailureModel};

fn main() {
    let machines = 2_000_000;
    println!("Table 1: 30-day OS crash probability ({machines} simulated machines)\n");
    println!(
        "{:<16} {:>18} {:>18} {:>12} {:>12}",
        "Failure", "Pr[1st failure]", "Pr[2nd | 1 fail]", "paper 1st", "paper 2nd"
    );
    for report in simulate_table1(machines, 0x1EDC6F41) {
        let c = report.component;
        println!(
            "{:<16} {:>18} {:>18} {:>12} {:>12}",
            c.label(),
            format!("1 in {:.0}", report.first_failure_one_in()),
            format!("1 in {:.1}", report.second_failure_one_in()),
            format!("1 in {:.0}", c.paper_first_failure_odds()),
            format!("1 in {:.1}", c.paper_second_failure_odds()),
        );
    }
    println!("\nHazard multipliers after first failure (the \"two orders of magnitude\"):");
    for c in ComponentKind::ALL {
        let m = FailureModel::for_component(c);
        println!("  {:<16} x{:.0}", c.label(), m.hazard_multiplier());
    }
}
