//! §3 (Resilience) experiment driver.
//!
//! Claims reproduced:
//! * E3a — block checksums detect every injected bit flip in persistent
//!   storage ("detect these errors ... or cease operation entirely").
//! * E3b — AN-coded query processing detects in-memory flips at a 1.1×–1.6×
//!   slowdown (Kolditz et al.).
//! * E3c — moving-inversions memory tests catch stuck and coupled cells
//!   that naive write-read misses; the health monitor escalates after the
//!   first fault (Table 1's recurrence argument).

use eider_resilience::ancode::AnCodec;
use eider_resilience::fault::{CellDefect, Defect, FaultInjector, SimulatedMemory};
use eider_resilience::health::HealthMonitor;
use eider_resilience::memtest::{MemTestKind, MemoryTester};
use eider_storage::file_manager::{BlockManager, InMemoryBlockManager};
use eider_workload::Workload;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    println!("# E3a: block checksum detection of injected disk bit flips");
    let health = Arc::new(HealthMonitor::new());
    let mgr = InMemoryBlockManager::with_health(Arc::clone(&health));
    let mut injector = FaultInjector::new(99, 0.0);
    let trials = 200;
    let mut detected = 0;
    for i in 0..trials {
        let id = mgr.allocate_block();
        mgr.write_block(id, &vec![(i % 251) as u8; 200_000]).expect("write");
        // Flip exactly one random bit of the stored 256 KiB image.
        let mut image = vec![0u8; 1];
        let bit = injector.flip_random_bits(&mut image, 1)[0]; // draw position
        mgr.corrupt_block(id, (bit * 7919) % (256 * 1024 * 8));
        if mgr.read_block(id).is_err() {
            detected += 1;
        }
    }
    println!("  injected flips     : {trials}");
    println!("  detected           : {detected} ({:.1}%)", 100.0 * detected as f64 / trials as f64);
    println!(
        "  health monitor     : {} disk faults recorded, mode {:?}",
        health.disk_faults(),
        health.mode()
    );

    println!("\n# E3b: AN-code hardening overhead (paper target: 1.1x-1.6x slower)");
    let data32 = Workload::new(3).int_column(4_000_000, 1_000_000);
    let data64: Vec<i64> = data32.iter().map(|&v| i64::from(v)).collect();
    let codec = AnCodec::default();
    let encoded = codec.encode_slice_i32(&data32);
    // Plain sums: the narrow original (half the memory traffic — AN codes
    // inherently widen 32-bit payloads to 64-bit words) and the
    // width-matched 64-bit baseline AHEAD compares against.
    let started = Instant::now();
    let mut plain32_sum = 0i64;
    for &v in &data32 {
        plain32_sum = plain32_sum.wrapping_add(i64::from(v));
    }
    let plain32_time = started.elapsed();
    let started = Instant::now();
    let mut plain64_sum = 0i64;
    for &v in &data64 {
        plain64_sum = plain64_sum.wrapping_add(v);
    }
    let plain64_time = started.elapsed();
    // Hardened sum over encoded data (validates the final aggregate).
    let started = Instant::now();
    let hard_sum = codec.sum_encoded(&encoded).expect("clean data");
    let hard_time = started.elapsed();
    assert_eq!(plain32_sum, hard_sum);
    assert_eq!(plain64_sum, hard_sum);
    println!("  plain i32 sum      : {:>8.2} ms (16 MB scanned)", plain32_time.as_secs_f64() * 1e3);
    println!("  plain i64 sum      : {:>8.2} ms (32 MB scanned)", plain64_time.as_secs_f64() * 1e3);
    println!("  AN-coded sum       : {:>8.2} ms (32 MB scanned)", hard_time.as_secs_f64() * 1e3);
    println!(
        "  width-matched cost : {:>8.2}x (vs i64 baseline; paper band 1.1x-1.6x)",
        hard_time.as_secs_f64() / plain64_time.as_secs_f64()
    );
    println!(
        "  incl. 32->64 blowup: {:>8.2}x (vs original i32 data)",
        hard_time.as_secs_f64() / plain32_time.as_secs_f64()
    );
    // Detection: flip one bit anywhere, the hardened sum must fail.
    let mut corrupted = encoded.clone();
    corrupted[1_234_567] ^= 1 << 17;
    assert!(codec.sum_encoded(&corrupted).is_err());
    println!("  single bit flip    : detected by AN check");

    println!("\n# E3c: moving inversions vs naive write-read on defective memory");
    let defects = vec![
        Defect { word: 1000, bit: 3, kind: CellDefect::StuckHigh },
        Defect { word: 70_000, bit: 41, kind: CellDefect::StuckLow },
        Defect { word: 40_000, bit: 7, kind: CellDefect::CoupledToPrevious },
    ];
    let mut mem = SimulatedMemory::with_defects(100_000, defects);
    // Naive: write+read one pattern.
    let mut naive_errors = 0;
    for pattern in [0u64, u64::MAX] {
        for i in 0..100_000 {
            mem.write(i, pattern);
        }
        for i in 0..100_000 {
            if mem.read(i) != pattern {
                naive_errors += 1;
                mem.write(i, pattern);
            }
        }
    }
    let report = MemoryTester::new(MemTestKind::Full).test(&mut mem);
    println!("  naive write-read   : {naive_errors} of 3 defects found (stuck bits only)");
    println!(
        "  moving inversions  : {} defective words found: {:?}",
        report.faulty_words().len(),
        report.faulty_words()
    );
    let started = Instant::now();
    let mut buf = vec![0u64; 8 << 20 >> 3]; // 8 MiB buffer
    let r = MemoryTester::new(MemTestKind::Quick).test(buf.as_mut_slice());
    let t = started.elapsed();
    println!(
        "  quick test of 8MiB buffer: {:.2} ms ({} passes, healthy: {}) — the \
         allocation-time cost in the buffer manager",
        t.as_secs_f64() * 1e3,
        r.passes,
        r.is_healthy()
    );
}
