//! Regenerate the deterministic external-scan fixtures under
//! `target/fixtures/` (nothing is checked in — the files are a pure
//! function of the row count). The cold-scan benches in `benches/olap.rs`
//! call the same generator; this binary exists so a fixture can be
//! rebuilt or inspected by hand:
//!
//! ```text
//! cargo run -p eider-bench --bin fixtures -- [rows]
//! ```

fn main() {
    let rows = std::env::args()
        .nth(1)
        .map(|s| s.parse::<usize>().expect("rows must be an integer"))
        .unwrap_or(200_000);
    let (csv, arrow) = eider_bench::scan_fixtures(rows).expect("fixture generation");
    let size = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    println!("{} ({} bytes)", csv.display(), size(&csv));
    println!("{} ({} bytes)", arrow.display(), size(&arrow));
}
