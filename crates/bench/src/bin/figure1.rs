//! **Figure 1** regenerator: reactive resource usage under application
//! memory pressure.
//!
//! The paper's figure sketches an application whose RAM usage ramps up
//! while the DBMS reacts: no compression at first, then lightweight, then
//! heavy compression of its temporary structures — trading CPU for RAM so
//! the *end-to-end* system keeps fitting in memory.
//!
//! This binary replays that exact scenario: a scripted application trace
//! (DESIGN.md substitution F1) drives the adaptive controller while the
//! DBMS repeatedly materializes a workload intermediate (a chunk
//! collection, as a hash join build side would). Per step we print the
//! application RAM, the DBMS intermediate footprint, the compression level
//! and the CPU cost of the materialization — the four series of Figure 1.

use eider_coop::compression::CompressionLevel;
use eider_coop::controller::{AdaptiveController, ControllerConfig};
use eider_coop::monitor::{ResourceMonitor, SimulatedApplication};
use eider_exec::collection::ChunkCollection;
use eider_workload::Workload;
use std::time::Instant;

fn main() {
    let total_budget: usize = 512 << 20; // machine RAM shared by app + DBMS
    let app = SimulatedApplication::figure1_trace(total_budget);
    let mut controller = AdaptiveController::new(ControllerConfig::for_budget(total_budget));

    // The DBMS's working intermediate: ~64 MB of columnar data.
    let chunks = Workload::new(42).orders_chunks(400_000, 10_000).expect("workload");

    println!("step,app_ram_mb,dbms_intermediate_mb,compression,cpu_ms,total_mb");
    let mut step = 0usize;
    let mut summary: Vec<(CompressionLevel, usize, f64)> = Vec::new();
    loop {
        let usage = app.sample();
        let decision = controller.observe(usage);
        // Rebuild the intermediate at the decided compression level
        // (sampled every 4 steps to keep the trace fast).
        if step.is_multiple_of(4) {
            let started = Instant::now();
            let mut collection = ChunkCollection::new(decision.compression);
            for chunk in &chunks {
                collection.append(chunk.clone()).expect("append");
            }
            let cpu_ms = started.elapsed().as_secs_f64() * 1e3;
            let dbms_mb = collection.stored_bytes() / (1 << 20);
            let app_mb = usage.app_memory_bytes / (1 << 20);
            println!(
                "{step},{app_mb},{dbms_mb},{},{cpu_ms:.1},{}",
                decision.compression.label(),
                app_mb + dbms_mb
            );
            summary.push((decision.compression, collection.stored_bytes(), cpu_ms));
        }
        step += 1;
        if !app.step() {
            break;
        }
    }

    println!("\n# Figure 1 shape check (mean over steps at each level):");
    for level in [CompressionLevel::None, CompressionLevel::Light, CompressionLevel::Heavy] {
        let at: Vec<_> = summary.iter().filter(|(l, _, _)| *l == level).collect();
        if at.is_empty() {
            continue;
        }
        let mb = at.iter().map(|(_, b, _)| *b).sum::<usize>() / at.len() / (1 << 20);
        let ms = at.iter().map(|(_, _, m)| *m).sum::<f64>() / at.len() as f64;
        println!("  {:<6} intermediate ~{mb:>4} MB, build cpu ~{ms:>7.1} ms", level.label());
    }
    println!(
        "\nExpected: RAM footprint None > Light > Heavy; CPU cost None < Light < Heavy;\n\
         level follows the app ramp None -> Light -> Heavy -> Light -> None."
    );
}
