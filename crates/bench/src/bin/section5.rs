//! §5 (Transfer Efficiency) experiment driver: exporting a large result
//! set through the three access paths.
//!
//! * zero-copy chunks — the embedded architecture's point: `Arc` handover;
//! * value-at-a-time API — ODBC/JDBC/SQLite-style per-value calls;
//! * serialized protocol — row-major byte stream + simulated 1 Gbit/s wire
//!   (what a client-server deployment must pay).

use eider_client::protocol::{deserialize_result, serialize_result, Bandwidth};
use std::time::Instant;

fn main() {
    let rows = 2_000_000;
    let db = eider_bench::star_db(rows, 10_000, 21).expect("db");
    let conn = db.connect();
    println!("# E5: exporting {rows} rows x 5 columns to the application");

    let result = conn.query("SELECT * FROM orders").expect("query");
    assert_eq!(result.row_count(), rows);

    // 1. Zero-copy chunk handover.
    let started = Instant::now();
    let mut total_rows = 0usize;
    for chunk in result.chunks() {
        total_rows += chunk.len(); // the app now owns a reference; no copy
    }
    let zero_copy = started.elapsed();
    assert_eq!(total_rows, rows);

    // 2. Value-at-a-time cursor (per-value function calls).
    let started = Instant::now();
    let mut cursor = result.cursor();
    let mut checksum = 0i64;
    while cursor.step() {
        for col in 0..result.column_count() {
            if let Some(v) = cursor.column(col).as_i64() {
                checksum = checksum.wrapping_add(v);
            }
        }
    }
    let value_api = started.elapsed();
    std::hint::black_box(checksum);

    // 3. Serialized client protocol + simulated 1 Gbit/s socket.
    let started = Instant::now();
    let bytes = serialize_result(&result);
    let serialize_time = started.elapsed();
    let wire = Bandwidth::gigabit().wire_seconds(bytes.len());
    let started = Instant::now();
    let back = deserialize_result(&bytes).expect("deserialize");
    let deserialize_time = started.elapsed();
    assert_eq!(back.row_count(), rows);
    let protocol_total = serialize_time.as_secs_f64() + wire + deserialize_time.as_secs_f64();

    println!("\n{:<28} {:>12}", "path", "seconds");
    println!("{:<28} {:>12.4}", "zero-copy chunks", zero_copy.as_secs_f64());
    println!("{:<28} {:>12.4}", "value-at-a-time API", value_api.as_secs_f64());
    println!(
        "{:<28} {:>12.4}  (serialize {:.3} + wire {:.3} + deserialize {:.3}; {} MB)",
        "serialized protocol @1Gbit",
        protocol_total,
        serialize_time.as_secs_f64(),
        wire,
        deserialize_time.as_secs_f64(),
        bytes.len() / (1 << 20)
    );
    println!(
        "\nspeedup of chunks over value API : {:>8.0}x",
        value_api.as_secs_f64() / zero_copy.as_secs_f64().max(1e-9)
    );
    println!(
        "speedup of chunks over protocol  : {:>8.0}x",
        protocol_total / zero_copy.as_secs_f64().max(1e-9)
    );
    println!(
        "\nExpected shape (paper §5 / 'Don't hold my data hostage'): chunk handover\n\
         is orders of magnitude faster; per-value calls dominate the value API;\n\
         serialization + bandwidth dominate the socket protocol."
    );
}
