//! §2's dashboard scenario (E2c): "Concurrent data modification is common
//! in dashboard-scenarios where multiple threads update the data using ETL
//! queries while other threads run the OLAP queries that drive
//! visualizations."
//!
//! One writer thread continuously bulk-updates a table while reader
//! threads run aggregation queries. MVCC must keep every reader on a
//! consistent snapshot (the sum is always a multiple of the row count)
//! while both sides make progress.

use eider_core::Database;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let rows = 200_000;
    let db = Database::in_memory().expect("db");
    let conn = db.connect();
    conn.execute("CREATE TABLE metrics (id INTEGER, val INTEGER)").expect("ddl");
    // Seed with val = 1 everywhere.
    let batch = String::from("INSERT INTO metrics SELECT * FROM (VALUES ");
    let _ = batch; // built below via chunked inserts instead
    let chunk_rows = 10_000;
    for base in (0..rows).step_by(chunk_rows) {
        let values: Vec<String> = (base..base + chunk_rows).map(|i| format!("({i}, 1)")).collect();
        conn.execute(&format!("INSERT INTO metrics VALUES {}", values.join(","))).expect("seed");
    }

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let torn = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // OLAP readers.
    for _ in 0..3 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let reads = Arc::clone(&reads);
        let torn = Arc::clone(&torn);
        handles.push(std::thread::spawn(move || {
            let conn = db.connect();
            while !stop.load(Ordering::Relaxed) {
                let r = conn.query("SELECT sum(val), count(*) FROM metrics").expect("olap query");
                let sum = r.value(0, 0).unwrap().as_i64().unwrap();
                let count = r.value(0, 1).unwrap().as_i64().unwrap();
                if count != rows as i64 || sum % count != 0 {
                    torn.fetch_add(1, Ordering::Relaxed);
                }
                reads.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // ETL writer: set every row's val to k, transactionally.
    {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let writes = Arc::clone(&writes);
        handles.push(std::thread::spawn(move || {
            let conn = db.connect();
            let mut k = 2i64;
            while !stop.load(Ordering::Relaxed) {
                conn.execute(&format!("UPDATE metrics SET val = {k}")).expect("etl update");
                writes.fetch_add(1, Ordering::Relaxed);
                k += 1;
            }
        }));
    }

    let run_for = Duration::from_secs(5);
    let started = Instant::now();
    std::thread::sleep(run_for);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("thread");
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "# E2c: concurrent dashboard ({rows} rows, 3 OLAP readers + 1 ETL writer, {secs:.1}s)"
    );
    println!(
        "  OLAP queries completed : {} ({:.1}/s)",
        reads.load(Ordering::Relaxed),
        reads.load(Ordering::Relaxed) as f64 / secs
    );
    println!(
        "  bulk updates committed : {} ({:.1}/s)",
        writes.load(Ordering::Relaxed),
        writes.load(Ordering::Relaxed) as f64 / secs
    );
    println!("  torn snapshots observed: {} (must be 0)", torn.load(Ordering::Relaxed));
    assert_eq!(torn.load(Ordering::Relaxed), 0, "MVCC must serve consistent snapshots");
}
