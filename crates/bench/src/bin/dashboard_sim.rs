//! §2's dashboard scenario (E2c): "Concurrent data modification is common
//! in dashboard-scenarios where multiple threads update the data using ETL
//! queries while other threads run the OLAP queries that drive
//! visualizations."
//!
//! One writer thread continuously bulk-updates a table while reader
//! threads run aggregation queries. MVCC must keep every reader on a
//! consistent snapshot (the sum is always a multiple of the row count)
//! while both sides make progress.

//! With `--sessions N [--iters K]` it instead runs the session-scale storm
//! ([`eider_bench::dashboard_storm`]): N-1 reader sessions × K queries each
//! against one ETL writer, reporting the OLAP latency distribution (p50 /
//! p99) the embedding host would observe — the numbers CI records into
//! BENCH_olap.json via the `multi_session` bench.

use eider_core::Database;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let rows = 200_000;
    let mut args = std::env::args().skip(1);
    let mut sessions: Option<usize> = None;
    let mut iters = 40usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => sessions = args.next().and_then(|v| v.parse().ok()),
            "--iters" => iters = args.next().and_then(|v| v.parse().ok()).unwrap_or(iters),
            other => {
                eprintln!("dashboard_sim: unknown argument {other}");
                std::process::exit(1);
            }
        }
    }
    if let Some(sessions) = sessions {
        let stats = eider_bench::dashboard_storm(rows, sessions, iters).expect("storm");
        println!(
            "# E2c at session scale: {rows} rows, {} OLAP reader sessions x {iters} queries \
             + 1 ETL writer session",
            sessions.saturating_sub(1).max(1)
        );
        println!("  OLAP queries completed : {}", stats.reads);
        println!("  bulk updates committed : {}", stats.writes);
        println!("  OLAP latency p50       : {:.3} ms", stats.p50_ns as f64 / 1e6);
        println!("  OLAP latency p99       : {:.3} ms", stats.p99_ns as f64 / 1e6);
        println!("  torn snapshots observed: {} (must be 0)", stats.torn);
        assert_eq!(stats.torn, 0, "MVCC must serve consistent snapshots");
        return;
    }
    let db = Database::in_memory().expect("db");
    let conn = db.connect();
    conn.execute("CREATE TABLE metrics (id INTEGER, val INTEGER)").expect("ddl");
    // Seed with val = 1 everywhere.
    let batch = String::from("INSERT INTO metrics SELECT * FROM (VALUES ");
    let _ = batch; // built below via chunked inserts instead
    let chunk_rows = 10_000;
    for base in (0..rows).step_by(chunk_rows) {
        let values: Vec<String> = (base..base + chunk_rows).map(|i| format!("({i}, 1)")).collect();
        conn.execute(&format!("INSERT INTO metrics VALUES {}", values.join(","))).expect("seed");
    }

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let torn = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // OLAP readers.
    for _ in 0..3 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let reads = Arc::clone(&reads);
        let torn = Arc::clone(&torn);
        handles.push(std::thread::spawn(move || {
            let conn = db.connect();
            while !stop.load(Ordering::Relaxed) {
                let r = conn.query("SELECT sum(val), count(*) FROM metrics").expect("olap query");
                let sum = r.value(0, 0).unwrap().as_i64().unwrap();
                let count = r.value(0, 1).unwrap().as_i64().unwrap();
                if count != rows as i64 || sum % count != 0 {
                    torn.fetch_add(1, Ordering::Relaxed);
                }
                reads.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // ETL writer: set every row's val to k, transactionally.
    {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let writes = Arc::clone(&writes);
        handles.push(std::thread::spawn(move || {
            let conn = db.connect();
            let mut k = 2i64;
            while !stop.load(Ordering::Relaxed) {
                conn.execute(&format!("UPDATE metrics SET val = {k}")).expect("etl update");
                writes.fetch_add(1, Ordering::Relaxed);
                k += 1;
            }
        }));
    }

    let run_for = Duration::from_secs(5);
    let started = Instant::now();
    std::thread::sleep(run_for);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("thread");
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "# E2c: concurrent dashboard ({rows} rows, 3 OLAP readers + 1 ETL writer, {secs:.1}s)"
    );
    println!(
        "  OLAP queries completed : {} ({:.1}/s)",
        reads.load(Ordering::Relaxed),
        reads.load(Ordering::Relaxed) as f64 / secs
    );
    println!(
        "  bulk updates committed : {} ({:.1}/s)",
        writes.load(Ordering::Relaxed),
        writes.load(Ordering::Relaxed) as f64 / secs
    );
    println!("  torn snapshots observed: {} (must be 0)", torn.load(Ordering::Relaxed));
    assert_eq!(torn.load(Ordering::Relaxed), 0, "MVCC must serve consistent snapshots");
}
