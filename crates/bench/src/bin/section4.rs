//! §4 (Cooperation) experiment driver: hash join vs out-of-core merge join
//! across memory budgets — the RAM/CPU trade-off the paper's example
//! describes, including the crossover where the hash join stops fitting.

use eider_coop::compression::CompressionLevel;
use eider_coop::policy::{choose_join_strategy, JoinStrategy};
use eider_exec::expression::Expr;
use eider_exec::ops::join::JoinType;
use eider_exec::ops::{drain, HashJoinOp, MergeJoinOp, TableScanOp};
use eider_txn::ScanOptions;
use eider_vector::LogicalType;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let db = eider_bench::star_db(1_000_000, 50_000, 11).expect("db");
    let orders = db.catalog().get_table("orders").expect("orders");
    let customers = db.catalog().get_table("customers").expect("customers");

    let scan = |table: &std::sync::Arc<eider_catalog::TableEntry>, cols: Vec<usize>, txn| {
        Box::new(TableScanOp::new(
            Arc::clone(&table.data),
            txn,
            ScanOptions { columns: cols, filters: Vec::new(), emit_row_ids: false },
        ))
    };

    println!("# E4: join strategy under shrinking memory budgets");
    println!("# build side: 50k customers; probe side: 1M orders");
    println!(
        "{:<16} {:>14} {:>14} {:>10} {:>8}",
        "budget", "hash join ms", "merge join ms", "chosen", "spills"
    );
    for budget_mb in [512usize, 64, 8, 1] {
        let budget = budget_mb << 20;
        db.buffers().set_memory_limit(budget);
        db.policy().set_memory_limit(budget);

        // Hash join (may exceed tiny budgets; report OOM when it does).
        let txn = Arc::new(db.txn_manager().begin());
        let started = Instant::now();
        let hash_result: Result<usize, String> = (|| {
            let mut op = HashJoinOp::new(
                scan(&orders, vec![1, 2], Arc::clone(&txn)),
                scan(&customers, vec![0, 2], Arc::clone(&txn)),
                vec![Expr::column(0, LogicalType::BigInt)],
                vec![Expr::column(0, LogicalType::BigInt)],
                JoinType::Inner,
                CompressionLevel::None,
                Some(db.buffers()),
            )
            .map_err(|e| e.to_string())?;
            let chunks = drain(&mut op).map_err(|e| e.to_string())?;
            Ok(chunks.iter().map(|c| c.len()).sum())
        })();
        let hash_ms = started.elapsed().as_secs_f64() * 1e3;
        drop(txn);

        // Out-of-core merge join under the same budget.
        let txn = Arc::new(db.txn_manager().begin());
        let started = Instant::now();
        let mut merge = MergeJoinOp::new(
            scan(&orders, vec![1, 2], Arc::clone(&txn)),
            scan(&customers, vec![0, 2], Arc::clone(&txn)),
            vec![Expr::column(0, LogicalType::BigInt)],
            vec![Expr::column(0, LogicalType::BigInt)],
            budget / 8,
            None,
        );
        let merge_rows: usize =
            drain(&mut merge).expect("merge join").iter().map(|c| c.len()).sum();
        let merge_ms = started.elapsed().as_secs_f64() * 1e3;
        drop(txn);

        let hash_cell = match &hash_result {
            Ok(rows) => {
                assert_eq!(*rows, merge_rows, "join results must agree");
                format!("{hash_ms:.0}")
            }
            Err(_) => "OOM".to_string(),
        };
        let chosen = choose_join_strategy(50_000 * 2 * 16, db.buffers().available_memory());
        println!(
            "{:<16} {:>14} {:>14} {:>10} {:>8}",
            format!("{budget_mb} MB"),
            hash_cell,
            format!("{merge_ms:.0}"),
            match chosen {
                JoinStrategy::Hash => "hash",
                JoinStrategy::OutOfCoreMerge => "merge",
            },
            format!("{:?}", merge.spilled_runs()),
        );
    }
    println!(
        "\nExpected shape: hash join wins while the build side fits; under tight\n\
         budgets hash goes OOM (or would starve the app) while the merge join\n\
         degrades gracefully via spilling — the paper's RAM/CPU+IO trade."
    );
}
