//! §2 (Combined OLAP & ETL workload) experiment driver.
//!
//! Claims reproduced:
//! * E2a — a vectorized engine spends few CPU cycles per value; the
//!   tuple-at-a-time Volcano baseline pays per-value interpretation
//!   overhead (the reason DuckDB is vectorized, §6).
//! * E2b — bulk updates (`UPDATE t SET d = NULL WHERE d = -999`) are
//!   chunk-granular and column-wise; the same wrangling done row-by-row
//!   (OLTP style, one statement per row) is orders of magnitude slower.

use eider_bench::wrangling_db;
use eider_exec::aggregate::AggKind;
use eider_exec::expression::Expr;
use eider_exec::ops::agg::AggExpr;
use eider_exec::row_engine::{run_to_end, RowAggregate, RowFilter, RowSource};
use eider_txn::CmpOp;
use eider_vector::{LogicalType, Value};
use eider_workload::Workload;
use std::time::Instant;

fn main() {
    let rows = 2_000_000;
    println!("# E2a: vectorized vs tuple-at-a-time (SELECT count(*), sum(v) WHERE d <> -999)");
    let db = wrangling_db(rows, 0.25, 7).expect("db");
    let conn = db.connect();

    let started = Instant::now();
    let r = conn.query("SELECT count(*), sum(v) FROM t WHERE d <> -999").expect("query");
    let vec_time = started.elapsed();
    let vec_count = r.value(0, 0).unwrap();

    // The same query through the row-at-a-time baseline over the same data.
    let chunks = Workload::new(7).wrangling_chunks(rows, 0.25).expect("workload");
    let started = Instant::now();
    let source = Box::new(RowSource::from_chunks(&chunks));
    let filter = Box::new(RowFilter::new(
        source,
        Expr::Compare {
            op: CmpOp::NotEq,
            left: Box::new(Expr::column(1, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(-999))),
        },
    ));
    let mut agg = RowAggregate::new(
        filter,
        vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Sum,
                arg: Some(Expr::column(2, LogicalType::Double)),
                distinct: false,
            },
        ],
    );
    let row_result = run_to_end(&mut agg).expect("row engine");
    let row_time = started.elapsed();
    assert_eq!(row_result[0][0], vec_count, "engines must agree");

    println!("  rows               : {rows}");
    println!("  vectorized         : {:>10.1} ms", vec_time.as_secs_f64() * 1e3);
    println!("  tuple-at-a-time    : {:>10.1} ms", row_time.as_secs_f64() * 1e3);
    println!(
        "  speedup            : {:>10.1}x  (paper: vectorized engines win by ~10-100x)",
        row_time.as_secs_f64() / vec_time.as_secs_f64()
    );

    println!("\n# E2b: bulk wrangling UPDATE vs row-at-a-time updates");
    let db = wrangling_db(200_000, 0.25, 9).expect("db");
    let conn = db.connect();
    let started = Instant::now();
    let updated = conn.execute("UPDATE t SET d = NULL WHERE d = -999").expect("bulk update");
    let bulk_time = started.elapsed();
    println!("  bulk UPDATE        : {updated} rows in {:.1} ms", bulk_time.as_secs_f64() * 1e3);

    // OLTP-style: one UPDATE per sentinel row (sampled to keep runtime sane,
    // then extrapolated linearly).
    let db = wrangling_db(200_000, 0.25, 9).expect("db");
    let conn = db.connect();
    let ids: Vec<i64> = conn
        .query("SELECT id FROM t WHERE d = -999 LIMIT 500")
        .expect("ids")
        .to_rows()
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    let started = Instant::now();
    for id in &ids {
        conn.execute(&format!("UPDATE t SET d = NULL WHERE id = {id}")).expect("row update");
    }
    let per_row = started.elapsed().as_secs_f64() / ids.len() as f64;
    let extrapolated = per_row * updated as f64;
    println!(
        "  row-by-row UPDATE  : {:.3} ms/row -> {:.1} s extrapolated to {updated} rows",
        per_row * 1e3,
        extrapolated
    );
    println!(
        "  bulk speedup       : {:.0}x  (paper: ETL updates are bulk, not OLTP)",
        extrapolated / bulk_time.as_secs_f64()
    );
}
