//! Shared helpers for the eider benchmark suite.
//!
//! Every table and figure of the paper has a regenerator here: see
//! `src/bin/table1.rs`, `src/bin/figure1.rs` and the per-section binaries,
//! plus the Criterion micro-benchmarks under `benches/`. EXPERIMENTS.md
//! maps each to the paper's claims.

use eider_core::{Database, Result};
use eider_workload::Workload;
use std::sync::Arc;

/// Build an in-memory database with the §2 wrangling table loaded.
pub fn wrangling_db(rows: usize, missing: f64, seed: u64) -> Result<Arc<Database>> {
    let db = Database::in_memory()?;
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INTEGER, d INTEGER, v DOUBLE)")?;
    let chunks = Workload::new(seed).wrangling_chunks(rows, missing)?;
    let entry = db.catalog().get_table("t")?;
    let txn = Arc::new(db.txn_manager().begin());
    for chunk in &chunks {
        entry.data.append_chunk(&txn, chunk)?;
    }
    db.commit_transaction(Arc::try_unwrap(txn).expect("sole owner"))?;
    Ok(db)
}

/// Build an in-memory database with orders + customers loaded.
pub fn star_db(orders: usize, customers: u64, seed: u64) -> Result<Arc<Database>> {
    let db = Database::in_memory()?;
    let conn = db.connect();
    conn.execute(
        "CREATE TABLE orders (oid BIGINT, cid BIGINT, amount DOUBLE, qty INTEGER, odate DATE)",
    )?;
    conn.execute("CREATE TABLE customers (cid BIGINT, name VARCHAR, segment VARCHAR)")?;
    let mut w = Workload::new(seed);
    let txn = Arc::new(db.txn_manager().begin());
    let entry = db.catalog().get_table("orders")?;
    for chunk in &w.orders_chunks(orders, customers)? {
        entry.data.append_chunk(&txn, chunk)?;
    }
    let entry = db.catalog().get_table("customers")?;
    for chunk in &w.customers_chunks(customers)? {
        entry.data.append_chunk(&txn, chunk)?;
    }
    db.commit_transaction(Arc::try_unwrap(txn).expect("sole owner"))?;
    Ok(db)
}
