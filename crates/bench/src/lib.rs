//! Shared helpers for the eider benchmark suite.
//!
//! Every table and figure of the paper has a regenerator here: see
//! `src/bin/table1.rs`, `src/bin/figure1.rs` and the per-section binaries,
//! plus the Criterion micro-benchmarks under `benches/`. EXPERIMENTS.md
//! maps each to the paper's claims.

use eider_core::{Database, Result};
use eider_workload::Workload;
use std::sync::Arc;

/// Build an in-memory database with the §2 wrangling table loaded.
pub fn wrangling_db(rows: usize, missing: f64, seed: u64) -> Result<Arc<Database>> {
    let db = Database::in_memory()?;
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INTEGER, d INTEGER, v DOUBLE)")?;
    let chunks = Workload::new(seed).wrangling_chunks(rows, missing)?;
    let entry = db.catalog().get_table("t")?;
    let txn = Arc::new(db.txn_manager().begin());
    for chunk in &chunks {
        entry.data.append_chunk(&txn, chunk)?;
    }
    db.commit_transaction(Arc::try_unwrap(txn).expect("sole owner"))?;
    Ok(db)
}

/// Result of a [`dashboard_storm`] run: the multi-session dashboard
/// scenario's consistency counters and OLAP latency distribution.
#[derive(Debug)]
pub struct DashboardStats {
    /// OLAP queries completed across all reader sessions.
    pub reads: u64,
    /// Bulk ETL updates committed.
    pub writes: u64,
    /// Inconsistent snapshots observed (must be 0 under MVCC).
    pub torn: u64,
    /// Median OLAP query latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile OLAP query latency, nanoseconds.
    pub p99_ns: u64,
}

/// §2's dashboard scenario (E2c) at session scale: `sessions - 1` OLAP
/// reader connections each run `iters` aggregate queries over a shared
/// table while one ETL writer connection continuously bulk-updates it.
/// Every connection is its own engine session — quota sub-account, fleet
/// fair share — so the per-query latencies this returns measure exactly
/// the multi-session interference an embedding host would see. Used by
/// the `dashboard_sim` binary and the `multi_session` bench (which gates
/// the 8-session p50/p99 in CI).
pub fn dashboard_storm(rows: usize, sessions: usize, iters: usize) -> Result<DashboardStats> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::Instant;

    let readers = sessions.saturating_sub(1).max(1);
    let db = Database::in_memory()?;
    let conn = db.connect();
    conn.execute("CREATE TABLE metrics (id INTEGER, val INTEGER)")?;
    let chunk_rows = 10_000.min(rows.max(1));
    for base in (0..rows).step_by(chunk_rows) {
        let hi = (base + chunk_rows).min(rows);
        let values: Vec<String> = (base..hi).map(|i| format!("({i}, 1)")).collect();
        conn.execute(&format!("INSERT INTO metrics VALUES {}", values.join(",")))?;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));
    let torn = Arc::new(AtomicU64::new(0));

    let mut reader_handles = Vec::new();
    for _ in 0..readers {
        let db = Arc::clone(&db);
        let torn = Arc::clone(&torn);
        reader_handles.push(std::thread::spawn(move || {
            let conn = db.connect();
            let mut latencies = Vec::with_capacity(iters);
            for _ in 0..iters {
                let started = Instant::now();
                let r = conn.query("SELECT sum(val), count(*) FROM metrics").expect("olap query");
                latencies.push(started.elapsed().as_nanos() as u64);
                let sum = r.value(0, 0).unwrap().as_i64().unwrap();
                let count = r.value(0, 1).unwrap().as_i64().unwrap();
                if count != rows as i64 || sum % count != 0 {
                    torn.fetch_add(1, Ordering::Relaxed);
                }
            }
            latencies
        }));
    }
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let writes = Arc::clone(&writes);
        std::thread::spawn(move || {
            let conn = db.connect();
            let mut k = 2i64;
            while !stop.load(Ordering::Relaxed) {
                conn.execute(&format!("UPDATE metrics SET val = {k}")).expect("etl update");
                writes.fetch_add(1, Ordering::Relaxed);
                k += 1;
            }
        })
    };

    let mut latencies: Vec<u64> = Vec::new();
    for h in reader_handles {
        latencies.extend(h.join().expect("reader session"));
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer session");

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    Ok(DashboardStats {
        reads: latencies.len() as u64,
        writes: writes.load(std::sync::atomic::Ordering::Relaxed),
        torn: torn.load(std::sync::atomic::Ordering::Relaxed),
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
    })
}

/// Where deterministic benchmark fixtures live: `target/fixtures/` at the
/// workspace root. Nothing under it is checked in — [`scan_fixtures`] (or
/// the `fixtures` binary) regenerates the files byte-for-byte on demand.
pub fn fixture_dir() -> std::path::PathBuf {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.push("target");
    p.push("fixtures");
    p
}

/// Generate the external-scan fixtures: a CSV of `rows` records and its
/// Arrow IPC twin holding identical data, both fully determined by `rows`
/// (no clock, no RNG — reruns are byte-identical, so cold-scan benches
/// and golden comparisons are stable). Returns `(csv_path, arrow_path)`.
pub fn scan_fixtures(rows: usize) -> Result<(std::path::PathBuf, std::path::PathBuf)> {
    use eider_etl::{ArrowWriter, CsvReadOptions, CsvSource};
    use eider_vector::LogicalType;
    use std::io::Write;

    let dir = fixture_dir();
    std::fs::create_dir_all(&dir)?;
    let csv = dir.join(format!("scan_{rows}.csv"));
    let arrow = dir.join(format!("scan_{rows}.arrow"));

    let mut out = std::io::BufWriter::new(std::fs::File::create(&csv)?);
    writeln!(out, "id,grp,val,note")?;
    for i in 0..rows {
        writeln!(out, "{i},g{},{}.5,\"note, {} with padding\"", i % 8, i % 97, i * 31 % 1000)?;
    }
    out.into_inner().map_err(|e| e.into_error())?.sync_all()?;

    // The Arrow twin is derived from the CSV through the same TableSource
    // the engine scans — one authority for what the data *is*.
    let source = CsvSource::open(&csv, CsvReadOptions::default())?;
    use eider_etl::TableSource as _;
    let names = source.column_names().to_vec();
    let types = source.column_types().to_vec();
    assert_eq!(
        types,
        [LogicalType::BigInt, LogicalType::Varchar, LogicalType::Double, LogicalType::Varchar]
    );
    let file = std::fs::File::create(&arrow)?;
    let mut writer = ArrowWriter::new(std::io::BufWriter::new(file), names, types)?;
    let projection: Vec<usize> = (0..4).collect();
    eider_etl::for_each_chunk(&source, &projection, |chunk| {
        writer.write_chunk(&chunk)?;
        Ok(())
    })?;
    writer.finish()?;
    Ok((csv, arrow))
}

/// Build an in-memory database with orders + customers loaded.
pub fn star_db(orders: usize, customers: u64, seed: u64) -> Result<Arc<Database>> {
    let db = Database::in_memory()?;
    let conn = db.connect();
    conn.execute(
        "CREATE TABLE orders (oid BIGINT, cid BIGINT, amount DOUBLE, qty INTEGER, odate DATE)",
    )?;
    conn.execute("CREATE TABLE customers (cid BIGINT, name VARCHAR, segment VARCHAR)")?;
    let mut w = Workload::new(seed);
    let txn = Arc::new(db.txn_manager().begin());
    let entry = db.catalog().get_table("orders")?;
    for chunk in &w.orders_chunks(orders, customers)? {
        entry.data.append_chunk(&txn, chunk)?;
    }
    let entry = db.catalog().get_table("customers")?;
    for chunk in &w.customers_chunks(customers)? {
        entry.data.append_chunk(&txn, chunk)?;
    }
    db.commit_transaction(Arc::try_unwrap(txn).expect("sole owner"))?;
    Ok(db)
}
