//! Multi-session dashboard latency: the §2 dashboard scenario (E2c) run at
//! session scale — 7 OLAP reader sessions and 1 ETL writer session over one
//! shared database, each connection its own session with its own quota
//! sub-account and fleet share. Records the readers' per-query p50 / p99
//! into the machine-readable summary under the gated `olap/` family, so a
//! regression in cross-session latency (admission starvation, quota
//! contention, fleet mis-sharing) fails `ci.sh bench-check` like any other
//! OLAP slowdown.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};

fn multi_session(_c: &mut Criterion) {
    // Queries per reader session: enough for a stable p99 (7 readers x 40
    // queries = 280 samples), scaled up when CI asks for more samples.
    let iters = std::env::var("EIDER_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(40, |s| (s * 10).max(40));
    let stats = eider_bench::dashboard_storm(100_000, 8, iters).expect("dashboard storm");
    assert_eq!(stats.torn, 0, "MVCC served a torn snapshot under the 8-session storm");
    record_metric("olap/dashboard_8session_p50_ns", stats.p50_ns);
    record_metric("olap/dashboard_8session_p99_ns", stats.p99_ns);
}

criterion_group!(benches, multi_session);
criterion_main!(benches);
