//! E3 micro-benchmarks: the CPU price of distrusting the hardware (§3).

use criterion::{criterion_group, criterion_main, Criterion};
use eider_resilience::ancode::AnCodec;
use eider_resilience::checksum::{crc32c, fletcher64};
use eider_resilience::memtest::{MemTestKind, MemoryTester};
use eider_storage::block::{decode_block, encode_block};
use eider_workload::Workload;

fn resilience(c: &mut Criterion) {
    let mut g = c.benchmark_group("resilience");
    g.sample_size(10);

    // Checksumming a 256 KiB block (every block write/read pays this).
    let block_payload = vec![0xA5u8; 200_000];
    g.bench_function("crc32c_256k_block", |b| b.iter(|| crc32c(&block_payload)));
    g.bench_function("fletcher64_256k_block", |b| b.iter(|| fletcher64(&block_payload)));
    let image = encode_block(&block_payload);
    g.bench_function("block_encode_checksum", |b| b.iter(|| encode_block(&block_payload)));
    g.bench_function("block_decode_verify", |b| b.iter(|| decode_block(&image, 0).unwrap()));

    // AN-code overhead (paper target band: 1.1x - 1.6x).
    let data = Workload::new(3).int_column(1_000_000, 1_000_000);
    let codec = AnCodec::default();
    let encoded = codec.encode_slice_i32(&data);
    g.bench_function("sum_plain_1m", |b| {
        b.iter(|| data.iter().map(|&v| i64::from(v)).sum::<i64>())
    });
    g.bench_function("sum_an_coded_1m", |b| b.iter(|| codec.sum_encoded(&encoded).unwrap()));
    g.bench_function("filter_plain_1m", |b| b.iter(|| data.iter().filter(|&&v| v == 42).count()));
    g.bench_function("filter_an_coded_1m", |b| {
        b.iter(|| codec.count_eq_encoded(&encoded, 42).unwrap())
    });

    // Allocation-time memory tests (buffer-manager integration, §3).
    g.bench_function("memtest_quick_1mb", |b| {
        b.iter_with_setup(
            || vec![0u64; 1 << 17],
            |mut buf| MemoryTester::new(MemTestKind::Quick).test(buf.as_mut_slice()),
        )
    });
    g.bench_function("memtest_full_1mb", |b| {
        b.iter_with_setup(
            || vec![0u64; 1 << 17],
            |mut buf| MemoryTester::new(MemTestKind::Full).test(buf.as_mut_slice()),
        )
    });
    g.finish();
}

criterion_group!(benches, resilience);
criterion_main!(benches);
