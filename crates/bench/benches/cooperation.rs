//! E4 / F1 micro-benchmarks: the §4 resource trade-offs — intermediate
//! compression levels and join strategies under memory budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use eider_coop::compression::{compress, decompress, CompressionLevel};
use eider_exec::collection::ChunkCollection;
use eider_workload::Workload;

fn cooperation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cooperation");
    g.sample_size(10);

    let chunks = Workload::new(42).orders_chunks(100_000, 5_000).expect("workload");

    for level in [CompressionLevel::None, CompressionLevel::Light, CompressionLevel::Heavy] {
        g.bench_function(format!("materialize_{}", level.label()), |b| {
            b.iter(|| {
                let mut col = ChunkCollection::new(level);
                for chunk in &chunks {
                    col.append(chunk.clone()).unwrap();
                }
                col.stored_bytes()
            })
        });
    }

    // Raw codec throughput on columnar bytes.
    let mut blob = Vec::new();
    for chunk in &chunks[..8] {
        let mut w = eider_storage::serde::BinWriter::new();
        eider_storage::serde::write_chunk(&mut w, chunk);
        blob.extend_from_slice(w.as_bytes());
    }
    for level in [CompressionLevel::Light, CompressionLevel::Heavy] {
        g.bench_function(format!("compress_{}", level.label()), |b| {
            b.iter(|| compress(level, &blob).len())
        });
        let compressed = compress(level, &blob);
        g.bench_function(format!("decompress_{}", level.label()), |b| {
            b.iter(|| decompress(&compressed).unwrap().len())
        });
    }
    g.finish();
}

criterion_group!(benches, cooperation);
criterion_main!(benches);
