//! E2b micro-benchmarks: the §2 ETL path — bulk updates/deletes and CSV
//! loading.

use criterion::{criterion_group, criterion_main, Criterion};
use eider_bench::wrangling_db;
use eider_etl::csv::CsvWriter;
use eider_vector::Value;

const ROWS: usize = 100_000;

fn etl(c: &mut Criterion) {
    let mut g = c.benchmark_group("etl");
    g.sample_size(10);

    g.bench_function("bulk_update_sentinel_to_null", |b| {
        b.iter_with_setup(
            || wrangling_db(ROWS, 0.25, 5).expect("db"),
            |db| {
                let conn = db.connect();
                conn.execute("UPDATE t SET d = NULL WHERE d = -999").unwrap()
            },
        )
    });

    g.bench_function("bulk_delete", |b| {
        b.iter_with_setup(
            || wrangling_db(ROWS, 0.25, 5).expect("db"),
            |db| {
                let conn = db.connect();
                conn.execute("DELETE FROM t WHERE d = -999").unwrap()
            },
        )
    });

    g.bench_function("bulk_append", |b| {
        b.iter_with_setup(
            || {
                let db = wrangling_db(10, 0.0, 5).expect("db");
                let chunks = eider_workload::Workload::new(8).wrangling_chunks(ROWS, 0.25).unwrap();
                (db, chunks)
            },
            |(db, chunks)| {
                let entry = db.catalog().get_table("t").unwrap();
                let txn = std::sync::Arc::new(db.txn_manager().begin());
                for chunk in &chunks {
                    entry.data.append_chunk(&txn, chunk).unwrap();
                }
                db.commit_transaction(std::sync::Arc::try_unwrap(txn).unwrap()).unwrap()
            },
        )
    });

    // CSV load through COPY FROM.
    let mut csv_path = std::env::temp_dir();
    csv_path.push(format!("eider_bench_{}.csv", std::process::id()));
    {
        let mut w = CsvWriter::create(&csv_path, Some(&["id".into(), "d".into(), "v".into()]), ',')
            .unwrap();
        for chunk in eider_workload::Workload::new(4).wrangling_chunks(ROWS, 0.25).unwrap() {
            w.write_chunk(&chunk).unwrap();
        }
        w.finish().unwrap();
    }
    let path_str = csv_path.display().to_string();
    g.bench_function("copy_from_csv", |b| {
        b.iter_with_setup(
            || wrangling_db(10, 0.0, 5).expect("db"),
            |db| {
                let conn = db.connect();
                let n = conn.execute(&format!("COPY t FROM '{path_str}' (HEADER)")).unwrap();
                assert_eq!(n as usize, ROWS);
                std::hint::black_box(Value::BigInt(n as i64))
            },
        )
    });
    g.finish();
    let _ = std::fs::remove_file(&csv_path);
}

criterion_group!(benches, etl);
criterion_main!(benches);
