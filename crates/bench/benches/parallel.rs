//! Morsel-driven parallel execution vs the serial pull loop on the
//! scan → filter → aggregate hot path (the §2 OLAP shape), plus grouped
//! aggregation, the pipeline-DAG hash join (parallel build *and* parallel
//! probe) and big spilling sorts.
//!
//! Prints per-thread-count timings and an explicit speedup summary. On a
//! machine with 4+ cores the parallel executor is expected to clear 2× on
//! the scan→aggregate workload; on fewer cores the run still validates the
//! machinery but cannot show wall-clock gains.

use criterion::{criterion_group, criterion_main, Criterion};
use eider_bench::{star_db, wrangling_db};
use eider_core::Database;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: usize = 1_000_000;
const SCAN_AGG: &str = "SELECT count(*), sum(id), avg(v) FROM t WHERE d <> -999";
const GROUP_AGG: &str = "SELECT d % 32, count(*), sum(v) FROM t WHERE d <> -999 GROUP BY d % 32";

fn with_threads(db: &Arc<Database>, threads: usize) -> eider_core::Connection {
    let conn = db.connect();
    conn.execute(&format!("PRAGMA threads = {threads}")).expect("pragma");
    conn
}

/// Min wall time of `runs` executions (min is the stable statistic for
/// speedup ratios; means absorb scheduler noise).
fn min_time(conn: &eider_core::Connection, sql: &str, runs: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let t = Instant::now();
        conn.query(sql).expect("query");
        best = best.min(t.elapsed());
    }
    best
}

fn scan_aggregate(c: &mut Criterion) {
    let db = wrangling_db(ROWS, 0.25, 7).expect("db");
    let mut g = c.benchmark_group("parallel/scan_agg");
    g.sample_size(10);
    for threads in [1, 2, 4, 8] {
        let conn = with_threads(&db, threads);
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| conn.query(SCAN_AGG).expect("query"))
        });
    }
    g.finish();
}

fn grouped_aggregate(c: &mut Criterion) {
    let db = wrangling_db(ROWS, 0.25, 7).expect("db");
    let mut g = c.benchmark_group("parallel/group_agg");
    g.sample_size(10);
    for threads in [1, 4] {
        let conn = with_threads(&db, threads);
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| conn.query(GROUP_AGG).expect("query"))
        });
    }
    g.finish();
}

fn join_build(c: &mut Criterion) {
    let db = star_db(500_000, 2_000, 7).expect("db");
    let sql = "SELECT count(*) FROM customers c JOIN orders o ON c.cid = o.cid \
               WHERE o.amount > 250.0";
    let mut g = c.benchmark_group("parallel/join_build");
    g.sample_size(10);
    for threads in [1, 4] {
        let conn = with_threads(&db, threads);
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| conn.query(sql).expect("query"))
        });
    }
    g.finish();
}

/// The probe direction of the DAG: the 500k-row fact table streams
/// morsel-parallel against the small serially-built dimension side, with
/// the grouped aggregate fused onto the same pipeline.
fn join_probe(c: &mut Criterion) {
    let db = star_db(500_000, 2_000, 7).expect("db");
    let sql = "SELECT c.segment, count(*), sum(o.amount) FROM orders o \
               JOIN customers c ON o.cid = c.cid GROUP BY c.segment";
    let mut g = c.benchmark_group("parallel/join_probe");
    g.sample_size(10);
    for threads in [1, 4] {
        let conn = with_threads(&db, threads);
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| conn.query(sql).expect("query"))
        });
    }
    g.finish();
}

/// ORDER BY over the full table: worker-local runs sort in parallel and
/// spill through the external-sort run format once they pass the budget
/// (a constrained run is measured alongside the unconstrained one).
fn big_sort(c: &mut Criterion) {
    const SORT_ROWS: usize = 300_000;
    let db = wrangling_db(SORT_ROWS, 0.25, 7).expect("db");
    let sql = "SELECT id, v FROM t ORDER BY v DESC, id";
    let mut g = c.benchmark_group("parallel/big_sort");
    g.sample_size(10);
    for threads in [1, 4] {
        let conn = with_threads(&db, threads);
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| conn.query(sql).expect("query"))
        });
    }
    {
        // Spilling variant: a budget far below the data size forces every
        // worker to write multiple runs to disk.
        let conn = with_threads(&db, 4);
        conn.execute("PRAGMA memory_limit = 4000000").expect("pragma");
        g.bench_function("threads_4_spilling", |b| b.iter(|| conn.query(sql).expect("query")));
        conn.execute("PRAGMA memory_limit = 1073741824").expect("pragma");
    }
    g.finish();
}

fn speedup_summary(_c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let db = wrangling_db(ROWS, 0.25, 7).expect("db");
    let serial = min_time(&with_threads(&db, 1), SCAN_AGG, 5);
    let threads = cores.max(4);
    let parallel = min_time(&with_threads(&db, threads), SCAN_AGG, 5);
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
    println!(
        "\nscan->filter->aggregate over {ROWS} rows: serial {serial:?}, \
         {threads} threads {parallel:?} -> {speedup:.2}x speedup \
         ({cores} core(s) available)"
    );
    if cores < 4 {
        println!(
            "note: fewer than 4 cores available; the >=2x target needs 4+ \
             cores to manifest as wall-clock time"
        );
    }
}

criterion_group!(
    benches,
    scan_aggregate,
    grouped_aggregate,
    join_build,
    join_probe,
    big_sort,
    speedup_summary
);
criterion_main!(benches);
