//! E5 micro-benchmarks: result-set transfer paths (§5).

use criterion::{criterion_group, criterion_main, Criterion};
use eider_bench::star_db;
use eider_client::protocol::{deserialize_result, serialize_result};

const ROWS: usize = 200_000;

fn transfer(c: &mut Criterion) {
    let db = star_db(ROWS, 5_000, 21).expect("db");
    let conn = db.connect();
    let result = conn.query("SELECT * FROM orders").expect("query");
    let mut g = c.benchmark_group("transfer");
    g.sample_size(10);

    g.bench_function("zero_copy_chunks", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for chunk in result.chunks() {
                rows += chunk.len();
            }
            rows
        })
    });

    g.bench_function("value_at_a_time_cursor", |b| {
        b.iter(|| {
            let mut cursor = result.cursor();
            let mut acc = 0i64;
            while cursor.step() {
                for col in 0..result.column_count() {
                    if let Some(v) = cursor.column(col).as_i64() {
                        acc = acc.wrapping_add(v);
                    }
                }
            }
            acc
        })
    });

    g.bench_function("protocol_serialize", |b| b.iter(|| serialize_result(&result)));

    let bytes = serialize_result(&result);
    g.bench_function("protocol_deserialize", |b| b.iter(|| deserialize_result(&bytes).unwrap()));

    g.bench_function("appender_bulk_ingest", |b| {
        b.iter_with_setup(
            || {
                let db = eider_bench::star_db(10, 10, 3).expect("db");
                let entry = db.catalog().get_table("orders").unwrap();
                (db, entry)
            },
            |(db, entry)| {
                let txn = std::sync::Arc::new(db.txn_manager().begin());
                let mut app = eider_client::Appender::new(entry, std::sync::Arc::clone(&txn));
                for chunk in result.chunks() {
                    app.append_chunk((*chunk).clone()).unwrap();
                }
                app.finish().unwrap()
            },
        )
    });
    g.finish();
}

criterion_group!(benches, transfer);
criterion_main!(benches);
