//! E2a micro-benchmarks: vectorized engine vs tuple-at-a-time baseline on
//! the §2 OLAP shapes (filter+aggregate, group-by, join).

use criterion::{criterion_group, criterion_main, Criterion};
use eider_bench::{star_db, wrangling_db};
use eider_exec::aggregate::AggKind;
use eider_exec::expression::Expr;
use eider_exec::ops::agg::AggExpr;
use eider_exec::row_engine::{run_to_end, RowAggregate, RowFilter, RowSource};
use eider_txn::CmpOp;
use eider_vector::{LogicalType, Value};
use eider_workload::Workload;

const ROWS: usize = 200_000;

fn olap(c: &mut Criterion) {
    let db = wrangling_db(ROWS, 0.25, 7).expect("db");
    let conn = db.connect();
    let mut g = c.benchmark_group("olap");
    g.sample_size(10);

    g.bench_function("vectorized_filter_agg", |b| {
        b.iter(|| conn.query("SELECT count(*), sum(v) FROM t WHERE d <> -999").unwrap())
    });

    let chunks = Workload::new(7).wrangling_chunks(ROWS, 0.25).expect("workload");
    g.bench_function("row_engine_filter_agg", |b| {
        b.iter(|| {
            let src = Box::new(RowSource::from_chunks(&chunks));
            let filter = Box::new(RowFilter::new(
                src,
                Expr::Compare {
                    op: CmpOp::NotEq,
                    left: Box::new(Expr::column(1, LogicalType::Integer)),
                    right: Box::new(Expr::constant(Value::Integer(-999))),
                },
            ));
            let mut agg = RowAggregate::new(
                filter,
                vec![
                    AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
                    AggExpr {
                        kind: AggKind::Sum,
                        arg: Some(Expr::column(2, LogicalType::Double)),
                        distinct: false,
                    },
                ],
            );
            run_to_end(&mut agg).unwrap()
        })
    });

    g.bench_function("vectorized_group_by", |b| {
        b.iter(|| conn.query("SELECT d % 100, count(*), sum(v) FROM t GROUP BY d % 100").unwrap())
    });

    // High-cardinality grouping: ~150k distinct integer groups (sequential
    // oid modulo), the shape that punishes per-group allocation the most.
    let wide = star_db(ROWS, 120_000, 17).expect("db");
    let wconn = wide.connect();
    g.bench_function("high_cardinality_group_by", |b| {
        b.iter(|| {
            wconn
                .query(
                    "SELECT oid % 150000, count(*), sum(amount) FROM orders GROUP BY oid % 150000",
                )
                .unwrap()
        })
    });

    // Varchar keys: 120k distinct customer names exercise the
    // variable-width (escape-encoded) key path end to end.
    g.bench_function("varchar_group_by", |b| {
        b.iter(|| wconn.query("SELECT name, count(*) FROM customers GROUP BY name").unwrap())
    });

    // Compressed-domain shapes (PR 8): a table one-and-a-half row groups
    // deep whose varchar column is dictionary-coded (12 distinct cities)
    // and whose integer column is run-length encoded (runs of 1000), so
    // the group-by hashes dictionary codes and the filter short-circuits
    // whole runs.
    let enc_db = {
        use eider_vector::DataChunk;
        use std::sync::Arc;
        let db = eider_core::Database::in_memory().expect("db");
        let conn = db.connect();
        conn.execute("CREATE TABLE events (city VARCHAR, bucket INTEGER, amount BIGINT)")
            .expect("create");
        let entry = db.catalog().get_table("events").expect("table");
        let txn = Arc::new(db.txn_manager().begin());
        let types = [LogicalType::Varchar, LogicalType::Integer, LogicalType::BigInt];
        for base in (0..ROWS).step_by(2048) {
            let hi = (base + 2048).min(ROWS);
            let rows: Vec<Vec<Value>> = (base..hi)
                .map(|i| {
                    vec![
                        Value::Varchar(format!("city_{}", i * 31 % 12)),
                        Value::Integer((i / 1000) as i32),
                        Value::BigInt((i % 97) as i64),
                    ]
                })
                .collect();
            let chunk = DataChunk::from_rows(&types, &rows).expect("chunk");
            entry.data.append_chunk(&txn, &chunk).expect("append");
        }
        db.commit_transaction(Arc::try_unwrap(txn).expect("sole owner")).expect("commit");
        db
    };
    let econn = enc_db.connect();
    g.bench_function("dict_group_by", |b| {
        b.iter(|| {
            econn.query("SELECT city, count(*), sum(amount) FROM events GROUP BY city").unwrap()
        })
    });
    g.bench_function("rle_filter_agg", |b| {
        b.iter(|| {
            econn.query("SELECT count(*), sum(amount) FROM events WHERE bucket >= 150").unwrap()
        })
    });
    // Archive how small the encoded chunk really is: the canonical
    // dict+RLE chunk's serialized size, next to the timings it buys.
    {
        use eider_storage::serde::{write_chunk, BinWriter};
        use eider_vector::DataChunk;
        let types = [LogicalType::Varchar, LogicalType::Integer, LogicalType::BigInt];
        let rows: Vec<Vec<Value>> = (0..2048)
            .map(|i| {
                vec![
                    Value::Varchar(format!("city_{}", i * 31 % 12)),
                    Value::Integer(i / 1000),
                    Value::BigInt((i % 97) as i64),
                ]
            })
            .collect();
        let chunk = DataChunk::from_rows(&types, &rows).expect("chunk");
        let cols: Vec<_> =
            chunk.into_columns().into_iter().map(|c| c.encode_auto().unwrap_or(c)).collect();
        let encoded = DataChunk::from_vectors(cols).expect("chunk");
        let mut w = BinWriter::new();
        write_chunk(&mut w, &encoded);
        criterion::record_metric("metric/encoded_chunk_bytes", w.len() as u64);
    }

    let star = star_db(ROWS, 5_000, 13).expect("db");
    let sconn = star.connect();
    g.bench_function("vectorized_join_agg", |b| {
        b.iter(|| {
            sconn
                .query(
                    "SELECT segment, sum(amount) FROM orders \
                     JOIN customers ON orders.cid = customers.cid GROUP BY segment",
                )
                .unwrap()
        })
    });

    // Cost-based join ordering (PR 10): a 3-table join written with the
    // 200k-row fact table in build position ("buckets JOIN orders JOIN
    // customers" hashes orders innermost). The optimizer flips orders into
    // the probe root so only the 49-row and 5000-row dimensions are
    // hashed; the _syntactic twin pins `PRAGMA optimizer=0` and executes
    // the written order. The gap between the two is the reorderer's win.
    {
        let jconn = star.connect();
        jconn.execute("CREATE TABLE buckets (qty INTEGER, tier INTEGER)").expect("create");
        let rows: Vec<String> = (1..50).map(|q| format!("({q}, {})", q / 10)).collect();
        jconn.execute(&format!("INSERT INTO buckets VALUES {}", rows.join(","))).expect("insert");
        const MULTI_JOIN: &str = "SELECT tier, count(*), sum(amount) \
             FROM buckets JOIN orders ON orders.qty = buckets.qty \
             JOIN customers ON orders.cid = customers.cid GROUP BY tier";
        g.bench_function("multi_join", |b| b.iter(|| jconn.query(MULTI_JOIN).unwrap()));
        let raw = star.connect();
        raw.execute("PRAGMA optimizer=0").expect("pragma");
        g.bench_function("multi_join_syntactic", |b| b.iter(|| raw.query(MULTI_JOIN).unwrap()));
    }

    g.bench_function("zone_map_selective_scan", |b| {
        b.iter(|| conn.query("SELECT count(*) FROM t WHERE id > 190000").unwrap())
    });

    // External source cold scans (PR 9): every iteration hits the file
    // through `read_csv` / `read_arrow` from scratch — sniff, byte-range
    // partitioning, parse and the morsel-parallel merge are all on the
    // clock, none of it amortized into a resident table.
    let (csv_path, arrow_path) = eider_bench::scan_fixtures(ROWS).expect("fixtures");
    let ext_db = eider_core::Database::in_memory().expect("db");
    let ext_conn = ext_db.connect();
    let csv_scan =
        format!("SELECT count(*), min(val), max(val) FROM read_csv('{}')", csv_path.display());
    g.bench_function("csv_cold_scan", |b| b.iter(|| ext_conn.query(&csv_scan).unwrap()));
    let arrow_scan =
        format!("SELECT count(*), min(val), max(val) FROM read_arrow('{}')", arrow_path.display());
    g.bench_function("arrow_cold_scan", |b| b.iter(|| ext_conn.query(&arrow_scan).unwrap()));

    // Bulk columnar ingest through `Appender::from_source` — the COPY
    // FROM code path. Each iteration loads the full fixture into a fresh
    // table; the sustained rows/s of the final iteration is archived as a
    // summary metric next to the timings.
    {
        use eider_client::Appender;
        use eider_etl::csv::{CsvReadOptions, CsvSource};
        use std::sync::Arc;
        let mut rows_per_sec = 0u64;
        g.bench_function("appender_ingest", |b| {
            b.iter(|| {
                let db = eider_core::Database::in_memory().expect("db");
                db.connect()
                    .execute(
                        "CREATE TABLE ingest \
                         (id BIGINT, grp VARCHAR, val DOUBLE, note VARCHAR)",
                    )
                    .expect("create");
                let entry = db.catalog().get_table("ingest").expect("table");
                let txn = Arc::new(db.txn_manager().begin());
                let source = CsvSource::open(&csv_path, CsvReadOptions::default()).expect("open");
                let start = std::time::Instant::now();
                let loaded =
                    Appender::from_source(entry, Arc::clone(&txn), &source).expect("ingest");
                let secs = start.elapsed().as_secs_f64();
                db.commit_transaction(Arc::try_unwrap(txn).expect("sole owner")).expect("commit");
                rows_per_sec = (loaded as f64 / secs.max(1e-9)) as u64;
                criterion::black_box(loaded)
            })
        });
        criterion::record_metric("metric/appender_ingest_rows_per_sec", rows_per_sec);
    }

    // The streaming result path: a large SELECT consumed through the
    // cursor chunk by chunk (the embedding API's bounded-memory handoff).
    // Peak accounted memory during the stream is recorded as a summary
    // metric so the §4 footprint of the path is archived next to its
    // timing.
    db.buffers().reset_peak();
    g.bench_function("streaming_result", |b| {
        b.iter(|| {
            let mut cursor = conn.query_stream("SELECT id, d, v FROM t WHERE d <> -999").unwrap();
            let mut rows = 0usize;
            while let Some(chunk) = cursor.next_chunk().unwrap() {
                rows += chunk.len();
            }
            criterion::black_box(rows)
        })
    });
    criterion::record_metric(
        "metric/streaming_result_peak_accounted_bytes",
        db.buffers().peak_memory() as u64,
    );
    g.finish();
}

criterion_group!(benches, olap);
criterion_main!(benches);
