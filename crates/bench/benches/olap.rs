//! E2a micro-benchmarks: vectorized engine vs tuple-at-a-time baseline on
//! the §2 OLAP shapes (filter+aggregate, group-by, join).

use criterion::{criterion_group, criterion_main, Criterion};
use eider_bench::{star_db, wrangling_db};
use eider_exec::aggregate::AggKind;
use eider_exec::expression::Expr;
use eider_exec::ops::agg::AggExpr;
use eider_exec::row_engine::{run_to_end, RowAggregate, RowFilter, RowSource};
use eider_txn::CmpOp;
use eider_vector::{LogicalType, Value};
use eider_workload::Workload;

const ROWS: usize = 200_000;

fn olap(c: &mut Criterion) {
    let db = wrangling_db(ROWS, 0.25, 7).expect("db");
    let conn = db.connect();
    let mut g = c.benchmark_group("olap");
    g.sample_size(10);

    g.bench_function("vectorized_filter_agg", |b| {
        b.iter(|| conn.query("SELECT count(*), sum(v) FROM t WHERE d <> -999").unwrap())
    });

    let chunks = Workload::new(7).wrangling_chunks(ROWS, 0.25).expect("workload");
    g.bench_function("row_engine_filter_agg", |b| {
        b.iter(|| {
            let src = Box::new(RowSource::from_chunks(&chunks));
            let filter = Box::new(RowFilter::new(
                src,
                Expr::Compare {
                    op: CmpOp::NotEq,
                    left: Box::new(Expr::column(1, LogicalType::Integer)),
                    right: Box::new(Expr::constant(Value::Integer(-999))),
                },
            ));
            let mut agg = RowAggregate::new(
                filter,
                vec![
                    AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
                    AggExpr {
                        kind: AggKind::Sum,
                        arg: Some(Expr::column(2, LogicalType::Double)),
                        distinct: false,
                    },
                ],
            );
            run_to_end(&mut agg).unwrap()
        })
    });

    g.bench_function("vectorized_group_by", |b| {
        b.iter(|| conn.query("SELECT d % 100, count(*), sum(v) FROM t GROUP BY d % 100").unwrap())
    });

    // High-cardinality grouping: ~150k distinct integer groups (sequential
    // oid modulo), the shape that punishes per-group allocation the most.
    let wide = star_db(ROWS, 120_000, 17).expect("db");
    let wconn = wide.connect();
    g.bench_function("high_cardinality_group_by", |b| {
        b.iter(|| {
            wconn
                .query(
                    "SELECT oid % 150000, count(*), sum(amount) FROM orders GROUP BY oid % 150000",
                )
                .unwrap()
        })
    });

    // Varchar keys: 120k distinct customer names exercise the
    // variable-width (escape-encoded) key path end to end.
    g.bench_function("varchar_group_by", |b| {
        b.iter(|| wconn.query("SELECT name, count(*) FROM customers GROUP BY name").unwrap())
    });

    let star = star_db(ROWS, 5_000, 13).expect("db");
    let sconn = star.connect();
    g.bench_function("vectorized_join_agg", |b| {
        b.iter(|| {
            sconn
                .query(
                    "SELECT segment, sum(amount) FROM orders \
                     JOIN customers ON orders.cid = customers.cid GROUP BY segment",
                )
                .unwrap()
        })
    });

    g.bench_function("zone_map_selective_scan", |b| {
        b.iter(|| conn.query("SELECT count(*) FROM t WHERE id > 190000").unwrap())
    });

    // The streaming result path: a large SELECT consumed through the
    // cursor chunk by chunk (the embedding API's bounded-memory handoff).
    // Peak accounted memory during the stream is recorded as a summary
    // metric so the §4 footprint of the path is archived next to its
    // timing.
    db.buffers().reset_peak();
    g.bench_function("streaming_result", |b| {
        b.iter(|| {
            let mut cursor = conn.query_stream("SELECT id, d, v FROM t WHERE d <> -999").unwrap();
            let mut rows = 0usize;
            while let Some(chunk) = cursor.next_chunk().unwrap() {
                rows += chunk.len();
            }
            criterion::black_box(rows)
        })
    });
    criterion::record_metric(
        "metric/streaming_result_peak_accounted_bytes",
        db.buffers().peak_memory() as u64,
    );
    g.finish();
}

criterion_group!(benches, olap);
criterion_main!(benches);
