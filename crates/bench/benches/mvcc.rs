//! E6 micro-benchmarks: MVCC costs (§6) — snapshot scans under versions,
//! transaction throughput, conflict handling, WAL durability.

use criterion::{criterion_group, criterion_main, Criterion};
use eider_bench::wrangling_db;
use eider_core::Database;

fn mvcc(c: &mut Criterion) {
    let mut g = c.benchmark_group("mvcc");
    g.sample_size(10);

    g.bench_function("begin_commit_empty", |b| {
        let db = Database::in_memory().unwrap();
        b.iter(|| {
            let txn = db.txn_manager().begin();
            txn.commit().unwrap()
        })
    });

    // Scan cost with a long version chain vs a clean table.
    let clean = wrangling_db(50_000, 0.25, 3).unwrap();
    let versioned = wrangling_db(50_000, 0.25, 3).unwrap();
    {
        let conn = versioned.connect();
        for k in 0..20 {
            conn.execute(&format!("UPDATE t SET d = {k} WHERE id % 10 = 0")).unwrap();
        }
    }
    let clean_conn = clean.connect();
    let versioned_conn = versioned.connect();
    g.bench_function("scan_clean_table", |b| {
        b.iter(|| clean_conn.query("SELECT sum(v) FROM t").unwrap())
    });
    g.bench_function("scan_after_20_update_rounds", |b| {
        b.iter(|| versioned_conn.query("SELECT sum(v) FROM t").unwrap())
    });
    g.bench_function("gc_reclaim", |b| b.iter(|| versioned.txn_manager().garbage_collect()));

    // Durable commit: WAL append + fsync per transaction.
    let mut path = std::env::temp_dir();
    path.push(format!("eider_mvcc_bench_{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let db = Database::open(&path).unwrap();
    let conn = db.connect();
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    let mut i = 0;
    g.bench_function("durable_insert_commit", |b| {
        b.iter(|| {
            i += 1;
            conn.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap()
        })
    });
    g.finish();
    drop(conn);
    drop(db);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{}.wal", path.display()));
}

criterion_group!(benches, mvcc);
criterion_main!(benches);
