//! The catalog: named schemas, tables and views (§6).
//!
//! §6: "The catalog contains pointers to lists of schemas, tables and
//! views." eider keeps a single implicit schema (`main`); multiple schemas
//! are parsed but all resolve here (see DESIGN.md non-goals). Names are
//! case-insensitive, as in SQL.
//!
//! Table *data* lives in [`eider_txn::DataTable`]; catalog entries bind a
//! name and column definitions (names, types, NOT NULL constraints,
//! defaults) to that versioned storage.

use eider_txn::DataTable;
use eider_vector::{EiderError, LogicalType, Result, Value};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One column of a table definition.
#[derive(Debug, Clone)]
pub struct ColumnDefinition {
    pub name: String,
    pub ty: LogicalType,
    pub not_null: bool,
    /// Value used by INSERTs that omit the column (NULL when absent).
    pub default: Option<Value>,
}

impl ColumnDefinition {
    pub fn new(name: impl Into<String>, ty: LogicalType) -> Self {
        ColumnDefinition { name: name.into(), ty, not_null: false, default: None }
    }

    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    pub fn with_default(mut self, v: Value) -> Self {
        self.default = Some(v);
        self
    }
}

/// A named table bound to versioned storage.
#[derive(Debug)]
pub struct TableEntry {
    pub name: String,
    pub columns: Vec<ColumnDefinition>,
    pub data: Arc<DataTable>,
}

impl TableEntry {
    /// Case-insensitive column lookup.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column_types(&self) -> Vec<LogicalType> {
        self.columns.iter().map(|c| c.ty).collect()
    }

    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Current table statistics for the cost-based optimizer, derived
    /// on demand from storage metadata (see [`eider_txn::TableStats`]).
    pub fn stats(&self) -> std::sync::Arc<eider_txn::TableStats> {
        self.data.table_stats()
    }
}

/// A named view: a stored SQL query expanded at bind time.
#[derive(Debug, Clone)]
pub struct ViewEntry {
    pub name: String,
    pub sql: String,
}

/// The catalog. Thread-safe; DDL takes write locks, lookups read locks.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<TableEntry>>>,
    views: RwLock<HashMap<String, Arc<ViewEntry>>>,
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    pub fn new() -> Arc<Self> {
        Arc::new(Catalog::default())
    }

    /// Create a table. Validates that column names are unique and
    /// non-empty.
    pub fn create_table(
        &self,
        name: &str,
        columns: Vec<ColumnDefinition>,
        if_not_exists: bool,
    ) -> Result<Arc<TableEntry>> {
        if columns.is_empty() {
            return Err(EiderError::Catalog(format!("table {name} must have at least one column")));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if c.name.is_empty() {
                return Err(EiderError::Catalog("empty column name".into()));
            }
            if !seen.insert(c.name.to_ascii_lowercase()) {
                return Err(EiderError::Catalog(format!(
                    "duplicate column name \"{}\" in table {name}",
                    c.name
                )));
            }
        }
        let mut tables = self.tables.write();
        if let Some(existing) = tables.get(&key(name)) {
            if if_not_exists {
                return Ok(Arc::clone(existing));
            }
            return Err(EiderError::Catalog(format!("table \"{name}\" already exists")));
        }
        if self.views.read().contains_key(&key(name)) {
            return Err(EiderError::Catalog(format!("a view named \"{name}\" already exists")));
        }
        let types = columns.iter().map(|c| c.ty).collect();
        let entry =
            Arc::new(TableEntry { name: name.to_string(), columns, data: DataTable::new(types) });
        tables.insert(key(name), Arc::clone(&entry));
        Ok(entry)
    }

    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<()> {
        let mut tables = self.tables.write();
        match tables.remove(&key(name)) {
            Some(_) => Ok(()),
            None if if_exists => Ok(()),
            None => Err(EiderError::Catalog(format!("table \"{name}\" does not exist"))),
        }
    }

    pub fn get_table(&self, name: &str) -> Result<Arc<TableEntry>> {
        self.tables
            .read()
            .get(&key(name))
            .cloned()
            .ok_or_else(|| EiderError::Catalog(format!("table \"{name}\" does not exist")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&key(name))
    }

    pub fn create_view(&self, name: &str, sql: &str, or_replace: bool) -> Result<()> {
        if self.tables.read().contains_key(&key(name)) {
            return Err(EiderError::Catalog(format!("a table named \"{name}\" already exists")));
        }
        let mut views = self.views.write();
        if views.contains_key(&key(name)) && !or_replace {
            return Err(EiderError::Catalog(format!("view \"{name}\" already exists")));
        }
        views.insert(
            key(name),
            Arc::new(ViewEntry { name: name.to_string(), sql: sql.to_string() }),
        );
        Ok(())
    }

    pub fn drop_view(&self, name: &str, if_exists: bool) -> Result<()> {
        let mut views = self.views.write();
        match views.remove(&key(name)) {
            Some(_) => Ok(()),
            None if if_exists => Ok(()),
            None => Err(EiderError::Catalog(format!("view \"{name}\" does not exist"))),
        }
    }

    pub fn get_view(&self, name: &str) -> Option<Arc<ViewEntry>> {
        self.views.read().get(&key(name)).cloned()
    }

    /// Sorted table names (stable output for `SHOW TABLES` and tests).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().values().map(|t| t.name.clone()).collect();
        names.sort();
        names
    }

    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.read().values().map(|v| v.name.clone()).collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<ColumnDefinition> {
        vec![
            ColumnDefinition::new("id", LogicalType::Integer).not_null(),
            ColumnDefinition::new("name", LogicalType::Varchar),
        ]
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let cat = Catalog::new();
        cat.create_table("Orders", cols(), false).unwrap();
        let t = cat.get_table("ORDERS").unwrap();
        assert_eq!(t.name, "Orders");
        assert_eq!(t.column_index("ID"), Some(0));
        assert_eq!(t.column_index("missing"), None);
        assert_eq!(t.column_types(), vec![LogicalType::Integer, LogicalType::Varchar]);
    }

    #[test]
    fn duplicate_table_rejected_unless_if_not_exists() {
        let cat = Catalog::new();
        cat.create_table("t", cols(), false).unwrap();
        assert!(cat.create_table("T", cols(), false).is_err());
        let again = cat.create_table("t", cols(), true).unwrap();
        assert_eq!(again.name, "t");
    }

    #[test]
    fn duplicate_column_rejected() {
        let cat = Catalog::new();
        let bad = vec![
            ColumnDefinition::new("x", LogicalType::Integer),
            ColumnDefinition::new("X", LogicalType::Integer),
        ];
        assert!(cat.create_table("t", bad, false).is_err());
    }

    #[test]
    fn drop_table_semantics() {
        let cat = Catalog::new();
        cat.create_table("t", cols(), false).unwrap();
        cat.drop_table("T", false).unwrap();
        assert!(!cat.has_table("t"));
        assert!(cat.drop_table("t", false).is_err());
        cat.drop_table("t", true).unwrap();
    }

    #[test]
    fn views() {
        let cat = Catalog::new();
        cat.create_view("v", "SELECT 1", false).unwrap();
        assert!(cat.create_view("v", "SELECT 2", false).is_err());
        cat.create_view("v", "SELECT 2", true).unwrap();
        assert_eq!(cat.get_view("V").unwrap().sql, "SELECT 2");
        cat.drop_view("v", false).unwrap();
        assert!(cat.get_view("v").is_none());
    }

    #[test]
    fn name_collisions_between_tables_and_views() {
        let cat = Catalog::new();
        cat.create_table("t", cols(), false).unwrap();
        assert!(cat.create_view("t", "SELECT 1", false).is_err());
        cat.create_view("v", "SELECT 1", false).unwrap();
        assert!(cat.create_table("v", cols(), false).is_err());
    }

    #[test]
    fn sorted_listings() {
        let cat = Catalog::new();
        cat.create_table("zeta", cols(), false).unwrap();
        cat.create_table("alpha", cols(), false).unwrap();
        assert_eq!(cat.table_names(), vec!["alpha", "zeta"]);
    }
}
