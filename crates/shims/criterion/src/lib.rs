//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset eider's benches use — [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — measuring wall-clock
//! time with a short warm-up and printing mean/min per iteration. No
//! statistical analysis, plots, or baselines; swap the workspace path
//! dependency for crates.io `criterion` for those.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// (mean, min) per-iteration wall time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `f`, first warming up, then averaging over the sample count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }

    /// Time `routine` with a fresh, untimed `setup` value per iteration.
    pub fn iter_with_setup<S, R, FS, FR>(&mut self, mut setup: FS, mut routine: FR)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> R,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Iterations measured per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Shortened measurement knob accepted for API compatibility; the shim
    /// always runs exactly `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: self.samples, result: None };
        f(&mut b);
        match b.result {
            Some((mean, min)) => {
                println!(
                    "bench {:<40} mean {:>12.3?}   min {:>12.3?}   ({} samples)",
                    format!("{}/{}", self.name, id),
                    mean,
                    min,
                    self.samples
                );
                self.criterion.results.push((format!("{}/{}", self.name, id), mean));
            }
            None => println!("bench {}/{}: closure never called iter()", self.name, id),
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// Benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Accepted for API compatibility; the shim reads no CLI flags.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, samples: 10 }
    }

    /// Ungrouped single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }

    /// Mean per-iteration duration of a finished benchmark, by full name
    /// (`"group/id"`). Used by benches that assert speedup ratios.
    pub fn mean_of(&self, full_name: &str) -> Option<Duration> {
        self.results.iter().find(|(n, _)| n == full_name).map(|(_, d)| *d)
    }
}

/// Declare a bench group: a function running several `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert!(c.mean_of("g/noop").is_some());
        assert!(c.mean_of("g/other").is_none());
    }
}
