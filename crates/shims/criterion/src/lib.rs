//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset eider's benches use — [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — measuring wall-clock
//! time with a short warm-up and printing mean/min per iteration. No
//! statistical analysis, plots, or baselines; swap the workspace path
//! dependency for crates.io `criterion` for those.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// (mean, min) per-iteration wall time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `f`, first warming up, then averaging over the sample count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }

    /// Time `routine` with a fresh, untimed `setup` value per iteration.
    pub fn iter_with_setup<S, R, FS, FR>(&mut self, mut setup: FS, mut routine: FR)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> R,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Iterations measured per benchmark (default 10). The
    /// `EIDER_BENCH_SAMPLES` environment variable overrides every group's
    /// request — CI smoke runs set it low to bound wall time.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_samples().unwrap_or(n).max(1);
        self
    }

    /// Shortened measurement knob accepted for API compatibility; the shim
    /// always runs exactly `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: self.samples, result: None };
        f(&mut b);
        match b.result {
            Some((mean, min)) => {
                println!(
                    "bench {:<40} mean {:>12.3?}   min {:>12.3?}   ({} samples)",
                    format!("{}/{}", self.name, id),
                    mean,
                    min,
                    self.samples
                );
                self.criterion.results.push((format!("{}/{}", self.name, id), mean, min));
            }
            None => println!("bench {}/{}: closure never called iter()", self.name, id),
        }
        self
    }

    pub fn finish(&mut self) {}
}

fn env_samples() -> Option<usize> {
    std::env::var("EIDER_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok())
}

/// Benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    /// `(full name, mean, min)` per finished benchmark.
    results: Vec<(String, Duration, Duration)>,
}

impl Criterion {
    /// Accepted for API compatibility; the shim reads no CLI flags.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        // The env override applies even to groups that never call
        // sample_size().
        BenchmarkGroup { name: name.into(), criterion: self, samples: env_samples().unwrap_or(10) }
    }

    /// Ungrouped single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }

    /// Mean per-iteration duration of a finished benchmark, by full name
    /// (`"group/id"`). Used by benches that assert speedup ratios.
    pub fn mean_of(&self, full_name: &str) -> Option<Duration> {
        self.results.iter().find(|(n, _, _)| n == full_name).map(|(_, d, _)| *d)
    }

    /// Hand this driver's results to the process-wide sink (called by
    /// `criterion_group!` after its targets ran).
    pub fn publish(&self) {
        publish_results(&self.results);
    }
}

// ---------------- machine-readable summary ----------------

use std::sync::Mutex;

static ALL_RESULTS: Mutex<Vec<(String, Duration, Duration)>> = Mutex::new(Vec::new());

fn publish_results(results: &[(String, Duration, Duration)]) {
    ALL_RESULTS.lock().expect("results sink").extend(results.iter().cloned());
}

/// Record a non-timing metric (bytes, counts) into the machine-readable
/// summary: it lands as a `{"name", "mean_ns": value, ...}` entry next to
/// the timing rows, merged by name like everything else. Use a family
/// prefix outside the gated ones (`olap/`, `parallel/`) — deterministic
/// values would otherwise trip the gate's "bit-identical means look
/// unmeasured" heuristic. eider's benches use `metric/...` for peak
/// accounted memory.
pub fn record_metric(name: &str, value: u64) {
    let d = Duration::from_nanos(value);
    publish_results(&[(name.to_string(), d, d)]);
    println!("{name:<40} value {value}");
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Write every finished benchmark of this process as JSON to the path in
/// `EIDER_BENCH_JSON` (no-op without it). The file is a JSON array with
/// one `{"name", "mean_ns", "min_ns", "host_cpus"}` object per line; an
/// existing file in the same format is merged *by name* — re-run benches
/// replace their old entry, anything else (other bench binaries' results,
/// recorded baselines like `baseline-pre-prN/...`) is preserved. CI's
/// `ci.sh bench-smoke` leans on this to keep one cumulative summary.
/// `host_cpus` records the runner's core count so numbers from multi-core
/// machines are distinguishable from 1-core CI containers when comparing
/// perf trajectories. Called by `criterion_main!` after the last group.
pub fn write_env_json() {
    let Ok(path) = std::env::var("EIDER_BENCH_JSON") else { return };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let fresh: Vec<(String, String)> = ALL_RESULTS
        .lock()
        .expect("results sink")
        .iter()
        .map(|(name, mean, min)| {
            (
                json_escape(name),
                format!(
                    "{{\"name\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"host_cpus\":{}}}",
                    json_escape(name),
                    mean.as_nanos(),
                    min.as_nanos(),
                    host_cpus
                ),
            )
        })
        .collect();
    let mut entries: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with("{\"name\"") {
                continue;
            }
            // Keep entries this run did not re-measure.
            let replaced =
                fresh.iter().any(|(name, _)| line.starts_with(&format!("{{\"name\":\"{name}\"")));
            if !replaced {
                entries.push(line.to_string());
            }
        }
    }
    entries.extend(fresh.into_iter().map(|(_, line)| line));
    let mut out = String::from("[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write bench summary {path}: {e}");
    }
}

/// Declare a bench group: a function running several `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.publish();
        }
    };
}

/// Emit `main` running the listed groups, then flushing the optional
/// machine-readable summary (`EIDER_BENCH_JSON`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_env_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert!(c.mean_of("g/noop").is_some());
        assert!(c.mean_of("g/other").is_none());
    }
}
