//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds without network access, so the handful of
//! `parking_lot` APIs eider uses are re-implemented here on top of
//! `std::sync`. Semantics match what the engine relies on: non-poisoning
//! locks with guard-based access and no `Result` on acquisition. The real
//! crate is a drop-in replacement — swap the `[workspace.dependencies]`
//! path entry for a crates.io version to use it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock that ignores poisoning, like `parking_lot`'s.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard { inner: p.into_inner() },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock that ignores poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(p) => RwLockReadGuard { inner: p.into_inner() },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(p) => RwLockWriteGuard { inner: p.into_inner() },
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard { inner: p.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard { inner: p.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
