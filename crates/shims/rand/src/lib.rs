//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset eider uses — [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and
//! [`Rng::gen_bool`] — backed by a xoshiro256** generator. Deterministic
//! for a given seed, which is all the workload generators and fault
//! injectors require; statistical quality is more than adequate for
//! synthetic data. Swap the workspace path dependency for crates.io
//! `rand` to use the real thing.

use std::ops::Range;

/// Core pseudo-random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a `Range` via [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample_range(range: Range<Self>, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is negligible for the spans the workloads use.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
        f64::sample_range(f64::from(range.start)..f64::from(range.end), rng) as f32
    }
}

/// The user-facing sampling surface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range, self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's ChaCha12
    /// `StdRng`; the name is kept so call sites compile unchanged).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference initialization for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
