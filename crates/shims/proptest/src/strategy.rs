//! The [`Strategy`] trait and the combinators the shim supports.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Deterministic per-test random source.
///
/// Seeded from a hash of the test name so every test draws an independent
/// but reproducible stream.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Build the generator for a named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `usize` in `range` (empty ranges yield `range.start`).
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.start >= range.end {
            range.start
        } else {
            self.inner.gen_range(range)
        }
    }

    /// `true` with probability `num/denom`.
    pub fn ratio(&mut self, num: u64, denom: u64) -> bool {
        self.inner.gen_range(0..denom) < num
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(move |rng: &mut TestRng| self.generate(rng)) }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Tuples of strategies are strategies over tuples, as in real proptest
/// (`(prop::option::of(any::<u8>()), 0u8..12)`).
macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full value space of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// `proptest::prelude::any`: every value of `T` is possible.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix edge values in: extremes are where bugs live.
                match rng.next_u64() % 16 {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.next_u64() % 16 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MAX,
            3 => f64::MIN,
            _ => {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (unit - 0.5) * 2e15
            }
        }
    }
}

/// Integer ranges are strategies (`(1i64..10)`).
macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// String literals of the form `"[chars]{min,max}"` are strategies, e.g.
/// `"[a-z0-9]{0,16}"`. This covers the character-class subset of
/// proptest's regex strategies that eider's tests use; anything fancier
/// panics loudly rather than silently generating the wrong language.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_charset_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = rng.usize_in(min..max + 1);
        (0..len).map(|_| chars[rng.usize_in(0..chars.len())]).collect()
    }
}

/// Parse `[class]{min,max}` into (alphabet, min, max).
fn parse_charset_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let min: usize = lo.trim().parse().ok()?;
    let max: usize = hi.trim().parse().ok()?;
    if min > max {
        return None;
    }
    let mut chars = Vec::new();
    let src: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < src.len() {
        if i + 2 < src.len() && src[i + 1] == '-' {
            let (a, b) = (src[i], src[i + 2]);
            if a > b {
                return None;
            }
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(src[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charset_parsing() {
        let (chars, min, max) = parse_charset_pattern("[a-c_]{1,4}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '_']);
        assert_eq!((min, max), (1, 4));
        assert!(parse_charset_pattern("abc").is_none());
        assert!(parse_charset_pattern("[z-a]{0,1}").is_none());
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
