//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros eider's property tests
//! use — [`strategy::Strategy`], [`prelude::any`], [`strategy::Just`], ranges and
//! string character-class patterns as strategies, `prop::collection::vec`,
//! `prop::option::of`, [`prop_oneof!`], [`proptest!`], [`prop_assert_eq!`]
//! and [`prop_assert_ne!`] — on a deterministic seeded generator.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: no shrinking (failures report the generated case but do not
//! minimize it) and a fixed seed per test (cases are reproducible from the
//! test name alone). Swap the workspace path dependency for crates.io
//! `proptest` to restore full behaviour.

pub mod strategy;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies for `Option`.

    use crate::strategy::{Strategy, TestRng};

    /// Strategy producing `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`: `Some(inner)` or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.ratio(1, 4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error raised by `prop_assert_*`; carries the formatted message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};

    pub mod prop {
        //! The `prop::` paths (`prop::collection`, `prop::option`).
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Choose among strategies with identical output types, uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assert equality inside a proptest body; failure aborts the case with a
/// message instead of panicking mid-generator.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "prop_assert_eq! failed: {:?} != {:?} at {}:{}",
                a,
                b,
                file!(),
                line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $fmt:literal $(, $arg:expr)* $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "prop_assert_eq! failed: {:?} != {:?} ({}) at {}:{}",
                a,
                b,
                format!($fmt $(, $arg)*),
                file!(),
                line!()
            )));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "prop_assert_ne! failed: both {:?} at {}:{}",
                a,
                file!(),
                line!()
            )));
        }
    }};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn adds(a in 0i32..10, b in 0i32..10) { prop_assert_eq!(a + b, b + a); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(#[test] fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::strategy::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e.0);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_sizes_in_range(v in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert_eq!((3..7).contains(&v.len()), true);
        }

        #[test]
        fn oneof_and_map_produce_all_variants(
            vals in prop::collection::vec(
                prop_oneof![
                    Just(0i64),
                    (1i64..10).prop_map(|v| v * 100),
                ],
                0..50,
            )
        ) {
            for v in &vals {
                prop_assert_eq!(*v == 0 || (100..1000).contains(v), true);
            }
        }

        #[test]
        fn string_pattern_respects_charset(s in "[ab]{2,4}") {
            prop_assert_eq!((2..=4).contains(&s.len()), true);
            prop_assert_eq!(s.chars().all(|c| c == 'a' || c == 'b'), true);
        }
    }
}
