//! The worker-thread scheduler backing parallel pipelines.
//!
//! Deliberately simple: pipelines are the unit of scheduling, and a
//! pipeline's workers are homogeneous (same closure, different morsels),
//! so a scoped fork-join is all that is needed — no task queue, no
//! wakeups. Scoped threads let workers borrow the query's transaction and
//! operator state without `'static` gymnastics, and joining inside the
//! scope guarantees no worker outlives its query.

use eider_vector::{EiderError, Result};

/// Fans a worker closure out over N threads and collects the results.
#[derive(Debug, Clone, Copy)]
pub struct TaskScheduler {
    threads: usize,
}

impl TaskScheduler {
    /// A scheduler running `threads` workers (floored at one).
    pub fn new(threads: usize) -> Self {
        TaskScheduler { threads: threads.max(1) }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `worker(worker_index)` on every thread and return all results
    /// in worker order. With one thread the closure runs inline on the
    /// caller — thread count 1 therefore behaves *exactly* like serial
    /// execution, which the equivalence tests rely on.
    ///
    /// The first worker error (in worker order) wins; a panicking worker
    /// propagates the panic to the caller.
    pub fn run<T, F>(&self, worker: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        if self.threads == 1 {
            return Ok(vec![worker(0)?]);
        }
        let results: Vec<std::thread::Result<Result<T>>> = std::thread::scope(|scope| {
            let worker = &worker;
            let handles: Vec<_> = (0..self.threads)
                .map(|i| {
                    std::thread::Builder::new()
                        .name(format!("eider-worker-{i}"))
                        .spawn_scoped(scope, move || worker(i))
                        .map_err(|e| {
                            EiderError::Internal(format!("failed to spawn worker thread: {e}"))
                        })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h {
                    Ok(handle) => handle.join(),
                    Err(e) => Ok(Err(e)),
                })
                .collect()
        });
        // A panic is an invariant violation and must never be masked by an
        // ordinary error from an earlier worker: surface panics first.
        let mut results_ok = Vec::with_capacity(results.len());
        for r in results {
            match r {
                Ok(inner) => results_ok.push(inner),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        let mut out = Vec::with_capacity(results_ok.len());
        for r in results_ok {
            out.push(r?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_worker_once_in_order() {
        let sched = TaskScheduler::new(4);
        let calls = AtomicUsize::new(0);
        let out = sched
            .run(|i| {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(i * 10)
            })
            .unwrap();
        assert_eq!(out, vec![0, 10, 20, 30]);
        assert_eq!(calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn single_thread_runs_inline() {
        let sched = TaskScheduler::new(0); // floors to 1
        assert_eq!(sched.threads(), 1);
        let caller = std::thread::current().id();
        let out = sched.run(|_| Ok(std::thread::current().id())).unwrap();
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn first_error_in_worker_order_wins() {
        let sched = TaskScheduler::new(3);
        let err = sched
            .run(|i| -> Result<()> { Err(EiderError::Internal(format!("worker {i}"))) })
            .unwrap_err();
        assert!(err.to_string().contains("worker 0"), "{err}");
    }
}
