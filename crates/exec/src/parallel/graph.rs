//! The pipeline DAG: multi-pipeline scheduling with breaker-state handoff.
//!
//! A single [`ParallelPipeline`] can only express `scan → step* → sink`.
//! Real query shapes are *graphs* of such pipelines connected by pipeline
//! breakers: a hash join's build pipeline must finish before its probe
//! pipeline starts, a sort's runs must all exist before the merge, and a
//! UNION ALL is two sibling pipelines feeding one result. The
//! [`PipelineGraph`] models exactly that:
//!
//! * **nodes** are pipelines (or serially-evaluated build sides for inputs
//!   too small or too irregular to split into morsels);
//! * **edges** are breaker states passed between them — today an immutable
//!   shared [`BuildSide`] flowing from a build node into the
//!   [`GraphLink::Probe`] links of later pipelines;
//! * **outputs** name the nodes whose chunks concatenate (in order) into
//!   the graph's result; more than one output node models UNION ALL.
//!
//! Nodes are stored in dependency order (the planner appends a join's
//! build node before the pipeline that probes it), so execution is a
//! simple in-order walk: each node runs to completion on the
//! [`TaskScheduler`](crate::parallel::scheduler::TaskScheduler) fan-out,
//! its breaker state is parked in the result table, and later nodes
//! resolve their links against it. Every node's merge step is
//! deterministic, so the whole DAG returns bit-identical rows at any
//! worker count.
//!
//! The [`PipelineGraphOp`] facade lets the physical planner splice a DAG
//! into an otherwise serial plan; it holds the output's buffer-manager
//! reservations until dropped (pipeline teardown).

use crate::expression::Expr;
use crate::ops::join::{BuildSide, JoinType};
use crate::ops::{OperatorBox, PhysicalOperator};
use crate::parallel::morsel::MorselSource;
use crate::parallel::pipeline::{
    sink_output_types, ParallelPipeline, PipelineOutput, PipelineSink, PipelineStep,
};
use eider_coop::compression::CompressionLevel;
use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_txn::Transaction;
use eider_vector::{DataChunk, EiderError, LogicalType, Result};
use std::sync::Arc;

/// Index of a node inside its [`PipelineGraph`].
pub type NodeId = usize;

/// One streaming link of a pipeline node's chain.
pub enum GraphLink {
    /// A plain per-worker step (filter / projection).
    Step(PipelineStep),
    /// Morsel-parallel hash-join probe against the [`BuildSide`] produced
    /// by node `build` (which must precede this node). Resolved into a
    /// [`PipelineStep::JoinProbe`] once the build node has run.
    Probe {
        build: NodeId,
        left_keys: Vec<Expr>,
        join_type: JoinType,
        right_types: Vec<LogicalType>,
    },
}

/// One node of the DAG.
pub enum GraphNode {
    /// A morsel-parallel pipeline over a table scan.
    Pipeline { source: Arc<MorselSource>, links: Vec<GraphLink>, sink: PipelineSink },
    /// A join build side evaluated serially (the input is not
    /// pipeline-shaped, or too small for fan-out to pay off). The *probe*
    /// side still runs morsel-parallel — this is what keeps small
    /// dimension-table joins on the parallel path.
    SerialBuild { input: Option<OperatorBox>, keys: Vec<Expr> },
    /// The mirror case: a *probe* side too small or irregular to split,
    /// pulled serially through the resolved probe links and drained into
    /// chunks. The expensive build pipeline stays morsel-parallel.
    SerialPipeline { input: Option<OperatorBox>, links: Vec<GraphLink> },
}

/// Column types a chain of links produces over `base`-typed chunks —
/// shared by node typing here and by the planner's chain specs.
pub fn fold_link_types(base: Vec<LogicalType>, links: &[GraphLink]) -> Vec<LogicalType> {
    let mut types = base;
    for link in links {
        types = match link {
            GraphLink::Step(step) => step.output_types(types),
            GraphLink::Probe { join_type, right_types, .. } => {
                if join_type.emits_right_columns() {
                    types.extend(right_types.iter().copied());
                }
                types
            }
        };
    }
    types
}

/// Breaker state parked between nodes during execution.
enum NodeOutput {
    /// Consumed (or never produced chunks/build state).
    Taken,
    Chunks {
        chunks: Vec<DataChunk>,
        reservations: Vec<MemoryReservation>,
    },
    Build(Arc<BuildSide>),
}

/// An executable DAG of parallel pipelines, bound to one query's
/// transaction. Build with [`PipelineGraph::new`] + [`PipelineGraph::add`],
/// then declare the output node(s) with [`PipelineGraph::set_outputs`].
pub struct PipelineGraph {
    nodes: Vec<GraphNode>,
    outputs: Vec<NodeId>,
    txn: Arc<Transaction>,
    threads: usize,
    buffers: Option<Arc<BufferManager>>,
    compression: CompressionLevel,
    sort_budget: usize,
}

impl PipelineGraph {
    pub fn new(txn: Arc<Transaction>, threads: usize) -> Self {
        PipelineGraph {
            nodes: Vec::new(),
            outputs: Vec::new(),
            txn,
            threads: threads.max(1),
            buffers: None,
            compression: CompressionLevel::None,
            sort_budget: usize::MAX,
        }
    }

    /// Account pipeline state (collected chunks, sort runs, aggregate
    /// partials, build sides) against a buffer manager.
    pub fn with_buffers(mut self, buffers: Option<Arc<BufferManager>>) -> Self {
        self.buffers = buffers;
        self
    }

    /// Compression level for materialized build sides (Figure 1's
    /// intermediate compression).
    pub fn with_compression(mut self, compression: CompressionLevel) -> Self {
        self.compression = compression;
        self
    }

    /// Total in-memory budget for sort runs; larger sorts spill to disk.
    pub fn with_sort_budget(mut self, budget: usize) -> Self {
        self.sort_budget = budget;
        self
    }

    /// Append a node; returns its id. Nodes referenced by
    /// [`GraphLink::Probe`] must be appended before their probers —
    /// execution walks in append order.
    pub fn add(&mut self, node: GraphNode) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Declare which nodes' chunks form the graph's result, concatenated
    /// in order (several nodes = UNION ALL).
    pub fn set_outputs(&mut self, outputs: Vec<NodeId>) {
        self.outputs = outputs;
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Column types a node's chain feeds into its sink.
    fn chain_types(&self, id: NodeId) -> Vec<LogicalType> {
        match &self.nodes[id] {
            GraphNode::SerialBuild { input, .. } => {
                input.as_ref().map(|op| op.output_types()).unwrap_or_default()
            }
            GraphNode::Pipeline { source, links, .. } => {
                let base = source.scan_options().output_types(source.table());
                fold_link_types(base, links)
            }
            GraphNode::SerialPipeline { input, links } => {
                let base = input.as_ref().map(|op| op.output_types()).unwrap_or_default();
                fold_link_types(base, links)
            }
        }
    }

    /// Column types of the graph's final output (the output nodes agree on
    /// them by construction — UNION ALL requires it).
    pub fn output_types(&self) -> Vec<LogicalType> {
        let Some(&first) = self.outputs.first() else { return Vec::new() };
        match &self.nodes[first] {
            GraphNode::SerialBuild { .. } => Vec::new(),
            GraphNode::Pipeline { sink, .. } => sink_output_types(sink, || self.chain_types(first)),
            GraphNode::SerialPipeline { .. } => self.chain_types(first),
        }
    }

    /// Execute every node in dependency order and concatenate the output
    /// nodes' chunks. Returns the chunks plus the buffer-manager
    /// reservations that keep them accounted until teardown.
    pub fn execute(mut self) -> Result<(Vec<DataChunk>, Vec<MemoryReservation>)> {
        let nodes = std::mem::take(&mut self.nodes);
        let mut results: Vec<NodeOutput> = Vec::with_capacity(nodes.len());
        for node in nodes {
            let output = match node {
                GraphNode::SerialBuild { input, keys } => {
                    let mut op = input.ok_or_else(|| {
                        EiderError::Internal("serial build node executed twice".into())
                    })?;
                    let mut build = BuildSide::new(self.compression, self.buffers.clone())?;
                    while let Some(chunk) = op.next_chunk()? {
                        if !chunk.is_empty() {
                            build.append_chunk(chunk, &keys)?;
                        }
                    }
                    NodeOutput::Build(Arc::new(build))
                }
                GraphNode::SerialPipeline { input, links } => {
                    let op = input.ok_or_else(|| {
                        EiderError::Internal("serial pipeline node executed twice".into())
                    })?;
                    let mut op = Self::resolve_links(links, &results)?
                        .into_iter()
                        .fold(op, |child, step| step.instantiate(child));
                    let mut chunks = Vec::new();
                    while let Some(chunk) = op.next_chunk()? {
                        if !chunk.is_empty() {
                            chunks.push(chunk);
                        }
                    }
                    NodeOutput::Chunks { chunks, reservations: Vec::new() }
                }
                GraphNode::Pipeline { source, links, sink } => {
                    let steps = Self::resolve_links(links, &results)?;
                    let pipeline =
                        ParallelPipeline::new(source, Arc::clone(&self.txn), steps, sink)
                            .with_buffers(self.buffers.clone())
                            .with_sort_budget(self.sort_budget);
                    match pipeline.execute(self.threads)? {
                        PipelineOutput::Chunks { chunks, reservations } => {
                            NodeOutput::Chunks { chunks, reservations }
                        }
                        PipelineOutput::JoinBuild { partials, reservations } => {
                            let build = BuildSide::from_partials(
                                partials,
                                self.compression,
                                self.buffers.clone(),
                            )?;
                            // The workers' partial reservations release
                            // only now, after the splice re-accounted the
                            // same rows inside the build side.
                            drop(reservations);
                            NodeOutput::Build(Arc::new(build))
                        }
                    }
                }
            };
            results.push(output);
        }
        let mut chunks = Vec::new();
        let mut reservations = Vec::new();
        for &id in &self.outputs {
            match std::mem::replace(&mut results[id], NodeOutput::Taken) {
                NodeOutput::Chunks { chunks: c, reservations: r } => {
                    chunks.extend(c);
                    reservations.extend(r);
                }
                _ => {
                    return Err(EiderError::Internal(
                        "pipeline-DAG output node did not produce chunks".into(),
                    ))
                }
            }
        }
        Ok((chunks, reservations))
    }

    /// Resolve probe links against already-executed build nodes.
    fn resolve_links(links: Vec<GraphLink>, results: &[NodeOutput]) -> Result<Vec<PipelineStep>> {
        links
            .into_iter()
            .map(|link| match link {
                GraphLink::Step(step) => Ok(step),
                GraphLink::Probe { build, left_keys, join_type, right_types } => {
                    match results.get(build) {
                        Some(NodeOutput::Build(b)) => Ok(PipelineStep::JoinProbe {
                            build: Arc::clone(b),
                            left_keys,
                            join_type,
                            right_types,
                        }),
                        _ => Err(EiderError::Internal(
                            "probe link references a node that produced no build side \
                             (planner emitted nodes out of dependency order?)"
                                .into(),
                        )),
                    }
                }
            })
            .collect()
    }
}

/// A [`PhysicalOperator`] facade over a pipeline DAG: executes eagerly on
/// the first pull, then streams the concatenated output chunks. Holds the
/// output's memory reservations until dropped.
pub struct PipelineGraphOp {
    graph: Option<PipelineGraph>,
    out_types: Vec<LogicalType>,
    output: Option<std::vec::IntoIter<DataChunk>>,
    _reservations: Vec<MemoryReservation>,
}

impl PipelineGraphOp {
    pub fn new(graph: PipelineGraph) -> Self {
        PipelineGraphOp {
            out_types: graph.output_types(),
            graph: Some(graph),
            output: None,
            _reservations: Vec::new(),
        }
    }
}

impl PhysicalOperator for PipelineGraphOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.output.is_none() {
            let graph = self
                .graph
                .take()
                .ok_or_else(|| EiderError::Internal("pipeline DAG executed twice".into()))?;
            let (chunks, reservations) = graph.execute()?;
            self.output = Some(chunks.into_iter());
            self._reservations = reservations;
        }
        Ok(self.output.as_mut().expect("executed").next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::Expr;
    use crate::ops::sort::SortKey;
    use crate::ops::{drain_rows, FilterOp, HashJoinOp, TableScanOp};
    use eider_txn::{CmpOp, DataTable, ScanOptions, TableFilter, TransactionManager};
    use eider_vector::{Value, VECTOR_SIZE};

    const ROWS: i32 = 30_000;

    /// (i, i % 100) — the second column joins 1:300 against a small build.
    fn fixture() -> (Arc<TransactionManager>, Arc<DataTable>) {
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer, LogicalType::Integer]);
        let setup = mgr.begin();
        let rows: Vec<Vec<Value>> =
            (0..ROWS).map(|i| vec![Value::Integer(i), Value::Integer(i % 100)]).collect();
        table
            .append_chunk(
                &setup,
                &DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows)
                    .unwrap(),
            )
            .unwrap();
        setup.commit().unwrap();
        (mgr, table)
    }

    fn probe_opts() -> ScanOptions {
        ScanOptions { columns: vec![0, 1], filters: vec![], emit_row_ids: false }
    }

    fn build_scan(table: &Arc<DataTable>, txn: &Arc<Transaction>) -> OperatorBox {
        // Build side: rows with id < 100 (one per key value).
        Box::new(TableScanOp::new(
            Arc::clone(table),
            Arc::clone(txn),
            ScanOptions {
                columns: vec![0, 1],
                filters: vec![TableFilter::new(0, CmpOp::Lt, Value::Integer(100))],
                emit_row_ids: false,
            },
        ))
    }

    fn join_key() -> Vec<Expr> {
        vec![Expr::column(1, LogicalType::Integer)]
    }

    fn serial_join_rows(table: &Arc<DataTable>, txn: &Arc<Transaction>) -> Vec<Vec<Value>> {
        let probe: OperatorBox =
            Box::new(TableScanOp::new(Arc::clone(table), Arc::clone(txn), probe_opts()));
        let mut op = HashJoinOp::new(
            probe,
            build_scan(table, txn),
            join_key(),
            join_key(),
            JoinType::Inner,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        drain_rows(&mut op).unwrap()
    }

    fn probe_graph(
        table: &Arc<DataTable>,
        txn: &Arc<Transaction>,
        threads: usize,
        parallel_build: bool,
    ) -> PipelineGraph {
        let mut graph = PipelineGraph::new(Arc::clone(txn), threads);
        let build = if parallel_build {
            let source =
                Arc::new(MorselSource::new(Arc::clone(table), txn, probe_opts(), VECTOR_SIZE));
            graph.add(GraphNode::Pipeline {
                source,
                links: vec![GraphLink::Step(PipelineStep::Filter(Expr::Compare {
                    op: CmpOp::Lt,
                    left: Box::new(Expr::column(0, LogicalType::Integer)),
                    right: Box::new(Expr::constant(Value::Integer(100))),
                }))],
                sink: PipelineSink::JoinBuild { keys: join_key() },
            })
        } else {
            graph.add(GraphNode::SerialBuild {
                input: Some(build_scan(table, txn)),
                keys: join_key(),
            })
        };
        let source =
            Arc::new(MorselSource::new(Arc::clone(table), txn, probe_opts(), VECTOR_SIZE * 2));
        let probe = graph.add(GraphNode::Pipeline {
            source,
            links: vec![GraphLink::Probe {
                build,
                left_keys: join_key(),
                join_type: JoinType::Inner,
                right_types: vec![LogicalType::Integer, LogicalType::Integer],
            }],
            sink: PipelineSink::Collect,
        });
        graph.set_outputs(vec![probe]);
        graph
    }

    #[test]
    fn serial_build_feeds_parallel_probe() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let serial = serial_join_rows(&table, &txn);
        assert_eq!(serial.len(), ROWS as usize);
        for threads in [1, 2, 3, 8] {
            let graph = probe_graph(&table, &txn, threads, false);
            assert_eq!(graph.output_types().len(), 4);
            let (chunks, _res) = graph.execute().unwrap();
            let rows: Vec<Vec<Value>> = chunks.iter().flat_map(DataChunk::to_rows).collect();
            assert_eq!(rows, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_pipeline_hands_build_side_to_probe_pipeline() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let serial = serial_join_rows(&table, &txn);
        for threads in [1, 2, 8] {
            let graph = probe_graph(&table, &txn, threads, true);
            let (chunks, _res) = graph.execute().unwrap();
            let rows: Vec<Vec<Value>> = chunks.iter().flat_map(DataChunk::to_rows).collect();
            assert_eq!(rows, serial, "threads={threads}");
        }
    }

    #[test]
    fn union_all_concatenates_output_nodes_in_order() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let arm = |cmp: CmpOp, bound: i32| ScanOptions {
            columns: vec![0, 1],
            filters: vec![TableFilter::new(0, cmp, Value::Integer(bound))],
            emit_row_ids: false,
        };
        let serial: Vec<Vec<Value>> = {
            let mut low: OperatorBox = Box::new(TableScanOp::new(
                Arc::clone(&table),
                Arc::clone(&txn),
                arm(CmpOp::Lt, 5_000),
            ));
            let mut high: OperatorBox = Box::new(TableScanOp::new(
                Arc::clone(&table),
                Arc::clone(&txn),
                arm(CmpOp::GtEq, 25_000),
            ));
            let mut rows = drain_rows(low.as_mut()).unwrap();
            rows.extend(drain_rows(high.as_mut()).unwrap());
            rows
        };
        for threads in [1, 2, 8] {
            let mut graph = PipelineGraph::new(Arc::clone(&txn), threads);
            let low = graph.add(GraphNode::Pipeline {
                source: Arc::new(MorselSource::new(
                    Arc::clone(&table),
                    &txn,
                    arm(CmpOp::Lt, 5_000),
                    VECTOR_SIZE,
                )),
                links: vec![],
                sink: PipelineSink::Collect,
            });
            let high = graph.add(GraphNode::Pipeline {
                source: Arc::new(MorselSource::new(
                    Arc::clone(&table),
                    &txn,
                    arm(CmpOp::GtEq, 25_000),
                    VECTOR_SIZE,
                )),
                links: vec![],
                sink: PipelineSink::Collect,
            });
            graph.set_outputs(vec![low, high]);
            let (chunks, _res) = graph.execute().unwrap();
            let rows: Vec<Vec<Value>> = chunks.iter().flat_map(DataChunk::to_rows).collect();
            assert_eq!(rows, serial, "threads={threads}");
        }
    }

    #[test]
    fn probe_chain_feeds_sort_sink_with_limit() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        // TopN over the join output: ORDER BY id DESC LIMIT 7 OFFSET 2.
        let mut serial = serial_join_rows(&table, &txn);
        serial.sort_by(|a, b| b[0].total_cmp(&a[0]));
        let expected: Vec<Vec<Value>> = serial[2..9].to_vec();
        for threads in [1, 2, 8] {
            let mut graph = PipelineGraph::new(Arc::clone(&txn), threads);
            let build = graph.add(GraphNode::SerialBuild {
                input: Some(build_scan(&table, &txn)),
                keys: join_key(),
            });
            let probe = graph.add(GraphNode::Pipeline {
                source: Arc::new(MorselSource::new(
                    Arc::clone(&table),
                    &txn,
                    probe_opts(),
                    VECTOR_SIZE * 2,
                )),
                links: vec![GraphLink::Probe {
                    build,
                    left_keys: join_key(),
                    join_type: JoinType::Inner,
                    right_types: vec![LogicalType::Integer, LogicalType::Integer],
                }],
                sink: PipelineSink::Sort {
                    keys: vec![SortKey::desc(Expr::column(0, LogicalType::Integer))],
                    limit: Some((7, 2)),
                },
            });
            graph.set_outputs(vec![probe]);
            let (chunks, _res) = graph.execute().unwrap();
            let rows: Vec<Vec<Value>> = chunks.iter().flat_map(DataChunk::to_rows).collect();
            assert_eq!(rows, expected, "threads={threads}");
        }
    }

    #[test]
    fn probe_link_against_non_build_node_errors() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let mut graph = PipelineGraph::new(Arc::clone(&txn), 2);
        // Node 0 collects chunks — probing it must fail, not panic.
        let collect = graph.add(GraphNode::Pipeline {
            source: Arc::new(MorselSource::new(
                Arc::clone(&table),
                &txn,
                probe_opts(),
                VECTOR_SIZE,
            )),
            links: vec![],
            sink: PipelineSink::Collect,
        });
        let probe = graph.add(GraphNode::Pipeline {
            source: Arc::new(MorselSource::new(
                Arc::clone(&table),
                &txn,
                probe_opts(),
                VECTOR_SIZE,
            )),
            links: vec![GraphLink::Probe {
                build: collect,
                left_keys: join_key(),
                join_type: JoinType::Inner,
                right_types: vec![LogicalType::Integer, LogicalType::Integer],
            }],
            sink: PipelineSink::Collect,
        });
        graph.set_outputs(vec![probe]);
        let err = graph.execute().unwrap_err();
        assert!(err.to_string().contains("no build side"), "{err}");
    }

    #[test]
    fn graph_op_streams_chunks_and_runs_once() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let graph = probe_graph(&table, &txn, 4, false);
        let types = graph.output_types();
        let mut op = PipelineGraphOp::new(graph);
        assert_eq!(op.output_types(), types);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), ROWS as usize);
        // Exhausted: further pulls keep returning None, not re-executing.
        assert!(op.next_chunk().unwrap().is_none());
    }

    #[test]
    fn filter_op_composes_with_serial_build() {
        // Regression guard: a SerialBuild node over a filtered serial chain
        // (FilterOp, not a pushed-down TableFilter) must work identically.
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let filtered: OperatorBox = Box::new(FilterOp::new(
            Box::new(TableScanOp::new(Arc::clone(&table), Arc::clone(&txn), probe_opts())),
            Expr::Compare {
                op: CmpOp::Lt,
                left: Box::new(Expr::column(0, LogicalType::Integer)),
                right: Box::new(Expr::constant(Value::Integer(100))),
            },
        ));
        let mut graph = PipelineGraph::new(Arc::clone(&txn), 4);
        let build = graph.add(GraphNode::SerialBuild { input: Some(filtered), keys: join_key() });
        let probe = graph.add(GraphNode::Pipeline {
            source: Arc::new(MorselSource::new(
                Arc::clone(&table),
                &txn,
                probe_opts(),
                VECTOR_SIZE * 2,
            )),
            links: vec![GraphLink::Probe {
                build,
                left_keys: join_key(),
                join_type: JoinType::Inner,
                right_types: vec![LogicalType::Integer, LogicalType::Integer],
            }],
            sink: PipelineSink::Collect,
        });
        graph.set_outputs(vec![probe]);
        let (chunks, _res) = graph.execute().unwrap();
        let n: usize = chunks.iter().map(DataChunk::len).sum();
        assert_eq!(n, ROWS as usize);
    }
}
