//! The pipeline DAG: multi-pipeline scheduling with breaker-state handoff.
//!
//! A single [`ParallelPipeline`] can only express `scan → step* → sink`.
//! Real query shapes are *graphs* of such pipelines connected by pipeline
//! breakers: a hash join's build pipeline must finish before its probe
//! pipeline starts, a sort's runs must all exist before the merge, and a
//! UNION ALL is two sibling pipelines feeding one result. The
//! [`PipelineGraph`] models exactly that:
//!
//! * **nodes** are pipelines (or serially-evaluated build sides for inputs
//!   too small or too irregular to split into morsels);
//! * **edges** are breaker states passed between them — today an immutable
//!   shared [`BuildSide`] flowing from a build node into the
//!   [`GraphLink::Probe`] links of later pipelines;
//! * **outputs** name the nodes whose chunks concatenate (in order) into
//!   the graph's result; more than one output node models UNION ALL.
//!
//! Execution is driven by a **readiness scheduler**: a node becomes ready
//! the moment every node it depends on (through a [`GraphLink::Probe`]
//! edge) has completed, and *all* ready nodes run concurrently — each on
//! its own scoped thread, fanning its workers out through the
//! [`TaskScheduler`](crate::parallel::scheduler::TaskScheduler) with a
//! proportional share of the fleet. Independent join builds overlap, the
//! arms of a UNION ALL scan side by side, and a
//! [`ChunkQueue`] edge streams batches
//! from producer pipelines into a consumer that runs *at the same time*
//! (queue edges are co-scheduling edges, not blocking dependencies).
//! Every node's merge step is deterministic and queue batches carry
//! deterministic sequence tags, so the whole DAG returns bit-identical
//! rows at any worker count.
//!
//! Failure of any node aborts every queue in the graph (waking blocked
//! producers and consumers), stops launching new nodes, and surfaces the
//! first error received once the in-flight nodes wind down; a panicking
//! node is caught, the graph drains the same way, and the payload is
//! re-raised on the calling thread.
//!
//! The fleet split is per launch round (`threads / nodes-in-flight`,
//! floored at one worker): co-scheduled stages mean one OS thread per
//! concurrent node even when the policy grants few workers, and a node
//! launched into a later round does not shrink the fleets of nodes
//! already running — a deliberate, transient oversubscription. The
//! converse also holds: shares never *grow* back when siblings finish,
//! so a queue consumer that outlives its producers drains the tail on
//! the share it launched with (dynamic rebalancing would need workers
//! that can join a running pipeline — see ROADMAP). Bounded queue
//! backpressure keeps the *runnable* thread count near the consumer's
//! share, and a policy of one worker total never reaches this scheduler
//! at all (the planner lowers serially below two workers).
//!
//! The [`PipelineGraphOp`] facade lets the physical planner splice a DAG
//! into an otherwise serial plan — and is where results *leave* the
//! graph: instead of materializing, the graph is rerouted through an
//! ordered result [`ChunkQueue`] ([`PipelineGraph::stream_into`]) and
//! executed on a background thread while the facade replays batches in
//! composed-sequence order, one chunk per pull (see the type docs for the
//! protocol). A [`GraphStats`] attachment records the scheduler's launch
//! rounds and peak node concurrency for tests and inspection.

use crate::expression::Expr;
use crate::ops::join::{BuildSide, JoinType};
use crate::ops::{OperatorBox, PhysicalOperator};
use crate::parallel::fleet::{FleetLease, WorkerFleet};
use crate::parallel::morsel::MorselSource;
use crate::parallel::pipeline::{
    sink_output_types, ParallelPipeline, PipelineOutput, PipelineSink, PipelineSource, PipelineStep,
};
use crate::parallel::queue::{compose_seq, ChunkQueue, OrderedPop, QueueBatch, QUEUE_ABORT_MSG};
use eider_coop::compression::CompressionLevel;
use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_txn::Transaction;
use eider_vector::{DataChunk, EiderError, LogicalType, Result};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Index of a node inside its [`PipelineGraph`].
pub type NodeId = usize;

/// One streaming link of a pipeline node's chain.
pub enum GraphLink {
    /// A plain per-worker step (filter / projection).
    Step(PipelineStep),
    /// Morsel-parallel hash-join probe against the [`BuildSide`] produced
    /// by node `build` (which must precede this node). Resolved into a
    /// [`PipelineStep::JoinProbe`] once the build node has run.
    Probe {
        build: NodeId,
        left_keys: Vec<Expr>,
        join_type: JoinType,
        right_types: Vec<LogicalType>,
    },
}

/// One node of the DAG.
pub enum GraphNode {
    /// A morsel-parallel pipeline over a [`PipelineSource`] — a table
    /// scan, or a chunk queue fed by concurrently-running producer nodes.
    Pipeline { source: PipelineSource, links: Vec<GraphLink>, sink: PipelineSink },
    /// A join build side evaluated serially (the input is not
    /// pipeline-shaped, or too small for fan-out to pay off). The *probe*
    /// side still runs morsel-parallel — this is what keeps small
    /// dimension-table joins on the parallel path.
    SerialBuild { input: Option<OperatorBox>, keys: Vec<Expr> },
    /// The mirror case: a *probe* side too small or irregular to split,
    /// pulled serially through the resolved probe links and drained into
    /// chunks. The expensive build pipeline stays morsel-parallel.
    SerialPipeline { input: Option<OperatorBox>, links: Vec<GraphLink> },
}

/// A secondary error a pipeline reports when the chunk queue it talks to
/// was aborted because some *other* node failed first — never the root
/// cause the user should see.
fn is_queue_abort(e: &EiderError) -> bool {
    matches!(e, EiderError::Internal(msg) if msg.contains(QUEUE_ABORT_MSG))
}

/// Column types a chain of links produces over `base`-typed chunks —
/// shared by node typing here and by the planner's chain specs.
pub fn fold_link_types(base: Vec<LogicalType>, links: &[GraphLink]) -> Vec<LogicalType> {
    let mut types = base;
    for link in links {
        types = match link {
            GraphLink::Step(step) => step.output_types(types),
            GraphLink::Probe { join_type, right_types, .. } => {
                if join_type.emits_right_columns() {
                    types.extend(right_types.iter().copied());
                }
                types
            }
        };
    }
    types
}

/// Breaker state parked between nodes during execution.
enum NodeOutput {
    /// Consumed (or never produced chunks/build state).
    Taken,
    Chunks {
        chunks: Vec<DataChunk>,
        reservations: Vec<MemoryReservation>,
    },
    Build(Arc<BuildSide>),
}

/// Scheduler instrumentation: which nodes launched together, and how many
/// ran concurrently at peak. Attach with [`PipelineGraph::with_stats`];
/// tests use it to prove independent nodes actually overlapped and that
/// queue edges streamed.
#[derive(Debug, Default)]
pub struct GraphStats {
    inner: Mutex<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    rounds: Vec<Vec<NodeId>>,
    running: usize,
    max_concurrent: usize,
    shares: Vec<(NodeId, usize)>,
}

impl GraphStats {
    pub fn new() -> Arc<Self> {
        Arc::new(GraphStats::default())
    }

    /// Node ids launched per scheduling round (a round launches every node
    /// whose dependencies were satisfied at that instant).
    pub fn launch_rounds(&self) -> Vec<Vec<NodeId>> {
        self.inner.lock().expect("stats poisoned").rounds.clone()
    }

    /// Peak number of nodes in flight at once.
    pub fn max_concurrent(&self) -> usize {
        self.inner.lock().expect("stats poisoned").max_concurrent
    }

    /// Worker share granted to each node at launch, in launch order.
    /// Proves the weighted split: a heavy scan node should receive more
    /// workers than the single-row build launched alongside it.
    pub fn node_shares(&self) -> Vec<(NodeId, usize)> {
        self.inner.lock().expect("stats poisoned").shares.clone()
    }

    fn record_share(&self, id: NodeId, share: usize) {
        self.inner.lock().expect("stats poisoned").shares.push((id, share));
    }

    fn record_launch(&self, round: &[NodeId]) {
        let mut inner = self.inner.lock().expect("stats poisoned");
        inner.rounds.push(round.to_vec());
        inner.running += round.len();
        inner.max_concurrent = inner.max_concurrent.max(inner.running);
    }

    fn record_finish(&self) {
        let mut inner = self.inner.lock().expect("stats poisoned");
        inner.running = inner.running.saturating_sub(1);
    }
}

/// A node with its probe links resolved, ready to run on its own thread.
/// `out` is the result-edge attachment for streamed output nodes: the
/// ordered queue and the arm this node feeds (see
/// [`PipelineGraph::stream_into`]).
enum ReadyNode {
    SerialBuild {
        input: OperatorBox,
        keys: Vec<Expr>,
    },
    SerialPipeline {
        input: OperatorBox,
        steps: Vec<PipelineStep>,
        out: Option<(Arc<ChunkQueue>, usize)>,
    },
    Pipeline {
        source: PipelineSource,
        steps: Vec<PipelineStep>,
        sink: PipelineSink,
        out: Option<(Arc<ChunkQueue>, usize)>,
    },
}

/// The per-node slice of graph state a node thread owns (the graph itself
/// holds trait objects that are `Send` but not `Sync`, so threads get a
/// cheap clone of what they need instead of a `&PipelineGraph`).
#[derive(Clone)]
struct NodeCtx {
    txn: Arc<Transaction>,
    buffers: Option<Arc<BufferManager>>,
    compression: CompressionLevel,
    sort_budget: usize,
}

impl NodeCtx {
    /// Run one resolved node to completion on `share` workers (called on
    /// the node's own scheduler thread).
    fn run_node(&self, node: ReadyNode, share: usize) -> Result<NodeOutput> {
        match node {
            ReadyNode::SerialBuild { mut input, keys } => {
                let mut build = BuildSide::new(self.compression, self.buffers.clone())?;
                while let Some(chunk) = input.next_chunk()? {
                    if !chunk.is_empty() {
                        build.append_chunk(chunk, &keys)?;
                    }
                }
                Ok(NodeOutput::Build(Arc::new(build)))
            }
            ReadyNode::SerialPipeline { input, steps, out } => {
                let mut op = steps.into_iter().fold(input, |child, step| step.instantiate(child));
                let Some((queue, arm)) = out else {
                    let mut chunks = Vec::new();
                    while let Some(chunk) = op.next_chunk()? {
                        if !chunk.is_empty() {
                            chunks.push(chunk);
                        }
                    }
                    return Ok(NodeOutput::Chunks { chunks, reservations: Vec::new() });
                };
                // Streamed output node: chunks go into the result edge as
                // they are pulled, each a charged single-chunk batch; the
                // same close/abort protocol as a parallel producer.
                let streamed = (|| -> Result<()> {
                    let mut seq = 0usize;
                    while let Some(chunk) = op.next_chunk()? {
                        if chunk.is_empty() {
                            continue;
                        }
                        queue.push_charged(
                            self.buffers.as_ref(),
                            compose_seq(arm, seq),
                            vec![chunk],
                        )?;
                        seq += 1;
                    }
                    Ok(())
                })();
                match &streamed {
                    Ok(()) => queue.close_arm(arm),
                    Err(_) => queue.abort(),
                }
                streamed
                    .map(|()| NodeOutput::Chunks { chunks: Vec::new(), reservations: Vec::new() })
            }
            ReadyNode::Pipeline { source, steps, sink, out } => {
                let mut pipeline =
                    ParallelPipeline::new(source, Arc::clone(&self.txn), steps, sink)
                        .with_buffers(self.buffers.clone())
                        .with_sort_budget(self.sort_budget);
                if let Some((queue, arm)) = out {
                    pipeline = pipeline.with_output_queue(queue, arm);
                }
                match pipeline.execute(share)? {
                    PipelineOutput::Chunks { chunks, reservations } => {
                        Ok(NodeOutput::Chunks { chunks, reservations })
                    }
                    PipelineOutput::JoinBuild { partials, reservations } => {
                        let build = BuildSide::from_partials(
                            partials,
                            self.compression,
                            self.buffers.clone(),
                        )?;
                        // The workers' partial reservations release only
                        // now, after the splice re-accounted the same rows
                        // inside the build side.
                        drop(reservations);
                        Ok(NodeOutput::Build(Arc::new(build)))
                    }
                }
            }
        }
    }
}

/// An executable DAG of parallel pipelines, bound to one query's
/// transaction. Build with [`PipelineGraph::new`] + [`PipelineGraph::add`],
/// then declare the output node(s) with [`PipelineGraph::set_outputs`].
pub struct PipelineGraph {
    nodes: Vec<GraphNode>,
    /// Relative work estimate per node (same index as `nodes`), used to
    /// split each launch round's worker budget proportionally. Nodes added
    /// via [`PipelineGraph::add`] weigh 1; the planner supplies estimated
    /// input rows through [`PipelineGraph::add_weighted`].
    weights: Vec<u64>,
    outputs: Vec<NodeId>,
    txn: Arc<Transaction>,
    threads: usize,
    buffers: Option<Arc<BufferManager>>,
    compression: CompressionLevel,
    sort_budget: usize,
    /// Shared worker fleet: when present, each launch round's share comes
    /// from the fleet's fair split across admitted graphs instead of this
    /// graph's private `threads` budget.
    fleet: Option<Arc<WorkerFleet>>,
    /// Admission slot held while the graph executes (released when
    /// execution finishes — including via abort — by dropping the graph).
    lease: Option<FleetLease>,
    stats: Option<Arc<GraphStats>>,
    /// Result-edge streaming (see [`PipelineGraph::stream_into`]): the
    /// ordered queue the graph's outputs feed instead of materializing.
    stream_queue: Option<Arc<ChunkQueue>>,
    /// Output nodes whose merge/serial drain streams into the result edge
    /// (Collect outputs are rewritten to worker-level `Queue` sinks and
    /// are not listed here).
    stream_arms: Vec<(NodeId, usize)>,
}

impl PipelineGraph {
    pub fn new(txn: Arc<Transaction>, threads: usize) -> Self {
        PipelineGraph {
            nodes: Vec::new(),
            weights: Vec::new(),
            outputs: Vec::new(),
            txn,
            threads: threads.max(1),
            buffers: None,
            compression: CompressionLevel::None,
            sort_budget: usize::MAX,
            fleet: None,
            lease: None,
            stats: None,
            stream_queue: None,
            stream_arms: Vec::new(),
        }
    }

    /// Partition workers through a shared [`WorkerFleet`] instead of this
    /// graph's private thread budget. [`PipelineGraphOp`] acquires the
    /// admission lease; a graph executed directly (tests, the serial
    /// build-side path) reserves its own slot during [`execute`].
    ///
    /// [`execute`]: PipelineGraph::execute
    pub fn with_fleet(mut self, fleet: Option<Arc<WorkerFleet>>) -> Self {
        self.fleet = fleet;
        self
    }

    /// The shared fleet this graph draws workers from, if any.
    pub fn fleet(&self) -> Option<&Arc<WorkerFleet>> {
        self.fleet.as_ref()
    }

    /// Acquire the fleet admission slot (blocking at the gate if the
    /// database is at its admission limit). Idempotent; a no-op without a
    /// fleet. [`PipelineGraphOp`] calls this on the *session's* thread
    /// before spawning the background scheduler, so a query waiting for
    /// admission costs no engine threads and holds no queue a running
    /// graph could block on.
    pub fn admit(&mut self) {
        if self.lease.is_none() {
            if let Some(fleet) = &self.fleet {
                self.lease = Some(fleet.admit());
            }
        }
    }

    /// Record scheduling decisions (launch rounds, peak concurrency) into
    /// `stats` during execution.
    pub fn with_stats(mut self, stats: Arc<GraphStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Account pipeline state (collected chunks, sort runs, aggregate
    /// partials, build sides) against a buffer manager.
    pub fn with_buffers(mut self, buffers: Option<Arc<BufferManager>>) -> Self {
        self.buffers = buffers;
        self
    }

    /// Compression level for materialized build sides (Figure 1's
    /// intermediate compression).
    pub fn with_compression(mut self, compression: CompressionLevel) -> Self {
        self.compression = compression;
        self
    }

    /// Total in-memory budget for sort runs; larger sorts spill to disk.
    pub fn with_sort_budget(mut self, budget: usize) -> Self {
        self.sort_budget = budget;
        self
    }

    /// Append a node; returns its id. Nodes referenced by
    /// [`GraphLink::Probe`] must be appended before their probers —
    /// execution walks in append order.
    pub fn add(&mut self, node: GraphNode) -> NodeId {
        self.add_weighted(node, 1)
    }

    /// Append a node with a relative work estimate (e.g. estimated input
    /// rows). When several nodes launch in the same scheduling round, the
    /// round's worker budget is split proportionally to these weights
    /// instead of evenly, so a small dimension-table build does not pin
    /// workers a concurrent fact-table scan could use.
    pub fn add_weighted(&mut self, node: GraphNode, weight: u64) -> NodeId {
        self.nodes.push(node);
        self.weights.push(weight.max(1));
        self.nodes.len() - 1
    }

    /// Declare which nodes' chunks form the graph's result, concatenated
    /// in order (several nodes = UNION ALL).
    pub fn set_outputs(&mut self, outputs: Vec<NodeId>) {
        self.outputs = outputs;
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of declared output nodes (the arms of the result edge).
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Reroute the graph's result through `queue` instead of materializing
    /// it: output nodes with a `Collect` sink over a table scan become
    /// worker-level [`PipelineSink::Queue`] producers (one gap-free batch
    /// per morsel), every other output node streams its merge/drain output
    /// into the queue chunk by chunk. `queue` must be
    /// [ordered](ChunkQueue::with_ordered) and sized for one producer per
    /// output node; the consumer replays batches in composed-sequence
    /// order ([`PipelineGraphOp`] does exactly that). Call after
    /// [`PipelineGraph::set_outputs`], before execution.
    pub fn stream_into(&mut self, queue: Arc<ChunkQueue>) -> Result<()> {
        for (arm, &id) in self.outputs.clone().iter().enumerate() {
            match &mut self.nodes[id] {
                GraphNode::Pipeline { source: PipelineSource::Table(_), sink, .. }
                    if matches!(sink, PipelineSink::Collect) =>
                {
                    *sink = PipelineSink::Queue { queue: Arc::clone(&queue), arm };
                }
                GraphNode::Pipeline { .. } | GraphNode::SerialPipeline { .. } => {
                    self.stream_arms.push((id, arm));
                }
                GraphNode::SerialBuild { .. } => {
                    return Err(EiderError::Internal(
                        "a join build side cannot be a streamed graph output".into(),
                    ));
                }
            }
        }
        self.stream_queue = Some(queue);
        Ok(())
    }

    /// Column types a node's chain feeds into its sink.
    fn chain_types(&self, id: NodeId) -> Vec<LogicalType> {
        match &self.nodes[id] {
            GraphNode::SerialBuild { input, .. } => {
                input.as_ref().map(|op| op.output_types()).unwrap_or_default()
            }
            GraphNode::Pipeline { source, links, .. } => {
                fold_link_types(source.base_types(), links)
            }
            GraphNode::SerialPipeline { input, links } => {
                let base = input.as_ref().map(|op| op.output_types()).unwrap_or_default();
                fold_link_types(base, links)
            }
        }
    }

    /// Column types of the graph's final output (the output nodes agree on
    /// them by construction — UNION ALL requires it).
    pub fn output_types(&self) -> Vec<LogicalType> {
        let Some(&first) = self.outputs.first() else { return Vec::new() };
        match &self.nodes[first] {
            GraphNode::SerialBuild { .. } => Vec::new(),
            GraphNode::Pipeline { sink, .. } => sink_output_types(sink, || self.chain_types(first)),
            GraphNode::SerialPipeline { .. } => self.chain_types(first),
        }
    }

    /// Nodes a node must wait for: the build side of every probe link.
    /// Queue edges are deliberately absent — a queue consumer co-schedules
    /// with its producers and synchronizes through the queue itself.
    fn node_deps(node: &GraphNode) -> Vec<NodeId> {
        let links = match node {
            GraphNode::Pipeline { links, .. } | GraphNode::SerialPipeline { links, .. } => links,
            GraphNode::SerialBuild { .. } => return Vec::new(),
        };
        links
            .iter()
            .filter_map(|link| match link {
                GraphLink::Probe { build, .. } => Some(*build),
                GraphLink::Step(_) => None,
            })
            .collect()
    }

    /// Every morsel source the graph scans (told to stop dispensing when
    /// the graph fails, so sibling nodes wind down at their next morsel
    /// boundary instead of scanning to completion first).
    fn graph_sources(nodes: &[GraphNode]) -> Vec<Arc<MorselSource>> {
        nodes
            .iter()
            .filter_map(|node| match node {
                GraphNode::Pipeline { source: PipelineSource::Table(src), .. } => {
                    Some(Arc::clone(src))
                }
                _ => None,
            })
            .collect()
    }

    /// Every distinct chunk queue any node produces into or consumes from
    /// (aborted wholesale when the graph fails, so no pipeline blocks on
    /// an edge whose peer will never arrive).
    fn graph_queues(nodes: &[GraphNode]) -> Vec<Arc<ChunkQueue>> {
        let mut queues: Vec<Arc<ChunkQueue>> = Vec::new();
        let mut remember = |q: &Arc<ChunkQueue>| {
            if !queues.iter().any(|known| Arc::ptr_eq(known, q)) {
                queues.push(Arc::clone(q));
            }
        };
        for node in nodes {
            if let GraphNode::Pipeline { source, sink, .. } = node {
                if let PipelineSource::Queue(q) = source {
                    remember(q);
                }
                if let PipelineSink::Queue { queue, .. } = sink {
                    remember(queue);
                }
            }
        }
        queues
    }

    /// Execute the DAG under the readiness scheduler and concatenate the
    /// output nodes' chunks (in output order). Returns the chunks plus the
    /// buffer-manager reservations that keep them accounted until
    /// teardown.
    ///
    /// Scheduling: each round launches *every* node whose probe
    /// dependencies have completed, one scoped thread per node, splitting
    /// the worker fleet proportionally; the scheduler then waits for the
    /// next completion and re-evaluates. On the first failure it aborts
    /// all queues, launches nothing further, and drains in-flight nodes
    /// before surfacing the error.
    pub fn execute(mut self) -> Result<(Vec<DataChunk>, Vec<MemoryReservation>)> {
        // A graph executed without going through `PipelineGraphOp` (tests,
        // inline build sides) still takes its admission slot; the lease
        // drops with `self` when execution finishes either way.
        self.admit();
        let fleet = self.fleet.clone();
        let nodes = std::mem::take(&mut self.nodes);
        let weights = std::mem::take(&mut self.weights);
        let n = nodes.len();
        let deps: Vec<Vec<NodeId>> = nodes.iter().map(Self::node_deps).collect();
        let mut queues = Self::graph_queues(&nodes);
        let stream_queue = self.stream_queue.clone();
        let stream_arms = std::mem::take(&mut self.stream_arms);
        if let Some(q) = &stream_queue {
            // Merge-streamed output nodes reference the result edge outside
            // their sinks; it must still abort with the rest of the graph.
            if !queues.iter().any(|known| Arc::ptr_eq(known, q)) {
                queues.push(Arc::clone(q));
            }
        }
        let sources = Self::graph_sources(&nodes);
        // Failure anywhere stops the whole graph promptly: queues wake
        // their blocked peers, morsel dispensers stop handing out work.
        let abort_graph = || {
            for q in &queues {
                q.abort();
            }
            for src in &sources {
                src.abort();
            }
        };
        let mut slots: Vec<Option<GraphNode>> = nodes.into_iter().map(Some).collect();
        let mut results: Vec<NodeOutput> = (0..n).map(|_| NodeOutput::Taken).collect();
        let mut done = vec![false; n];
        let mut first_error: Option<EiderError> = None;
        let ctx = NodeCtx {
            txn: Arc::clone(&self.txn),
            buffers: self.buffers.clone(),
            compression: self.compression,
            sort_budget: self.sort_budget,
        };
        let stats = self.stats.clone();
        let threads = self.threads;
        // A panicking node must not strand the scheduler: its payload is
        // parked here and re-raised only after every in-flight node has
        // wound down (queues aborted so none blocks forever).
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            type NodeVerdict = std::thread::Result<Result<NodeOutput>>;
            let (tx, rx) = std::sync::mpsc::channel::<(NodeId, NodeVerdict)>();
            let mut running = 0usize;
            loop {
                // Launch every node whose dependencies are satisfied; skip
                // straight to draining once something failed.
                let mut round = Vec::new();
                if first_error.is_none() {
                    for id in 0..n {
                        if slots[id].is_some() && deps[id].iter().all(|&d| done[d]) {
                            round.push(id);
                        }
                    }
                }
                if !round.is_empty() {
                    let mut launchable = Vec::with_capacity(round.len());
                    for id in round.drain(..) {
                        let node = slots[id].take().expect("launch picked a live node");
                        let out = stream_arms
                            .iter()
                            .find(|(nid, _)| *nid == id)
                            .and_then(|&(_, arm)| stream_queue.clone().map(|q| (q, arm)));
                        match Self::prepare(node, &results, out) {
                            Ok(ready) => launchable.push((id, ready)),
                            Err(e) => {
                                done[id] = true;
                                if first_error.is_none() {
                                    first_error = Some(e);
                                }
                                abort_graph();
                            }
                        }
                    }
                    if let Some(stats) = &stats {
                        let ids: Vec<NodeId> = launchable.iter().map(|(id, _)| *id).collect();
                        if !ids.is_empty() {
                            stats.record_launch(&ids);
                        }
                    }
                    // Split the fleet across everything in flight; morsel
                    // stealing rebalances skew inside each node. With a
                    // shared fleet the split is database-wide — re-read
                    // every round, so workers migrate between graphs at
                    // launch-round granularity as siblings come and go.
                    let in_flight = (running + launchable.len()).max(1);
                    let share = match &fleet {
                        Some(f) => f.node_share(in_flight).min(threads.max(1)),
                        None => (threads / in_flight).max(1),
                    };
                    // The round's budget splits proportionally to the
                    // planner's estimated input rows, not evenly: launching
                    // a 50-row dimension build beside a million-row scan
                    // should not halve the scan's workers. Equal weights
                    // (the `add` default) reproduce the even split.
                    let round_pool = share.saturating_mul(launchable.len());
                    let round_weight: u64 = launchable
                        .iter()
                        .map(|&(id, _)| weights.get(id).copied().unwrap_or(1))
                        .sum();
                    let node_share = |id: NodeId| -> usize {
                        let w = weights.get(id).copied().unwrap_or(1);
                        let exact = (round_pool as u64).saturating_mul(w) / round_weight.max(1);
                        (exact as usize).clamp(1, threads.max(1))
                    };
                    // Inline fast path: a lone ready node with nothing in
                    // flight cannot overlap with anything — run it on the
                    // scheduler thread. Sequential DAGs (build → probe, the
                    // most common shape) thus keep the pre-concurrency
                    // executor's zero thread-handoff overhead, and a panic
                    // propagates directly (nothing else is running that a
                    // drain would have to wake).
                    if running == 0 && launchable.len() == 1 {
                        let (id, ready) = launchable.pop().expect("checked");
                        done[id] = true;
                        if let Some(stats) = &stats {
                            stats.record_share(id, share);
                        }
                        let outcome = ctx.run_node(ready, share);
                        if let Some(stats) = &stats {
                            stats.record_finish();
                        }
                        match outcome {
                            Ok(output) => results[id] = output,
                            Err(e) => {
                                if first_error.is_none() {
                                    first_error = Some(e);
                                }
                                abort_graph();
                            }
                        }
                        continue;
                    }
                    for (id, ready) in launchable {
                        running += 1;
                        let share = node_share(id);
                        if let Some(stats) = &stats {
                            stats.record_share(id, share);
                        }
                        let tx = tx.clone();
                        let ctx = ctx.clone();
                        let stats = stats.clone();
                        scope.spawn(move || {
                            // Catch panics so the completion message is
                            // always sent — an unwinding node thread must
                            // not leave the scheduler blocked in recv()
                            // (the panic is re-raised after the drain).
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    ctx.run_node(ready, share)
                                }));
                            if let Some(stats) = &stats {
                                stats.record_finish();
                            }
                            // The scheduler outlives every node thread; a
                            // send can only fail if the scope is unwinding.
                            let _ = tx.send((id, out));
                        });
                    }
                    continue; // a launch may have failed: recompute
                }
                if running == 0 {
                    break;
                }
                let (id, result) = rx.recv().expect("node completion channel");
                running -= 1;
                done[id] = true;
                match result {
                    Ok(Ok(output)) => results[id] = output,
                    Ok(Err(e)) => {
                        // Keep the root cause: a co-scheduled sibling's
                        // "queue aborted" echo must not shadow the real
                        // error, whichever order they arrive in.
                        let replace = match &first_error {
                            None => true,
                            Some(cur) => is_queue_abort(cur) && !is_queue_abort(&e),
                        };
                        if replace {
                            first_error = Some(e);
                        }
                        abort_graph();
                    }
                    Err(payload) => {
                        if panic_payload.is_none() {
                            panic_payload = Some(payload);
                        }
                        if first_error.is_none() {
                            first_error =
                                Some(EiderError::Internal("pipeline node panicked".into()));
                        }
                        abort_graph();
                    }
                }
            }
        });
        if let Some(payload) = panic_payload {
            // Invariant violations surface as panics, exactly as they did
            // when nodes ran on the calling thread.
            std::panic::resume_unwind(payload);
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        let mut chunks = Vec::new();
        let mut reservations = Vec::new();
        for &id in &self.outputs {
            match std::mem::replace(&mut results[id], NodeOutput::Taken) {
                NodeOutput::Chunks { chunks: c, reservations: r } => {
                    chunks.extend(c);
                    reservations.extend(r);
                }
                _ => {
                    return Err(EiderError::Internal(
                        "pipeline-DAG output node did not produce chunks".into(),
                    ))
                }
            }
        }
        Ok((chunks, reservations))
    }

    /// Resolve a launchable node's probe links against completed builds,
    /// producing the owned state its thread runs with. `out` attaches the
    /// result edge for streamed output nodes.
    fn prepare(
        node: GraphNode,
        results: &[NodeOutput],
        out: Option<(Arc<ChunkQueue>, usize)>,
    ) -> Result<ReadyNode> {
        Ok(match node {
            GraphNode::SerialBuild { input, keys } => ReadyNode::SerialBuild {
                input: input.ok_or_else(|| {
                    EiderError::Internal("serial build node executed twice".into())
                })?,
                keys,
            },
            GraphNode::SerialPipeline { input, links } => ReadyNode::SerialPipeline {
                input: input.ok_or_else(|| {
                    EiderError::Internal("serial pipeline node executed twice".into())
                })?,
                steps: Self::resolve_links(links, results)?,
                out,
            },
            GraphNode::Pipeline { source, links, sink } => ReadyNode::Pipeline {
                source,
                steps: Self::resolve_links(links, results)?,
                sink,
                out,
            },
        })
    }

    /// Resolve probe links against already-executed build nodes.
    fn resolve_links(links: Vec<GraphLink>, results: &[NodeOutput]) -> Result<Vec<PipelineStep>> {
        links
            .into_iter()
            .map(|link| match link {
                GraphLink::Step(step) => Ok(step),
                GraphLink::Probe { build, left_keys, join_type, right_types } => {
                    match results.get(build) {
                        Some(NodeOutput::Build(b)) => Ok(PipelineStep::JoinProbe {
                            build: Arc::clone(b),
                            left_keys,
                            join_type,
                            right_types,
                        }),
                        _ => Err(EiderError::Internal(
                            "probe link references a node that produced no build side \
                             (planner emitted nodes out of dependency order?)"
                                .into(),
                        )),
                    }
                }
            })
            .collect()
    }
}

/// Consumer half of a running streamed graph: the readiness scheduler
/// executes on a dedicated background thread, its output nodes push
/// batches into an ordered [`ChunkQueue`], and this side replays them in
/// composed-sequence order — "arm 0's batches in sequence, then arm 1's"
/// — so the stream is row-identical to the old materialized concatenation
/// at every worker count. Batches that arrive ahead of their turn wait in
/// a reorder buffer; they keep their buffer-manager reservations (the §4
/// charge) until activated for emission, at which point the charge moves
/// to the cursor holding the chunk. The buffer is *bounded*: within an
/// arm, workers claim morsels in dispense order (≈ one out-of-order batch
/// per worker), and across arms the queue's per-arm quota blocks a
/// not-yet-active arm's producers once `max_bytes` of its pushes sit
/// unconsumed ([`ChunkQueue::batch_consumed`] frees quota as batches
/// activate) — a fast later UNION arm cannot pile its whole result here
/// while an earlier arm is still streaming.
struct ResultStream {
    queue: Arc<ChunkQueue>,
    /// The scheduler thread; joined on completion (errors and panics
    /// surface there) or on drop (after aborting the queue).
    handle: Option<std::thread::JoinHandle<Result<()>>>,
    /// Batches that arrived ahead of their turn, keyed by composed seq.
    held: BTreeMap<usize, QueueBatch>,
    /// Chunks of the batch currently being replayed.
    pending: VecDeque<DataChunk>,
    arm: usize,
    arms: usize,
    next_seq: usize,
    /// The queue reported end-of-stream: every producer closed and the
    /// backlog drained, or the graph aborted.
    drained: bool,
}

/// A [`PhysicalOperator`] facade over a pipeline DAG. The DAG no longer
/// materializes its result: on the first pull the graph is rerouted
/// through an ordered result [`ChunkQueue`]
/// ([`PipelineGraph::stream_into`]) and executed on a background thread;
/// each subsequent pull replays the next in-order chunk, so a slow
/// consumer back-pressures the workers through the queue's byte bound
/// instead of the engine buffering the whole result set. Dropping the
/// operator mid-stream aborts the queue and joins the scheduler thread —
/// an abandoned cursor cancels its query.
pub struct PipelineGraphOp {
    graph: Option<PipelineGraph>,
    out_types: Vec<LogicalType>,
    stream: Option<ResultStream>,
    done: bool,
}

impl PipelineGraphOp {
    pub fn new(graph: PipelineGraph) -> Self {
        PipelineGraphOp {
            out_types: graph.output_types(),
            graph: Some(graph),
            stream: None,
            done: false,
        }
    }

    /// Reroute the graph through a fresh ordered result queue and launch
    /// the scheduler on its own thread.
    fn start(&mut self) -> Result<()> {
        let mut graph = self
            .graph
            .take()
            .ok_or_else(|| EiderError::Internal("pipeline DAG executed twice".into()))?;
        let arms = graph.output_count();
        // The same byte bound as inter-node queue edges: a slice of the
        // memory budget, big enough to decouple producer and consumer,
        // small enough that the backlog cannot crowd out operator state.
        let queue_bytes = graph
            .buffers
            .as_ref()
            .map(|b| (b.memory_limit() / 8).clamp(1 << 16, 4 << 20))
            .unwrap_or(4 << 20);
        let queue =
            Arc::new(ChunkQueue::new(self.out_types.clone(), arms, queue_bytes).with_ordered());
        graph.stream_into(Arc::clone(&queue))?;
        // Admission happens here, on the consumer's own thread, *before*
        // the background scheduler exists: a query blocked at the fleet
        // gate holds no engine thread and owns no queue a peer could be
        // waiting on, so the gate can never deadlock the fleet.
        graph.admit();
        let handle = std::thread::Builder::new()
            .name("eider-graph".into())
            .spawn(move || graph.execute().map(|_| ()))
            .map_err(|e| EiderError::Internal(format!("failed to spawn graph thread: {e}")))?;
        self.stream = Some(ResultStream {
            queue,
            handle: Some(handle),
            held: BTreeMap::new(),
            pending: VecDeque::new(),
            arm: 0,
            arms,
            next_seq: 0,
            drained: false,
        });
        Ok(())
    }

    /// Reap the scheduler thread: its error is the query's root cause, and
    /// a panic re-raises on the consumer thread exactly as it did when the
    /// graph ran inline.
    fn join_scheduler(&mut self) -> Result<()> {
        let Some(handle) = self.stream.as_mut().and_then(|s| s.handle.take()) else {
            return Ok(());
        };
        match handle.join() {
            Ok(result) => result,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

impl Drop for PipelineGraphOp {
    fn drop(&mut self) {
        if let Some(stream) = &mut self.stream {
            if let Some(handle) = stream.handle.take() {
                // Cancel the query: the abort fails blocked producers fast
                // and the scheduler drains; joining bounds the query's
                // threads to the operator's lifetime. Errors (and panic
                // payloads) are dropped — nothing re-raises from a
                // destructor.
                stream.queue.abort();
                let _ = handle.join();
            }
        }
    }
}

impl PhysicalOperator for PipelineGraphOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.done {
            return Ok(None);
        }
        if self.stream.is_none() {
            self.start()?;
        }
        loop {
            let stream = self.stream.as_mut().expect("stream started");
            if let Some(chunk) = stream.pending.pop_front() {
                return Ok(Some(chunk));
            }
            if stream.arm >= stream.arms {
                // Every arm replayed; reap the scheduler so its error or
                // panic cannot be lost (and the thread never outlives the
                // stream).
                self.done = true;
                return self.join_scheduler().map(|()| None);
            }
            let key = compose_seq(stream.arm, stream.next_seq);
            if let Some(batch) = stream.held.remove(&key) {
                // Activating the batch drops its queue-side reservation
                // and frees its share of the arm's reorder-buffer quota;
                // the chunks are handed onward and the consumer's cursor
                // charges them from here.
                stream.queue.batch_consumed(stream.arm, batch.bytes());
                stream.next_seq += 1;
                stream.pending.extend(batch.chunks);
                continue;
            }
            if let Some(total) = stream.queue.arm_batches(stream.arm) {
                if stream.next_seq >= total {
                    stream.arm += 1;
                    stream.next_seq = 0;
                    // Unpark the new active arm's producers (they may be
                    // waiting behind the per-arm quota).
                    stream.queue.set_active_arm(stream.arm);
                    continue;
                }
            }
            if stream.drained {
                // The expected batch can never arrive: the graph failed
                // (abort discards queued batches). Surface the scheduler's
                // root-cause error.
                self.done = true;
                self.join_scheduler()?;
                return Err(EiderError::Internal(
                    "result stream ended before every batch arrived".into(),
                ));
            }
            match stream.queue.pop_ordered(stream.arm) {
                OrderedPop::Batch(batch) => {
                    stream.held.insert(batch.seq, batch);
                }
                OrderedPop::Done => stream.drained = true,
                OrderedPop::ArmClosed => {
                    // The current arm closed with an empty backlog: every
                    // one of its batches is in `held` or already replayed,
                    // so the next iteration advances via `held` or the
                    // arm-total check. If the expected batch is genuinely
                    // absent the graph lost it — fail instead of spinning.
                    let total = stream.queue.arm_batches(stream.arm).unwrap_or(0);
                    if stream.next_seq < total && !stream.held.contains_key(&key) {
                        self.done = true;
                        self.join_scheduler()?;
                        return Err(EiderError::Internal(
                            "result stream lost a batch of a closed arm".into(),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::Expr;
    use crate::ops::sort::SortKey;
    use crate::ops::{drain_rows, FilterOp, HashJoinOp, TableScanOp};
    use crate::parallel::morsel::MorselSource;
    use eider_txn::{CmpOp, DataTable, ScanOptions, TableFilter, TransactionManager};
    use eider_vector::{Value, VECTOR_SIZE};

    const ROWS: i32 = 30_000;

    /// (i, i % 100) — the second column joins 1:300 against a small build.
    fn fixture() -> (Arc<TransactionManager>, Arc<DataTable>) {
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer, LogicalType::Integer]);
        let setup = mgr.begin();
        let rows: Vec<Vec<Value>> =
            (0..ROWS).map(|i| vec![Value::Integer(i), Value::Integer(i % 100)]).collect();
        table
            .append_chunk(
                &setup,
                &DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows)
                    .unwrap(),
            )
            .unwrap();
        setup.commit().unwrap();
        (mgr, table)
    }

    fn probe_opts() -> ScanOptions {
        ScanOptions { columns: vec![0, 1], filters: vec![], emit_row_ids: false }
    }

    fn build_scan(table: &Arc<DataTable>, txn: &Arc<Transaction>) -> OperatorBox {
        // Build side: rows with id < 100 (one per key value).
        Box::new(TableScanOp::new(
            Arc::clone(table),
            Arc::clone(txn),
            ScanOptions {
                columns: vec![0, 1],
                filters: vec![TableFilter::new(0, CmpOp::Lt, Value::Integer(100))],
                emit_row_ids: false,
            },
        ))
    }

    fn join_key() -> Vec<Expr> {
        vec![Expr::column(1, LogicalType::Integer)]
    }

    fn serial_join_rows(table: &Arc<DataTable>, txn: &Arc<Transaction>) -> Vec<Vec<Value>> {
        let probe: OperatorBox =
            Box::new(TableScanOp::new(Arc::clone(table), Arc::clone(txn), probe_opts()));
        let mut op = HashJoinOp::new(
            probe,
            build_scan(table, txn),
            join_key(),
            join_key(),
            JoinType::Inner,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        drain_rows(&mut op).unwrap()
    }

    fn probe_graph(
        table: &Arc<DataTable>,
        txn: &Arc<Transaction>,
        threads: usize,
        parallel_build: bool,
    ) -> PipelineGraph {
        let mut graph = PipelineGraph::new(Arc::clone(txn), threads);
        let build = if parallel_build {
            let source =
                Arc::new(MorselSource::new(Arc::clone(table), txn, probe_opts(), VECTOR_SIZE));
            graph.add(GraphNode::Pipeline {
                source: source.into(),
                links: vec![GraphLink::Step(PipelineStep::Filter(Expr::Compare {
                    op: CmpOp::Lt,
                    left: Box::new(Expr::column(0, LogicalType::Integer)),
                    right: Box::new(Expr::constant(Value::Integer(100))),
                }))],
                sink: PipelineSink::JoinBuild { keys: join_key() },
            })
        } else {
            graph.add(GraphNode::SerialBuild {
                input: Some(build_scan(table, txn)),
                keys: join_key(),
            })
        };
        let source =
            Arc::new(MorselSource::new(Arc::clone(table), txn, probe_opts(), VECTOR_SIZE * 2));
        let probe = graph.add(GraphNode::Pipeline {
            source: source.into(),
            links: vec![GraphLink::Probe {
                build,
                left_keys: join_key(),
                join_type: JoinType::Inner,
                right_types: vec![LogicalType::Integer, LogicalType::Integer],
            }],
            sink: PipelineSink::Collect,
        });
        graph.set_outputs(vec![probe]);
        graph
    }

    #[test]
    fn serial_build_feeds_parallel_probe() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let serial = serial_join_rows(&table, &txn);
        assert_eq!(serial.len(), ROWS as usize);
        for threads in [1, 2, 3, 8] {
            let graph = probe_graph(&table, &txn, threads, false);
            assert_eq!(graph.output_types().len(), 4);
            let (chunks, _res) = graph.execute().unwrap();
            let rows: Vec<Vec<Value>> = chunks.iter().flat_map(DataChunk::to_rows).collect();
            assert_eq!(rows, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_pipeline_hands_build_side_to_probe_pipeline() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let serial = serial_join_rows(&table, &txn);
        for threads in [1, 2, 8] {
            let graph = probe_graph(&table, &txn, threads, true);
            let (chunks, _res) = graph.execute().unwrap();
            let rows: Vec<Vec<Value>> = chunks.iter().flat_map(DataChunk::to_rows).collect();
            assert_eq!(rows, serial, "threads={threads}");
        }
    }

    #[test]
    fn weighted_nodes_split_the_round_budget_by_estimated_rows() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let arm = |cmp: CmpOp, bound: i32| ScanOptions {
            columns: vec![0, 1],
            filters: vec![TableFilter::new(0, cmp, Value::Integer(bound))],
            emit_row_ids: false,
        };
        // Two independent scans launch in the same round; the one weighted
        // like a fact table should receive nearly the whole budget while
        // the dimension-sized one still gets its guaranteed worker.
        let mut graph = PipelineGraph::new(Arc::clone(&txn), 8);
        let heavy = graph.add_weighted(
            GraphNode::Pipeline {
                source: PipelineSource::Table(Arc::new(MorselSource::new(
                    Arc::clone(&table),
                    &txn,
                    arm(CmpOp::GtEq, 100),
                    VECTOR_SIZE,
                ))),
                links: vec![],
                sink: PipelineSink::Collect,
            },
            ROWS as u64,
        );
        let light = graph.add_weighted(
            GraphNode::Pipeline {
                source: PipelineSource::Table(Arc::new(MorselSource::new(
                    Arc::clone(&table),
                    &txn,
                    arm(CmpOp::Lt, 100),
                    VECTOR_SIZE,
                ))),
                links: vec![],
                sink: PipelineSink::Collect,
            },
            100,
        );
        graph.set_outputs(vec![heavy, light]);
        let stats = GraphStats::new();
        let graph = graph.with_stats(Arc::clone(&stats));
        let (chunks, _res) = graph.execute().unwrap();
        let rows: usize = chunks.iter().map(DataChunk::len).sum();
        assert_eq!(rows, ROWS as usize);
        let shares = stats.node_shares();
        let share_of = |id: NodeId| {
            shares.iter().find(|(n, _)| *n == id).map(|&(_, s)| s).expect("node launched")
        };
        assert!(
            share_of(heavy) > share_of(light),
            "fact-sized node should out-rank the dimension-sized one: {shares:?}"
        );
        assert_eq!(share_of(light), 1, "light node keeps its guaranteed worker: {shares:?}");
    }

    #[test]
    fn union_all_concatenates_output_nodes_in_order() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let arm = |cmp: CmpOp, bound: i32| ScanOptions {
            columns: vec![0, 1],
            filters: vec![TableFilter::new(0, cmp, Value::Integer(bound))],
            emit_row_ids: false,
        };
        let serial: Vec<Vec<Value>> = {
            let mut low: OperatorBox = Box::new(TableScanOp::new(
                Arc::clone(&table),
                Arc::clone(&txn),
                arm(CmpOp::Lt, 5_000),
            ));
            let mut high: OperatorBox = Box::new(TableScanOp::new(
                Arc::clone(&table),
                Arc::clone(&txn),
                arm(CmpOp::GtEq, 25_000),
            ));
            let mut rows = drain_rows(low.as_mut()).unwrap();
            rows.extend(drain_rows(high.as_mut()).unwrap());
            rows
        };
        for threads in [1, 2, 8] {
            let mut graph = PipelineGraph::new(Arc::clone(&txn), threads);
            let low = graph.add(GraphNode::Pipeline {
                source: PipelineSource::Table(Arc::new(MorselSource::new(
                    Arc::clone(&table),
                    &txn,
                    arm(CmpOp::Lt, 5_000),
                    VECTOR_SIZE,
                ))),
                links: vec![],
                sink: PipelineSink::Collect,
            });
            let high = graph.add(GraphNode::Pipeline {
                source: PipelineSource::Table(Arc::new(MorselSource::new(
                    Arc::clone(&table),
                    &txn,
                    arm(CmpOp::GtEq, 25_000),
                    VECTOR_SIZE,
                ))),
                links: vec![],
                sink: PipelineSink::Collect,
            });
            graph.set_outputs(vec![low, high]);
            let (chunks, _res) = graph.execute().unwrap();
            let rows: Vec<Vec<Value>> = chunks.iter().flat_map(DataChunk::to_rows).collect();
            assert_eq!(rows, serial, "threads={threads}");
        }
    }

    #[test]
    fn probe_chain_feeds_sort_sink_with_limit() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        // TopN over the join output: ORDER BY id DESC LIMIT 7 OFFSET 2.
        let mut serial = serial_join_rows(&table, &txn);
        serial.sort_by(|a, b| b[0].total_cmp(&a[0]));
        let expected: Vec<Vec<Value>> = serial[2..9].to_vec();
        for threads in [1, 2, 8] {
            let mut graph = PipelineGraph::new(Arc::clone(&txn), threads);
            let build = graph.add(GraphNode::SerialBuild {
                input: Some(build_scan(&table, &txn)),
                keys: join_key(),
            });
            let probe = graph.add(GraphNode::Pipeline {
                source: PipelineSource::Table(Arc::new(MorselSource::new(
                    Arc::clone(&table),
                    &txn,
                    probe_opts(),
                    VECTOR_SIZE * 2,
                ))),
                links: vec![GraphLink::Probe {
                    build,
                    left_keys: join_key(),
                    join_type: JoinType::Inner,
                    right_types: vec![LogicalType::Integer, LogicalType::Integer],
                }],
                sink: PipelineSink::Sort {
                    keys: vec![SortKey::desc(Expr::column(0, LogicalType::Integer))],
                    limit: Some((7, 2)),
                },
            });
            graph.set_outputs(vec![probe]);
            let (chunks, _res) = graph.execute().unwrap();
            let rows: Vec<Vec<Value>> = chunks.iter().flat_map(DataChunk::to_rows).collect();
            assert_eq!(rows, expected, "threads={threads}");
        }
    }

    #[test]
    fn probe_link_against_non_build_node_errors() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let mut graph = PipelineGraph::new(Arc::clone(&txn), 2);
        // Node 0 collects chunks — probing it must fail, not panic.
        let collect = graph.add(GraphNode::Pipeline {
            source: PipelineSource::Table(Arc::new(MorselSource::new(
                Arc::clone(&table),
                &txn,
                probe_opts(),
                VECTOR_SIZE,
            ))),
            links: vec![],
            sink: PipelineSink::Collect,
        });
        let probe = graph.add(GraphNode::Pipeline {
            source: PipelineSource::Table(Arc::new(MorselSource::new(
                Arc::clone(&table),
                &txn,
                probe_opts(),
                VECTOR_SIZE,
            ))),
            links: vec![GraphLink::Probe {
                build: collect,
                left_keys: join_key(),
                join_type: JoinType::Inner,
                right_types: vec![LogicalType::Integer, LogicalType::Integer],
            }],
            sink: PipelineSink::Collect,
        });
        graph.set_outputs(vec![probe]);
        let err = graph.execute().unwrap_err();
        assert!(err.to_string().contains("no build side"), "{err}");
    }

    #[test]
    fn graph_op_streams_chunks_and_runs_once() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let graph = probe_graph(&table, &txn, 4, false);
        let types = graph.output_types();
        let mut op = PipelineGraphOp::new(graph);
        assert_eq!(op.output_types(), types);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), ROWS as usize);
        // Exhausted: further pulls keep returning None, not re-executing.
        assert!(op.next_chunk().unwrap().is_none());
    }

    #[test]
    fn concurrent_graphs_share_a_fleet_and_stay_deterministic() {
        // Two whole DAGs racing on one fleet: each computes the same join,
        // each must return exactly the serial rows — fair-share splitting
        // must never change *what* a graph produces, only how fast.
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let serial = serial_join_rows(&table, &txn);
        let fleet = WorkerFleet::new(4);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let graph =
                        probe_graph(&table, &txn, 4, true).with_fleet(Some(Arc::clone(&fleet)));
                    scope.spawn(move || {
                        let (chunks, _res) = graph.execute().unwrap();
                        chunks.iter().flat_map(DataChunk::to_rows).collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), serial);
            }
        });
        assert_eq!(fleet.active(), 0, "every lease released");
    }

    #[test]
    fn streamed_graph_waits_at_the_admission_gate() {
        // Fixed interleaving for the admission handoff: a lease held by a
        // stand-in long-running query keeps a capacity-1 fleet full; the
        // streamed graph must observably block at the gate (on the
        // consumer's thread, before its scheduler spawns) and complete
        // with correct results once the slot frees.
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let serial = serial_join_rows(&table, &txn);
        let fleet = WorkerFleet::with_cap(4, 1);
        let occupant = fleet.admit();
        let (tx, rx) = std::sync::mpsc::channel();
        let puller = {
            let graph = probe_graph(&table, &txn, 4, false).with_fleet(Some(Arc::clone(&fleet)));
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut op = PipelineGraphOp::new(graph);
                tx.send("pulling").unwrap();
                let rows = drain_rows(&mut op).unwrap();
                tx.send("done").unwrap();
                rows
            })
        };
        assert_eq!(rx.recv().unwrap(), "pulling");
        assert!(
            rx.recv_timeout(std::time::Duration::from_millis(100)).is_err(),
            "query ran while the admission gate was full"
        );
        drop(occupant);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            "done",
            "released slot admits the waiting query"
        );
        assert_eq!(puller.join().unwrap(), serial);
        assert_eq!(fleet.active(), 0);
    }

    #[test]
    fn filter_op_composes_with_serial_build() {
        // Regression guard: a SerialBuild node over a filtered serial chain
        // (FilterOp, not a pushed-down TableFilter) must work identically.
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let filtered: OperatorBox = Box::new(FilterOp::new(
            Box::new(TableScanOp::new(Arc::clone(&table), Arc::clone(&txn), probe_opts())),
            Expr::Compare {
                op: CmpOp::Lt,
                left: Box::new(Expr::column(0, LogicalType::Integer)),
                right: Box::new(Expr::constant(Value::Integer(100))),
            },
        ));
        let mut graph = PipelineGraph::new(Arc::clone(&txn), 4);
        let build = graph.add(GraphNode::SerialBuild { input: Some(filtered), keys: join_key() });
        let probe = graph.add(GraphNode::Pipeline {
            source: PipelineSource::Table(Arc::new(MorselSource::new(
                Arc::clone(&table),
                &txn,
                probe_opts(),
                VECTOR_SIZE * 2,
            ))),
            links: vec![GraphLink::Probe {
                build,
                left_keys: join_key(),
                join_type: JoinType::Inner,
                right_types: vec![LogicalType::Integer, LogicalType::Integer],
            }],
            sink: PipelineSink::Collect,
        });
        graph.set_outputs(vec![probe]);
        let (chunks, _res) = graph.execute().unwrap();
        let n: usize = chunks.iter().map(DataChunk::len).sum();
        assert_eq!(n, ROWS as usize);
    }

    /// A `(arm, morsel)`-composed scan over half the fixture table.
    fn half_scan(low_half: bool) -> ScanOptions {
        let (cmp, bound) = if low_half { (CmpOp::Lt, 15_000) } else { (CmpOp::GtEq, 15_000) };
        ScanOptions {
            columns: vec![0, 1],
            filters: vec![TableFilter::new(0, cmp, Value::Integer(bound))],
            emit_row_ids: false,
        }
    }

    /// Aggregate sink shared by the queue tests: GROUP BY col1 with
    /// integer aggregates (exact at every thread count).
    fn union_agg_sink() -> PipelineSink {
        PipelineSink::HashAggregate {
            groups: vec![Expr::column(1, LogicalType::Integer)],
            aggs: vec![
                crate::ops::agg::AggExpr {
                    kind: crate::aggregate::AggKind::CountStar,
                    arg: None,
                    distinct: false,
                },
                crate::ops::agg::AggExpr {
                    kind: crate::aggregate::AggKind::Sum,
                    arg: Some(Expr::column(0, LogicalType::Integer)),
                    distinct: false,
                },
            ],
        }
    }

    /// Build the union-under-aggregate DAG: two scan arms streaming into a
    /// shared chunk queue, consumed by an aggregate pipeline that runs
    /// concurrently with them.
    fn union_agg_graph(
        table: &Arc<DataTable>,
        txn: &Arc<Transaction>,
        threads: usize,
        buffers: Option<Arc<eider_storage::buffer::BufferManager>>,
    ) -> (PipelineGraph, Arc<ChunkQueue>, Arc<GraphStats>) {
        let stats = GraphStats::new();
        let mut graph = PipelineGraph::new(Arc::clone(txn), threads)
            .with_buffers(buffers)
            .with_stats(Arc::clone(&stats));
        let queue =
            Arc::new(ChunkQueue::new(vec![LogicalType::Integer, LogicalType::Integer], 2, 1 << 18));
        for (arm, low_half) in [true, false].into_iter().enumerate() {
            graph.add(GraphNode::Pipeline {
                source: PipelineSource::Table(Arc::new(MorselSource::new(
                    Arc::clone(table),
                    txn,
                    half_scan(low_half),
                    VECTOR_SIZE,
                ))),
                links: vec![],
                sink: PipelineSink::Queue { queue: Arc::clone(&queue), arm },
            });
        }
        let consumer = graph.add(GraphNode::Pipeline {
            source: PipelineSource::Queue(Arc::clone(&queue)),
            links: vec![],
            sink: union_agg_sink(),
        });
        graph.set_outputs(vec![consumer]);
        (graph, queue, stats)
    }

    /// Serial reference for the union-under-aggregate shape: the two arms
    /// cover the whole table, so a plain serial aggregate over a full scan
    /// is the ground truth (sorted into the parallel key order).
    fn union_agg_reference(table: &Arc<DataTable>, txn: &Arc<Transaction>) -> Vec<Vec<Value>> {
        let PipelineSink::HashAggregate { groups, aggs } = union_agg_sink() else { unreachable!() };
        let mut op = crate::ops::HashAggregateOp::new(
            Box::new(TableScanOp::new(Arc::clone(table), Arc::clone(txn), probe_opts())),
            groups,
            aggs,
            None,
        );
        let mut rows = drain_rows(&mut op).unwrap();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        rows
    }

    #[test]
    fn independent_join_builds_launch_concurrently() {
        // Two JoinBuild pipelines with no edges between them must share
        // the first scheduling round; the probe that needs both launches
        // only after they complete.
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let stats = GraphStats::new();
        let mut graph = PipelineGraph::new(Arc::clone(&txn), 4).with_stats(Arc::clone(&stats));
        let build_arm = |cmp: CmpOp, bound: i32| GraphNode::Pipeline {
            source: PipelineSource::Table(Arc::new(MorselSource::new(
                Arc::clone(&table),
                &txn,
                ScanOptions {
                    columns: vec![0, 1],
                    filters: vec![TableFilter::new(0, cmp, Value::Integer(bound))],
                    emit_row_ids: false,
                },
                VECTOR_SIZE,
            ))),
            links: vec![],
            sink: PipelineSink::JoinBuild { keys: join_key() },
        };
        let b1 = graph.add(build_arm(CmpOp::Lt, 100));
        let b2 = graph.add(build_arm(CmpOp::Lt, 100));
        let probe_link = |build: NodeId| GraphLink::Probe {
            build,
            left_keys: join_key(),
            join_type: JoinType::Inner,
            right_types: vec![LogicalType::Integer, LogicalType::Integer],
        };
        let probe = graph.add(GraphNode::Pipeline {
            source: PipelineSource::Table(Arc::new(MorselSource::new(
                Arc::clone(&table),
                &txn,
                probe_opts(),
                VECTOR_SIZE * 2,
            ))),
            links: vec![probe_link(b1), probe_link(b2)],
            sink: PipelineSink::Collect,
        });
        graph.set_outputs(vec![probe]);
        let (chunks, _res) = graph.execute().unwrap();
        // Both builds have one row per key, so the double probe keeps the
        // row count and widens to 6 columns.
        let n: usize = chunks.iter().map(DataChunk::len).sum();
        assert_eq!(n, ROWS as usize);
        assert_eq!(chunks[0].column_count(), 6);
        let rounds = stats.launch_rounds();
        assert!(
            rounds[0].contains(&b1) && rounds[0].contains(&b2),
            "independent builds must launch in the same round: {rounds:?}"
        );
        assert!(
            !rounds[0].contains(&probe),
            "the probe depends on both builds and cannot launch with them: {rounds:?}"
        );
        assert!(stats.max_concurrent() >= 2, "builds must overlap");
    }

    #[test]
    fn union_under_aggregate_streams_through_chunk_queue() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let expected = union_agg_reference(&table, &txn);
        assert_eq!(expected.len(), 100);
        for threads in [1, 2, 4, 8] {
            let (graph, queue, stats) = union_agg_graph(&table, &txn, threads, None);
            let (chunks, _res) = graph.execute().unwrap();
            let rows: Vec<Vec<Value>> = chunks.iter().flat_map(DataChunk::to_rows).collect();
            assert_eq!(rows, expected, "threads={threads}");
            assert!(
                queue.pushed_batches() > 0,
                "the union arms must stream batches through the queue"
            );
            // Producers and consumer co-schedule: all three nodes launch
            // in the first round and overlap.
            assert_eq!(stats.launch_rounds()[0], vec![0, 1, 2], "threads={threads}");
            assert_eq!(stats.max_concurrent(), 3, "threads={threads}");
        }
    }

    #[test]
    fn union_under_aggregate_respects_a_tight_memory_limit() {
        use eider_storage::buffer::{BufferManager, BufferManagerConfig};
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let expected = union_agg_reference(&table, &txn);
        for threads in [1, 2, 4, 8] {
            let buffers = BufferManager::new(BufferManagerConfig {
                memory_limit: 1 << 20,
                memtest_allocations: false,
            });
            let (graph, queue, _stats) =
                union_agg_graph(&table, &txn, threads, Some(Arc::clone(&buffers)));
            let (chunks, res) = graph.execute().unwrap();
            let rows: Vec<Vec<Value>> = chunks.iter().flat_map(DataChunk::to_rows).collect();
            assert_eq!(rows, expected, "threads={threads}");
            assert!(queue.pushed_batches() > 0);
            drop(res);
            drop(chunks);
            assert_eq!(buffers.used_memory(), 0, "all queue/agg reservations released");
        }
    }

    #[test]
    fn failing_union_arm_aborts_the_queue_and_surfaces_the_error() {
        // Arm 1 overflows an integer multiply mid-scan; the consumer must
        // wind down instead of waiting forever for the queue to close.
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let mut graph = PipelineGraph::new(Arc::clone(&txn), 2);
        let queue =
            Arc::new(ChunkQueue::new(vec![LogicalType::Integer, LogicalType::Integer], 2, 1 << 18));
        let bad_filter = Expr::Compare {
            op: CmpOp::Eq,
            left: Box::new(Expr::Arithmetic {
                op: crate::expression::ArithOp::Mul,
                left: Box::new(Expr::column(0, LogicalType::Integer)),
                right: Box::new(Expr::constant(Value::BigInt(i64::MAX))),
                ty: LogicalType::BigInt,
            }),
            right: Box::new(Expr::constant(Value::BigInt(1))),
        };
        for (arm, links) in [vec![], vec![GraphLink::Step(PipelineStep::Filter(bad_filter))]]
            .into_iter()
            .enumerate()
        {
            graph.add(GraphNode::Pipeline {
                source: PipelineSource::Table(Arc::new(MorselSource::new(
                    Arc::clone(&table),
                    &txn,
                    half_scan(arm == 0),
                    VECTOR_SIZE,
                ))),
                links,
                sink: PipelineSink::Queue { queue: Arc::clone(&queue), arm },
            });
        }
        let consumer = graph.add(GraphNode::Pipeline {
            source: PipelineSource::Queue(Arc::clone(&queue)),
            links: vec![],
            sink: union_agg_sink(),
        });
        graph.set_outputs(vec![consumer]);
        assert!(graph.execute().is_err(), "the failing arm's error must surface");
    }
}
