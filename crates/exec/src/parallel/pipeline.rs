//! Parallel pipelines: per-worker operator chains plus a merging sink.
//!
//! A pipeline executes `scan → (filter|project)* → sink` with every worker
//! running the same chain over the morsels it claims. The sink is the
//! pipeline breaker; each variant defines a worker-local partial state and
//! a merge/finalize step:
//!
//! | sink | worker-local state | merge |
//! |---|---|---|
//! | [`PipelineSink::Collect`] | produced chunks, tagged by morsel | re-order by morsel sequence |
//! | [`PipelineSink::SimpleAggregate`] | per-morsel [`AggState`] rows | [`AggState::merge`] in morsel order |
//! | [`PipelineSink::HashAggregate`] | per-morsel group hash tables | merge tables in morsel order, emit groups key-sorted |
//! | [`PipelineSink::Sort`] | locally sorted runs | k-way merge, ties broken by scan position |
//! | [`PipelineSink::JoinBuild`] | hashed build chunks ([`BuildPartial`]) | splice via [`HashJoinOp::from_prebuilt`](crate::ops::HashJoinOp::from_prebuilt) |
//!
//! Partial aggregate states are kept *per morsel* (not just per worker)
//! and merged in morsel order, so results do not depend on which worker
//! happened to claim which morsel: a query returns bit-identical results
//! at every thread count, including floating-point aggregates.

use crate::aggregate::AggState;
use crate::fxhash::FxHashMap;
use crate::ops::agg::{update_group_table, update_simple_states, AggExpr};
use crate::ops::join::BuildPartial;
use crate::ops::sort::{compare_keys, SortKey};
use crate::ops::{FilterOp, OperatorBox, PhysicalOperator, ProjectionOp};
use crate::parallel::morsel::{MorselScanOp, MorselSource};
use crate::parallel::scheduler::TaskScheduler;
use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_txn::Transaction;
use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value, VECTOR_SIZE};
use std::sync::Arc;

/// One streaming operator of the per-worker chain.
#[derive(Debug, Clone)]
pub enum PipelineStep {
    /// WHERE: keep rows where the expression is TRUE.
    Filter(crate::expression::Expr),
    /// SELECT list: compute one expression per output column.
    Project(Vec<crate::expression::Expr>),
}

impl PipelineStep {
    /// Wrap `child` in this step's serial operator.
    fn instantiate(&self, child: OperatorBox) -> OperatorBox {
        match self {
            PipelineStep::Filter(pred) => Box::new(FilterOp::new(child, pred.clone())),
            PipelineStep::Project(exprs) => Box::new(ProjectionOp::new(child, exprs.clone())),
        }
    }

    fn output_types(&self, input: Vec<LogicalType>) -> Vec<LogicalType> {
        match self {
            PipelineStep::Filter(_) => input,
            PipelineStep::Project(exprs) => {
                exprs.iter().map(crate::expression::Expr::result_type).collect()
            }
        }
    }
}

/// The pipeline breaker at the top of a parallel pipeline.
#[derive(Debug, Clone)]
pub enum PipelineSink {
    /// Materialize the chain's chunks in serial scan order.
    Collect,
    /// Ungrouped aggregation; one output row.
    SimpleAggregate(Vec<AggExpr>),
    /// GROUP BY aggregation; groups emitted in key order.
    HashAggregate { groups: Vec<crate::expression::Expr>, aggs: Vec<AggExpr> },
    /// ORDER BY; ties preserve scan order (stable like the serial sort).
    Sort(Vec<SortKey>),
    /// Hash-join build side: chunks plus precomputed key hashes.
    JoinBuild { keys: Vec<crate::expression::Expr> },
}

/// What a pipeline produces.
pub enum PipelineOutput {
    Chunks(Vec<DataChunk>),
    /// Build partials in scan order, ready for
    /// [`HashJoinOp::from_prebuilt`](crate::ops::HashJoinOp::from_prebuilt).
    JoinBuild(Vec<BuildPartial>),
}

impl PipelineOutput {
    /// Unwrap the chunk form (every sink but `JoinBuild`).
    pub fn into_chunks(self) -> Vec<DataChunk> {
        match self {
            PipelineOutput::Chunks(c) => c,
            PipelineOutput::JoinBuild(_) => {
                panic!("join-build pipeline produces partials, not chunks")
            }
        }
    }
}

/// Worker-local partial results, tagged for deterministic merging.
enum LocalState {
    Collect(Vec<((usize, usize), DataChunk)>),
    /// Aggregate partials plus the worker's buffer-manager reservation
    /// covering them (held until the merge step has consumed them).
    Agg(Vec<(usize, AggPartial)>, Option<MemoryReservation>),
    /// Sorted-run rows plus the reservation charging them to the budget.
    Sort(Vec<SortRow>, Option<MemoryReservation>),
    JoinBuild(Vec<(usize, usize, BuildPartial)>),
}

/// Partial aggregate state of one morsel.
enum AggPartial {
    Simple(Vec<AggState>),
    Hash(FxHashMap<Vec<Value>, Vec<AggState>>),
}

/// A sort row: key values, scan position for tie-breaking, payload.
type SortRow = (Vec<Value>, (usize, usize, usize), Vec<Value>);

/// A parallel pipeline instance, bound to one query's transaction.
pub struct ParallelPipeline {
    source: Arc<MorselSource>,
    txn: Arc<Transaction>,
    steps: Vec<PipelineStep>,
    sink: PipelineSink,
    buffers: Option<Arc<BufferManager>>,
}

impl ParallelPipeline {
    pub fn new(
        source: Arc<MorselSource>,
        txn: Arc<Transaction>,
        steps: Vec<PipelineStep>,
        sink: PipelineSink,
    ) -> Self {
        ParallelPipeline { source, txn, steps, sink, buffers: None }
    }

    /// Account aggregate state against a buffer manager (§4's hard memory
    /// limits apply to parallel aggregation state as they do to the
    /// serial operator): workers charge their partials as they grow, the
    /// merge step charges the merged table, and the query aborts with
    /// `OutOfMemory` instead of sailing past the budget.
    pub fn with_buffers(mut self, buffers: Option<Arc<BufferManager>>) -> Self {
        self.buffers = buffers;
        self
    }

    /// Column types the per-worker chain feeds into the sink.
    pub fn chain_types(&self) -> Vec<LogicalType> {
        let mut types = self.source.scan_options().output_types(self.source.table());
        for step in &self.steps {
            types = step.output_types(types);
        }
        types
    }

    /// Column types of the pipeline's final output.
    pub fn output_types(&self) -> Vec<LogicalType> {
        match &self.sink {
            PipelineSink::Collect | PipelineSink::Sort(_) | PipelineSink::JoinBuild { .. } => {
                self.chain_types()
            }
            PipelineSink::SimpleAggregate(aggs) => aggs.iter().map(AggExpr::result_type).collect(),
            PipelineSink::HashAggregate { groups, aggs } => {
                let mut t: Vec<LogicalType> =
                    groups.iter().map(crate::expression::Expr::result_type).collect();
                t.extend(aggs.iter().map(AggExpr::result_type));
                t
            }
        }
    }

    /// Execute on `threads` workers (clamped to the morsel count — there
    /// is no point spawning a worker with nothing to claim).
    pub fn execute(&self, threads: usize) -> Result<PipelineOutput> {
        let threads = threads.clamp(1, self.source.morsel_count().max(1));
        let scheduler = TaskScheduler::new(threads);
        let locals = scheduler.run(|_| self.run_worker())?;
        self.merge(locals)
    }

    // ---- worker side ----

    fn run_worker(&self) -> Result<LocalState> {
        let result = self.run_worker_inner();
        if result.is_err() {
            self.source.abort();
        }
        result
    }

    fn run_worker_inner(&self) -> Result<LocalState> {
        let mut local = match &self.sink {
            PipelineSink::Collect => LocalState::Collect(Vec::new()),
            PipelineSink::SimpleAggregate(_) | PipelineSink::HashAggregate { .. } => {
                let reservation = match &self.buffers {
                    Some(b) => Some(b.reserve(0)?),
                    None => None,
                };
                LocalState::Agg(Vec::new(), reservation)
            }
            PipelineSink::Sort(_) => {
                let reservation = match &self.buffers {
                    Some(b) => Some(b.reserve(0)?),
                    None => None,
                };
                LocalState::Sort(Vec::new(), reservation)
            }
            PipelineSink::JoinBuild { .. } => LocalState::JoinBuild(Vec::new()),
        };
        while let Some(morsel) = self.source.next_morsel() {
            let mut op: OperatorBox = Box::new(MorselScanOp::new(
                Arc::clone(&self.source),
                Arc::clone(&self.txn),
                morsel,
            ));
            for step in &self.steps {
                op = step.instantiate(op);
            }
            let mut agg_partial = match &self.sink {
                PipelineSink::SimpleAggregate(aggs) => {
                    Some(AggPartial::Simple(aggs.iter().map(new_state).collect()))
                }
                PipelineSink::HashAggregate { .. } => Some(AggPartial::Hash(FxHashMap::default())),
                _ => None,
            };
            let mut intra = 0usize;
            while let Some(chunk) = op.next_chunk()? {
                if chunk.is_empty() {
                    continue;
                }
                self.consume_chunk(&mut local, agg_partial.as_mut(), morsel.seq, intra, chunk)?;
                intra += 1;
            }
            if let (Some(partial), LocalState::Agg(parts, reservation)) = (agg_partial, &mut local)
            {
                if let Some(res) = reservation {
                    // Same ~96 bytes/group heuristic the serial hash
                    // aggregate accounts with.
                    let groups = match &partial {
                        AggPartial::Simple(states) => states.len(),
                        AggPartial::Hash(table) => table.len(),
                    };
                    res.grow(groups * 96)?;
                }
                parts.push((morsel.seq, partial));
            }
        }
        if let LocalState::Sort(rows, _) = &mut local {
            // Local run sort happens on the worker — this is the parallel
            // share of the O(n log n); the merge only interleaves runs.
            if let PipelineSink::Sort(keys) = &self.sink {
                rows.sort_by(|a, b| compare_keys(&a.0, &b.0, keys).then(a.1.cmp(&b.1)));
            }
        }
        Ok(local)
    }

    fn consume_chunk(
        &self,
        local: &mut LocalState,
        agg: Option<&mut AggPartial>,
        seq: usize,
        intra: usize,
        chunk: DataChunk,
    ) -> Result<()> {
        match (&self.sink, local) {
            (PipelineSink::Collect, LocalState::Collect(chunks)) => {
                chunks.push(((seq, intra), chunk));
            }
            (PipelineSink::SimpleAggregate(aggs), LocalState::Agg(..)) => {
                let Some(AggPartial::Simple(states)) = agg else { unreachable!() };
                update_simple_states(aggs, states, &chunk)?;
            }
            (PipelineSink::HashAggregate { groups, aggs }, LocalState::Agg(..)) => {
                let Some(AggPartial::Hash(table)) = agg else { unreachable!() };
                update_group_table(groups, aggs, table, &chunk)?;
            }
            (PipelineSink::Sort(keys), LocalState::Sort(rows, reservation)) => {
                let key_vectors =
                    keys.iter().map(|k| k.expr.evaluate(&chunk)).collect::<Result<Vec<_>>>()?;
                let mut chunk_bytes = 0usize;
                for row in 0..chunk.len() {
                    let key: Vec<Value> = key_vectors.iter().map(|v| v.get_value(row)).collect();
                    let payload = chunk.row_values(row);
                    chunk_bytes += key.iter().chain(&payload).map(Value::size_bytes).sum::<usize>();
                    rows.push((key, (seq, intra, row), payload));
                }
                if let Some(res) = reservation {
                    res.grow(chunk_bytes)?;
                }
            }
            (PipelineSink::JoinBuild { keys }, LocalState::JoinBuild(parts)) => {
                parts.push((seq, intra, BuildPartial::compute(chunk, keys)?));
            }
            _ => unreachable!("local state matches sink"),
        }
        Ok(())
    }

    // ---- merge/finalize side ----

    fn merge(&self, locals: Vec<LocalState>) -> Result<PipelineOutput> {
        match &self.sink {
            PipelineSink::Collect => {
                let mut tagged: Vec<((usize, usize), DataChunk)> = locals
                    .into_iter()
                    .flat_map(|l| match l {
                        LocalState::Collect(chunks) => chunks,
                        _ => unreachable!(),
                    })
                    .collect();
                tagged.sort_by_key(|(pos, _)| *pos);
                Ok(PipelineOutput::Chunks(tagged.into_iter().map(|(_, c)| c).collect()))
            }
            PipelineSink::SimpleAggregate(aggs) => {
                let (mut parts, _worker_reservations) = collect_agg_partials(locals);
                parts.sort_by_key(|(seq, _)| *seq);
                let mut states: Vec<AggState> = aggs.iter().map(new_state).collect();
                for (_, partial) in parts {
                    let AggPartial::Simple(part) = partial else { unreachable!() };
                    for (s, p) in states.iter_mut().zip(&part) {
                        s.merge(p)?;
                    }
                }
                let row: Vec<Value> =
                    states.iter().map(AggState::finalize).collect::<Result<_>>()?;
                let mut out = DataChunk::new(&self.output_types());
                out.append_row(&row)?;
                Ok(PipelineOutput::Chunks(vec![out]))
            }
            PipelineSink::HashAggregate { .. } => {
                let (mut parts, _worker_reservations) = collect_agg_partials(locals);
                parts.sort_by_key(|(seq, _)| *seq);
                let mut merge_reservation = match &self.buffers {
                    Some(b) => Some(b.reserve(0)?),
                    None => None,
                };
                let mut table: FxHashMap<Vec<Value>, Vec<AggState>> = FxHashMap::default();
                for (_, partial) in parts {
                    let AggPartial::Hash(part) = partial else { unreachable!() };
                    for (key, part_states) in part {
                        match table.get_mut(&key) {
                            Some(states) => {
                                for (s, p) in states.iter_mut().zip(&part_states) {
                                    s.merge(p)?;
                                }
                            }
                            None => {
                                table.insert(key, part_states);
                            }
                        }
                    }
                }
                if let Some(res) = &mut merge_reservation {
                    res.grow(table.len() * 96)?;
                }
                // Serial hash aggregation emits groups in hash-iteration
                // order, which is unspecified anyway; the parallel merge
                // sorts by key so output is identical for every worker
                // count.
                let mut entries: Vec<(Vec<Value>, Vec<AggState>)> = table.into_iter().collect();
                entries.sort_by(|a, b| cmp_value_rows(&a.0, &b.0));
                let out_types = self.output_types();
                let mut chunks = Vec::new();
                let mut out = DataChunk::new(&out_types);
                for (key, states) in entries {
                    let mut row = key;
                    for s in &states {
                        row.push(s.finalize()?);
                    }
                    out.append_row(&row)?;
                    if out.len() >= VECTOR_SIZE {
                        chunks.push(std::mem::replace(&mut out, DataChunk::new(&out_types)));
                    }
                }
                if !out.is_empty() {
                    chunks.push(out);
                }
                Ok(PipelineOutput::Chunks(chunks))
            }
            PipelineSink::Sort(keys) => {
                let mut run_reservations = Vec::new();
                let runs: Vec<Vec<SortRow>> = locals
                    .into_iter()
                    .map(|l| match l {
                        LocalState::Sort(rows, reservation) => {
                            run_reservations.extend(reservation);
                            rows
                        }
                        _ => unreachable!(),
                    })
                    .collect();
                let rows = kway_merge(runs, keys);
                let out_types = self.output_types();
                let mut chunks = Vec::new();
                for window in rows.chunks(VECTOR_SIZE) {
                    let mut out = DataChunk::new(&out_types);
                    for (_, _, payload) in window {
                        out.append_row(payload)?;
                    }
                    chunks.push(out);
                }
                Ok(PipelineOutput::Chunks(chunks))
            }
            PipelineSink::JoinBuild { .. } => {
                let mut tagged: Vec<(usize, usize, BuildPartial)> = locals
                    .into_iter()
                    .flat_map(|l| match l {
                        LocalState::JoinBuild(parts) => parts,
                        _ => unreachable!(),
                    })
                    .collect();
                tagged.sort_by_key(|(seq, intra, _)| (*seq, *intra));
                Ok(PipelineOutput::JoinBuild(tagged.into_iter().map(|(_, _, p)| p).collect()))
            }
        }
    }
}

fn new_state(agg: &AggExpr) -> AggState {
    AggState::new(
        agg.kind,
        agg.arg.as_ref().map(crate::expression::Expr::result_type),
        agg.distinct,
    )
}

/// Lexicographic total order over group-key rows.
fn cmp_value_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

/// Merge locally sorted runs into one globally sorted row list; ties fall
/// back to scan position, reproducing a stable serial sort.
fn kway_merge(runs: Vec<Vec<SortRow>>, keys: &[SortKey]) -> Vec<SortRow> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<SortRow>> =
        runs.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<SortRow>> = iters.iter_mut().map(Iterator::next).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some(candidate) = head else { continue };
            best = match best {
                None => Some(i),
                Some(j) => {
                    let current = heads[j].as_ref().expect("best is populated");
                    let ord = compare_keys(&candidate.0, &current.0, keys)
                        .then(candidate.1.cmp(&current.1));
                    if ord == std::cmp::Ordering::Less {
                        Some(i)
                    } else {
                        Some(j)
                    }
                }
            };
        }
        match best {
            Some(i) => {
                let row = heads[i].take().expect("best is populated");
                heads[i] = iters[i].next();
                out.push(row);
            }
            None => break,
        }
    }
    out
}

/// A [`PhysicalOperator`] facade over a parallel pipeline, so the physical
/// planner can splice parallel execution into an otherwise serial plan
/// (e.g. under a LIMIT, or as the probe input of a join). Executes eagerly
/// on the first `next_chunk` pull.
pub struct ParallelPipelineOp {
    pipeline: ParallelPipeline,
    threads: usize,
    output: Option<std::vec::IntoIter<DataChunk>>,
}

impl ParallelPipelineOp {
    pub fn new(pipeline: ParallelPipeline, threads: usize) -> Self {
        ParallelPipelineOp { pipeline, threads, output: None }
    }
}

impl PhysicalOperator for ParallelPipelineOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.pipeline.output_types()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.output.is_none() {
            match self.pipeline.execute(self.threads)? {
                PipelineOutput::Chunks(chunks) => self.output = Some(chunks.into_iter()),
                PipelineOutput::JoinBuild(_) => {
                    return Err(EiderError::Internal(
                        "join-build pipelines are consumed by HashJoinOp, not pulled".into(),
                    ))
                }
            }
        }
        Ok(self.output.as_mut().expect("executed").next())
    }
}

/// Split aggregate locals into partials plus the worker reservations that
/// keep them accounted; the caller holds the reservations until the merge
/// has consumed every partial.
fn collect_agg_partials(
    locals: Vec<LocalState>,
) -> (Vec<(usize, AggPartial)>, Vec<MemoryReservation>) {
    let mut partials = Vec::new();
    let mut reservations = Vec::new();
    for l in locals {
        match l {
            LocalState::Agg(parts, reservation) => {
                partials.extend(parts);
                reservations.extend(reservation);
            }
            _ => unreachable!(),
        }
    }
    (partials, reservations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggKind;
    use crate::expression::Expr;
    use crate::ops::{drain_rows, HashAggregateOp, SimpleAggregateOp, TableScanOp};
    use eider_txn::{CmpOp, DataTable, ScanOptions, TableFilter, TransactionManager};

    const ROWS: i32 = 40_000;

    /// Two-column table: (i, i % 7), scanned with a `< 30_000` filter
    /// pushed down and a residual pipeline filter on parity.
    fn fixture() -> (Arc<TransactionManager>, Arc<DataTable>) {
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer, LogicalType::Integer]);
        let setup = mgr.begin();
        let rows: Vec<Vec<Value>> =
            (0..ROWS).map(|i| vec![Value::Integer(i), Value::Integer(i % 7)]).collect();
        table
            .append_chunk(
                &setup,
                &DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows)
                    .unwrap(),
            )
            .unwrap();
        setup.commit().unwrap();
        (mgr, table)
    }

    fn scan_opts() -> ScanOptions {
        ScanOptions {
            columns: vec![0, 1],
            filters: vec![TableFilter::new(0, CmpOp::Lt, Value::Integer(30_000))],
            emit_row_ids: false,
        }
    }

    /// `col0 % 2 = 0` as a residual filter expression.
    fn parity_filter() -> Expr {
        Expr::Compare {
            op: CmpOp::Eq,
            left: Box::new(Expr::Arithmetic {
                op: crate::expression::ArithOp::Mod,
                left: Box::new(Expr::column(0, LogicalType::Integer)),
                right: Box::new(Expr::constant(Value::Integer(2))),
                ty: LogicalType::BigInt,
            }),
            right: Box::new(Expr::constant(Value::BigInt(0))),
        }
    }

    fn pipeline(
        table: &Arc<DataTable>,
        txn: &Arc<Transaction>,
        sink: PipelineSink,
    ) -> ParallelPipeline {
        let source =
            Arc::new(MorselSource::new(Arc::clone(table), txn, scan_opts(), VECTOR_SIZE * 2));
        ParallelPipeline::new(
            source,
            Arc::clone(txn),
            vec![PipelineStep::Filter(parity_filter())],
            sink,
        )
    }

    fn serial_chain(table: &Arc<DataTable>, txn: &Arc<Transaction>) -> OperatorBox {
        Box::new(FilterOp::new(
            Box::new(TableScanOp::new(Arc::clone(table), Arc::clone(txn), scan_opts())),
            parity_filter(),
        ))
    }

    fn rows_at(pipeline: &ParallelPipeline, threads: usize) -> Vec<Vec<Value>> {
        pipeline
            .execute(threads)
            .unwrap()
            .into_chunks()
            .iter()
            .flat_map(DataChunk::to_rows)
            .collect()
    }

    #[test]
    fn collect_matches_serial_scan_at_every_thread_count() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let serial = drain_rows(serial_chain(&table, &txn).as_mut()).unwrap();
        assert_eq!(serial.len(), 15_000);
        for threads in [1, 2, 3, 8] {
            let p = pipeline(&table, &txn, PipelineSink::Collect);
            assert_eq!(rows_at(&p, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn simple_aggregate_matches_serial_operator() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let aggs = vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Sum,
                arg: Some(Expr::column(0, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Min,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Avg,
                arg: Some(Expr::column(0, LogicalType::Integer)),
                distinct: false,
            },
        ];
        let mut serial_op = SimpleAggregateOp::new(serial_chain(&table, &txn), aggs.clone());
        let serial = drain_rows(&mut serial_op).unwrap();
        for threads in [1, 2, 8] {
            let p = pipeline(&table, &txn, PipelineSink::SimpleAggregate(aggs.clone()));
            assert_eq!(rows_at(&p, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn hash_aggregate_matches_serial_operator_groupwise() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let groups = vec![Expr::column(1, LogicalType::Integer)];
        let aggs = vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Sum,
                arg: Some(Expr::column(0, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Count,
                arg: Some(Expr::column(0, LogicalType::Integer)),
                distinct: true,
            },
        ];
        let mut serial_op =
            HashAggregateOp::new(serial_chain(&table, &txn), groups.clone(), aggs.clone(), None);
        let mut serial = drain_rows(&mut serial_op).unwrap();
        serial.sort_by(|a, b| cmp_value_rows(a, b));
        for threads in [1, 2, 8] {
            let p = pipeline(
                &table,
                &txn,
                PipelineSink::HashAggregate { groups: groups.clone(), aggs: aggs.clone() },
            );
            // Parallel output is already key-sorted.
            assert_eq!(rows_at(&p, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn sort_matches_serial_sort_including_ties() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        // Sort on the 7-valued column: heavy ties exercise the positional
        // tie-break.
        let keys = vec![SortKey::desc(Expr::column(1, LogicalType::Integer))];
        let mut serial_op = crate::ops::ExternalSortOp::new(
            serial_chain(&table, &txn),
            keys.clone(),
            1 << 30,
            None,
            false,
        );
        let serial = drain_rows(&mut serial_op).unwrap();
        for threads in [1, 2, 8] {
            let p = pipeline(&table, &txn, PipelineSink::Sort(keys.clone()));
            assert_eq!(rows_at(&p, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn join_build_partials_feed_a_working_hash_join() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        // Join on the unique column: a 1:1 join keeps the output linear.
        let build_keys = vec![Expr::column(0, LogicalType::Integer)];
        let probe_keys = vec![Expr::column(0, LogicalType::Integer)];

        let serial_join = || -> Vec<Vec<Value>> {
            let mut op = crate::ops::HashJoinOp::new(
                serial_chain(&table, &txn),
                serial_chain(&table, &txn),
                probe_keys.clone(),
                build_keys.clone(),
                crate::ops::JoinType::Inner,
                eider_coop::compression::CompressionLevel::None,
                None,
            )
            .unwrap();
            let mut rows = drain_rows(&mut op).unwrap();
            rows.sort_by(|a, b| cmp_value_rows(a, b));
            rows
        };
        let serial = serial_join();

        for threads in [1, 2, 8] {
            let p = pipeline(&table, &txn, PipelineSink::JoinBuild { keys: build_keys.clone() });
            let PipelineOutput::JoinBuild(partials) = p.execute(threads).unwrap() else {
                panic!("expected join-build output")
            };
            let mut op = crate::ops::HashJoinOp::from_prebuilt(
                serial_chain(&table, &txn),
                p.chain_types(),
                partials,
                probe_keys.clone(),
                crate::ops::JoinType::Inner,
                eider_coop::compression::CompressionLevel::None,
                None,
            )
            .unwrap();
            let mut rows = drain_rows(&mut op).unwrap();
            rows.sort_by(|a, b| cmp_value_rows(a, b));
            assert_eq!(rows.len(), serial.len(), "threads={threads}");
            assert_eq!(rows, serial, "threads={threads}");
        }
    }

    #[test]
    fn projection_steps_compose() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let project = PipelineStep::Project(vec![Expr::Arithmetic {
            op: crate::expression::ArithOp::Add,
            left: Box::new(Expr::column(0, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(1))),
            ty: LogicalType::BigInt,
        }]);
        let source =
            Arc::new(MorselSource::new(Arc::clone(&table), &txn, scan_opts(), VECTOR_SIZE));
        let p = ParallelPipeline::new(
            source,
            Arc::clone(&txn),
            vec![PipelineStep::Filter(parity_filter()), project.clone()],
            PipelineSink::Collect,
        );
        assert_eq!(p.output_types(), vec![LogicalType::BigInt]);
        let mut serial_op = project.instantiate(serial_chain(&table, &txn));
        let serial = drain_rows(serial_op.as_mut()).unwrap();
        assert_eq!(rows_at(&p, 4), serial);
    }
}
